//! Machine descriptions for loop-balance optimization.
//!
//! §3.1 of the paper defines *machine balance* `β_M = M_rate / F_rate`: the
//! peak rate at which the machine moves words from memory relative to the
//! peak rate at which it retires floating-point operations.  A loop whose
//! own balance `β_L` exceeds `β_M` starves the floating-point pipes; the
//! optimizer's goal is `β_L(u) ≈ β_M`.
//!
//! A [`MachineModel`] carries the handful of parameters the balance model
//! and the `ujam-sim` cycle estimator need: issue rates, the FP register
//! file, cache geometry, miss cost, and prefetch-issue bandwidth.  Two
//! presets stand in for the paper's evaluation hardware:
//! [`MachineModel::dec_alpha`] (21064-class) and
//! [`MachineModel::hp_parisc`] (PA-7100-class).  The presets encode the
//! architectural *shape* (balances of 1.0 and 0.5, small direct-mapped
//! versus large cache), not cycle-accurate 1990s data sheets.
//!
//! # Example
//!
//! ```
//! use ujam_machine::MachineModel;
//! let alpha = MachineModel::dec_alpha();
//! assert_eq!(alpha.balance(), 1.0);
//! let wide = MachineModel::builder("wide-fp")
//!     .rates(1.0, 4.0)
//!     .registers(128)
//!     .build();
//! assert_eq!(wide.balance(), 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A target machine for balance optimization and simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineModel {
    name: String,
    mem_rate: f64,
    flop_rate: f64,
    issue_width: u32,
    fp_registers: u32,
    cache_bytes: usize,
    line_bytes: usize,
    associativity: usize,
    miss_penalty: f64,
    hit_cost: f64,
    prefetch_bandwidth: f64,
    fp_latency: u32,
}

impl MachineModel {
    /// Starts a builder with sane scalar-RISC defaults.
    pub fn builder(name: &str) -> MachineModelBuilder {
        MachineModelBuilder {
            model: MachineModel {
                name: name.to_string(),
                mem_rate: 1.0,
                flop_rate: 1.0,
                issue_width: 2,
                fp_registers: 32,
                cache_bytes: 8 * 1024,
                line_bytes: 32,
                associativity: 1,
                miss_penalty: 20.0,
                hit_cost: 1.0,
                prefetch_bandwidth: 0.0,
                fp_latency: 3,
            },
        }
    }

    /// A DEC Alpha 21064-class model: dual issue (one load/store pipe, one
    /// FP pipe), `β_M = 1`, 32 FP registers, a small direct-mapped 8 KiB
    /// data cache with 32-byte lines and a heavy miss.
    pub fn dec_alpha() -> MachineModel {
        MachineModel::builder("DEC Alpha")
            .rates(1.0, 1.0)
            .issue_width(2)
            .registers(32)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .fp_latency(6)
            .build()
    }

    /// An HP PA-RISC 7100-class model: the fused multiply-add pipe retires
    /// two flops per cycle against one memory access (`β_M = 0.5`), with a
    /// large off-chip cache.
    pub fn hp_parisc() -> MachineModel {
        MachineModel::builder("HP PA-RISC")
            .rates(1.0, 2.0)
            .issue_width(2)
            .registers(32)
            .cache(256 * 1024, 32, 1)
            .miss(15.0, 1.0)
            .fp_latency(2)
            .build()
    }

    /// A forward-looking model with software prefetching and a large
    /// register file (the paper's "future work" target).
    pub fn prefetching_risc() -> MachineModel {
        MachineModel::builder("prefetching RISC")
            .rates(2.0, 2.0)
            .issue_width(4)
            .registers(64)
            .cache(32 * 1024, 64, 2)
            .miss(30.0, 1.0)
            .prefetch(1.0)
            .fp_latency(4)
            .build()
    }

    /// The machine's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Machine balance `β_M = M_rate / F_rate` (§3.1).
    pub fn balance(&self) -> f64 {
        self.mem_rate / self.flop_rate
    }

    /// Peak memory operations per cycle.
    pub fn mem_rate(&self) -> f64 {
        self.mem_rate
    }

    /// Peak floating-point operations per cycle.
    pub fn flop_rate(&self) -> f64 {
        self.flop_rate
    }

    /// Total instructions issued per cycle.
    pub fn issue_width(&self) -> u32 {
        self.issue_width
    }

    /// Architected floating-point registers.
    pub fn fp_registers(&self) -> u32 {
        self.fp_registers
    }

    /// Registers the scalar-replacement planner may consume: a few are
    /// reserved for expression evaluation and address arithmetic.
    pub fn registers_for_replacement(&self) -> u32 {
        self.fp_registers.saturating_sub(6)
    }

    /// Data-cache capacity in bytes.
    pub fn cache_bytes(&self) -> usize {
        self.cache_bytes
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Cache line size in 8-byte double-precision elements — the `C` of
    /// Equation 1.
    pub fn line_elems(&self) -> i64 {
        (self.line_bytes / 8).max(1) as i64
    }

    /// Cache associativity (1 = direct mapped).
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Cache-miss penalty in cycles (`C_m`).
    pub fn miss_penalty(&self) -> f64 {
        self.miss_penalty
    }

    /// Cache-hit cost in cycles (`C_h`).
    pub fn hit_cost(&self) -> f64 {
        self.hit_cost
    }

    /// Miss-to-hit cost ratio `C_m / C_h` charged per unserviced prefetch
    /// in the balance formula (§3.2).
    pub fn miss_ratio(&self) -> f64 {
        self.miss_penalty / self.hit_cost
    }

    /// Prefetches issuable per cycle (`b`); `0` means no software prefetch.
    pub fn prefetch_bandwidth(&self) -> f64 {
        self.prefetch_bandwidth
    }

    /// Floating-point pipeline latency in cycles.
    pub fn fp_latency(&self) -> u32 {
        self.fp_latency
    }
}

/// Builder for [`MachineModel`] (see [`MachineModel::builder`]).
#[derive(Clone, Debug)]
pub struct MachineModelBuilder {
    model: MachineModel,
}

impl MachineModelBuilder {
    /// Sets peak memory and floating-point issue rates per cycle.
    ///
    /// # Panics
    ///
    /// Panics unless both rates are positive.
    pub fn rates(mut self, mem: f64, flop: f64) -> Self {
        assert!(mem > 0.0 && flop > 0.0, "rates must be positive");
        self.model.mem_rate = mem;
        self.model.flop_rate = flop;
        self
    }

    /// Sets total issue width.
    pub fn issue_width(mut self, w: u32) -> Self {
        assert!(w >= 1, "issue width must be at least 1");
        self.model.issue_width = w;
        self
    }

    /// Sets the FP register count.
    pub fn registers(mut self, r: u32) -> Self {
        self.model.fp_registers = r;
        self
    }

    /// Sets cache capacity, line size (bytes) and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of the line, associativity 0).
    pub fn cache(mut self, bytes: usize, line: usize, ways: usize) -> Self {
        assert!(bytes > 0 && line > 0 && ways > 0, "degenerate cache");
        assert!(
            bytes.is_multiple_of(line * ways),
            "capacity not divisible by way size"
        );
        self.model.cache_bytes = bytes;
        self.model.line_bytes = line;
        self.model.associativity = ways;
        self
    }

    /// Sets miss penalty and hit cost in cycles.
    pub fn miss(mut self, penalty: f64, hit: f64) -> Self {
        assert!(penalty >= hit && hit > 0.0, "miss must cost at least a hit");
        self.model.miss_penalty = penalty;
        self.model.hit_cost = hit;
        self
    }

    /// Sets prefetch-issue bandwidth (prefetches per cycle).
    pub fn prefetch(mut self, b: f64) -> Self {
        assert!(b >= 0.0, "negative prefetch bandwidth");
        self.model.prefetch_bandwidth = b;
        self
    }

    /// Sets floating-point latency in cycles.
    pub fn fp_latency(mut self, l: u32) -> Self {
        self.model.fp_latency = l.max(1);
        self
    }

    /// Finishes the model.
    pub fn build(self) -> MachineModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_balances_have_the_paper_shape() {
        // The Alpha needs one memory op per flop; the PA-RISC half that.
        assert_eq!(MachineModel::dec_alpha().balance(), 1.0);
        assert_eq!(MachineModel::hp_parisc().balance(), 0.5);
        assert!(MachineModel::hp_parisc().cache_bytes() > MachineModel::dec_alpha().cache_bytes());
    }

    #[test]
    fn line_elems_is_in_doubles() {
        assert_eq!(MachineModel::dec_alpha().line_elems(), 4);
        let m = MachineModel::builder("x").cache(1024, 64, 1).build();
        assert_eq!(m.line_elems(), 8);
    }

    #[test]
    fn replacement_registers_reserve_scratch() {
        let m = MachineModel::dec_alpha();
        assert_eq!(m.registers_for_replacement(), 26);
        let tiny = MachineModel::builder("tiny").registers(4).build();
        assert_eq!(tiny.registers_for_replacement(), 0);
    }

    #[test]
    fn builder_round_trip() {
        let m = MachineModel::builder("m")
            .rates(2.0, 4.0)
            .issue_width(4)
            .registers(64)
            .cache(16 * 1024, 32, 2)
            .miss(25.0, 2.0)
            .prefetch(0.5)
            .fp_latency(5)
            .build();
        assert_eq!(m.balance(), 0.5);
        assert_eq!(m.miss_ratio(), 12.5);
        assert_eq!(m.prefetch_bandwidth(), 0.5);
        assert_eq!(m.fp_latency(), 5);
        assert_eq!(m.associativity(), 2);
        assert_eq!(m.name(), "m");
    }

    #[test]
    #[should_panic(expected = "degenerate cache")]
    fn degenerate_cache_rejected() {
        let _ = MachineModel::builder("bad").cache(0, 32, 1);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn bad_rates_rejected() {
        let _ = MachineModel::builder("bad").rates(0.0, 1.0);
    }
}
