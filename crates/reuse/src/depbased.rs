//! The dependence-based reuse analysis the paper replaces.
//!
//! Carr's earlier work (PACT'96, and Carr–Kennedy TOPLAS'94) derives memory
//! reuse from the dependence graph: a reference's loads are saved when an
//! *input or flow dependence* reaches it from another reference whose
//! distance vector lies within the localized loops.  The analysis is
//! correct, but it requires computing and storing the read–read (input)
//! dependence edges — the 84% of the graph that Table 1 shows to be dead
//! weight for every other phase of the compiler.
//!
//! This module exists as the baseline: `ujam-bench` shows it produces the
//! same cache-cost estimates as the UGS analysis on the paper's loop class
//! while the graph it consumes is ~5–10× larger.

use crate::locality::Localized;
use ujam_dep::{DepGraph, Dist};
use ujam_ir::{LoopNest, RefId};

/// Cache lines fetched per innermost iteration, derived from the dependence
/// graph (input dependences included) instead of uniformly generated sets.
///
/// A reference is a *follower* — it rides another reference's line stream —
/// when an input/flow dependence with a localized, consistent (exact)
/// distance vector reaches it from a distinct reference.  Leaders pay by
/// their self reuse: `0` if a localized self dependence revisits the
/// element, `1/line` if the innermost walk is unit-stride, else a full
/// line.
pub fn dep_cache_cost(nest: &LoopNest, graph: &DepGraph, l: &Localized, line_elems: i64) -> f64 {
    let refs = nest.refs();
    let vars = nest.loop_vars();
    let mut cost = 0.0;
    for r in &refs {
        if is_follower(graph, r.id, l) {
            continue;
        }
        // Leader: self-temporal via a localized self dependence?  The
        // realization must be *nonzero* in the localized loops (a zero
        // self-distance is the access itself, not reuse).
        let self_temporal = graph
            .edges()
            .iter()
            .any(|e| e.src == r.id && e.dst == r.id && localized_reuse(&e.dist, l, true))
            || invariant_in_localized(nest, &r.aref, l, &vars);
        if self_temporal {
            continue;
        }
        // Self-spatial: unit stride in the contiguous dimension along some
        // localized loop, and no localized loop in the other dimensions.
        cost += if spatial_leader(&r.aref, l, &vars) {
            1.0 / line_elems as f64
        } else {
            1.0
        };
    }
    cost
}

/// `true` if some *other* reference provides this one's data through an
/// input or flow dependence localized in `l`.
fn is_follower(graph: &DepGraph, id: RefId, l: &Localized) -> bool {
    graph.edges().iter().any(|e| {
        e.dst == id
            && e.src != id
            // Any dependence kind brings the line into the cache — a store
            // rides the line its earlier companion touched just as a load
            // does.
            && (localized_reuse(&e.dist, l, true) || e.src < e.dst)
            // The provider must genuinely come first, or the symmetric
            // edges between identical references would make *every* copy a
            // follower and nobody would pay for the line: either the reuse
            // is carried (strictly positive localized distance) or the
            // provider precedes textually within the iteration.
            && localized_reuse(&e.dist, l, false)
    })
}

/// `true` if the constraint vector admits a realization with every
/// non-localized component zero.  With `require_nonzero`, at least one
/// localized component must additionally be realizable as nonzero (the
/// self-reuse case).
fn localized_reuse(dist: &[Dist], l: &Localized, require_nonzero: bool) -> bool {
    let mut nonzero_possible = false;
    for (i, d) in dist.iter().enumerate() {
        match (l.contains(i), d) {
            (true, Dist::Exact(k)) => nonzero_possible |= *k != 0,
            (true, Dist::Any) => nonzero_possible = true,
            (false, Dist::Exact(0)) | (false, Dist::Any) => {}
            (false, Dist::Exact(_)) => return false,
        }
    }
    !require_nonzero || nonzero_possible
}

/// `true` if the reference's address ignores every localized loop.
fn invariant_in_localized(
    _nest: &LoopNest,
    aref: &ujam_ir::ArrayRef,
    l: &Localized,
    vars: &[&str],
) -> bool {
    let (h, _) = aref.access_matrix(vars);
    l.loops()
        .iter()
        .all(|&col| (0..h.rows()).all(|r| h[(r, col)] == 0))
}

/// `true` if the reference walks the contiguous dimension with some
/// localized loop while the other dimensions ignore the localized loops.
fn spatial_leader(aref: &ujam_ir::ArrayRef, l: &Localized, vars: &[&str]) -> bool {
    let (h, _) = aref.access_matrix(vars);
    if h.rows() == 0 {
        return false;
    }
    l.loops()
        .iter()
        .any(|&col| h[(0, col)] != 0 && (1..h.rows()).all(|r| h[(r, col)] == 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::nest_cache_cost;
    use ujam_ir::NestBuilder;

    /// On the paper's loop class, the dependence-based and UGS analyses
    /// agree — that is the point of §5.2 ("the uniformly generated set
    /// model ... gives the same performance improvement as the dependence
    /// based model").
    #[test]
    fn agrees_with_ugs_cost_on_kernels() {
        let kernels = [
            (
                "intro",
                NestBuilder::new("intro")
                    .array("A", &[64])
                    .array("B", &[64])
                    .loop_("J", 1, 16)
                    .loop_("I", 1, 16)
                    .stmt("A(J) = A(J) + B(I)")
                    .build(),
            ),
            (
                "jki-matmul",
                NestBuilder::new("jki")
                    .array("A", &[64, 64])
                    .array("B", &[64, 64])
                    .array("C", &[64, 64])
                    .loop_("J", 1, 16)
                    .loop_("K", 1, 16)
                    .loop_("I", 1, 16)
                    .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
                    .build(),
            ),
            (
                "stencil",
                NestBuilder::new("st")
                    .array("A", &[66, 66])
                    .array("B", &[66, 66])
                    .loop_("J", 1, 16)
                    .loop_("I", 1, 16)
                    .stmt("B(I,J) = A(I,J) + A(I+1,J) + A(I-1,J)")
                    .build(),
            ),
        ];
        for (name, nest) in kernels {
            let l = Localized::innermost(nest.depth());
            let g = DepGraph::build(&nest);
            let dep = dep_cache_cost(&nest, &g, &l, 8);
            let ugs = nest_cache_cost(&nest, &l, 8);
            assert!(
                (dep - ugs).abs() < 1e-9,
                "{name}: dep-based {dep} != UGS {ugs}"
            );
        }
    }

    #[test]
    fn follower_detection_uses_input_dependences() {
        let nest = NestBuilder::new("pair")
            .array("A", &[66])
            .array("B", &[66])
            .loop_("I", 2, 17)
            .stmt("B(I) = A(I) + A(I-1)")
            .build();
        let g = DepGraph::build(&nest);
        let l = Localized::innermost(1);
        // A(I-1) rides A(I)'s stream: only A(I) and B(I) pay 1/8 each.
        assert!((dep_cache_cost(&nest, &g, &l, 8) - 0.25).abs() < 1e-9);
    }
}
