//! Localized iteration spaces and self reuse.

use ujam_linalg::{Mat, Space};

/// The *localized vector space* `L`: the loop directions whose reuse the
/// memory hierarchy can actually exploit (§3.4).
///
/// For cache analysis this is typically every loop whose reuse distance
/// fits in cache (here: all loops, or a chosen suffix); for scalar
/// replacement it is the innermost loop only.  Unroll-and-jam's purpose is
/// precisely to move reuse carried by *outer* loops into the innermost,
/// localized, position.
///
/// The spaces arising in unroll-and-jam are always spanned by whole loop
/// axes, so `Localized` stores a set of loop positions (outermost = 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Localized {
    depth: usize,
    loops: Vec<usize>,
}

impl Localized {
    /// Localizes the given loops (positions outermost-first, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range.
    pub fn new(depth: usize, loops: &[usize]) -> Localized {
        let mut v: Vec<usize> = loops.to_vec();
        v.sort_unstable();
        v.dedup();
        assert!(v.iter().all(|&l| l < depth), "loop index out of range");
        Localized { depth, loops: v }
    }

    /// Only the innermost loop — the localized space of scalar replacement.
    pub fn innermost(depth: usize) -> Localized {
        assert!(depth > 0, "empty nest");
        Localized::new(depth, &[depth - 1])
    }

    /// Every loop: the idealized "everything fits in cache" space.
    pub fn all(depth: usize) -> Localized {
        Localized::new(depth, &(0..depth).collect::<Vec<_>>())
    }

    /// The innermost loop plus the loops of an unroll set: after
    /// unroll-and-jam, reuse along the unrolled directions becomes
    /// innermost reuse (§4.1: "unroll-and-jam within `L` will not increase
    /// cache reuse", hence `% ∩ L = ∅` is arranged by construction).
    pub fn with_unrolled(depth: usize, unrolled: &[usize]) -> Localized {
        let mut loops = unrolled.to_vec();
        loops.push(depth - 1);
        Localized::new(depth, &loops)
    }

    /// Nest depth (the ambient dimension).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The localized loop positions, ascending.
    pub fn loops(&self) -> &[usize] {
        &self.loops
    }

    /// `true` if loop `l` is localized.
    pub fn contains(&self, l: usize) -> bool {
        self.loops.binary_search(&l).is_ok()
    }

    /// The spanned vector space.
    pub fn space(&self) -> Space {
        Space::axes(self.depth, &self.loops)
    }
}

/// `true` if a reference with access matrix `h` has self-temporal reuse
/// within `L`: `ker H ∩ L ≠ {0}` (§3.4: `∃ x ∈ L, H·x = 0`).
pub fn has_self_temporal(h: &Mat, l: &Localized) -> bool {
    !Space::kernel(h).intersect(&l.space()).is_trivial()
}

/// `true` if a reference has self-spatial reuse within `L`: the same with
/// the first (column-contiguous) subscript row dropped, `ker H_S ∩ L ≠ {0}`,
/// and the reuse is *spatial proper* (not already temporal).
pub fn has_self_spatial(h: &Mat, l: &Localized) -> bool {
    if h.rows() == 0 {
        return false;
    }
    let hs = h.with_zero_row(0);
    !Space::kernel(&hs).intersect(&l.space()).is_trivial()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_linalg::Mat;

    #[test]
    fn localized_constructors() {
        let l = Localized::innermost(3);
        assert_eq!(l.loops(), &[2]);
        assert!(l.contains(2));
        assert!(!l.contains(0));
        assert_eq!(Localized::all(3).loops(), &[0, 1, 2]);
        assert_eq!(Localized::with_unrolled(3, &[0]).loops(), &[0, 2]);
        assert_eq!(Localized::new(3, &[1, 1, 0]).loops(), &[0, 1]);
    }

    #[test]
    fn self_temporal_detection() {
        // A(J) in a (J, I) nest: H = [1 0]; reuse along I (innermost).
        let h = Mat::from_rows(&[&[1, 0]]);
        assert!(has_self_temporal(&h, &Localized::innermost(2)));
        // A(I): H = [0 1]; no innermost temporal reuse, but reuse along J.
        let h = Mat::from_rows(&[&[0, 1]]);
        assert!(!has_self_temporal(&h, &Localized::innermost(2)));
        assert!(has_self_temporal(&h, &Localized::all(2)));
    }

    #[test]
    fn self_spatial_detection() {
        // A(I, J): first row zeroed leaves [0 1] whose kernel is the I
        // axis... rows are subscript dims: H = [[0,1],[1,0]] for A(I,J) in
        // (J, I) nest.  Dropping the first row leaves J's row: kernel
        // includes the I axis: spatial reuse along I (stride-1).
        let h = Mat::from_rows(&[&[0, 1], &[1, 0]]);
        assert!(has_self_spatial(&h, &Localized::innermost(2)));
        assert!(!has_self_temporal(&h, &Localized::innermost(2)));
        // A(J, I) in the same nest walks the non-contiguous dimension
        // innermost: no innermost spatial reuse.
        let h = Mat::from_rows(&[&[1, 0], &[0, 1]]);
        assert!(!has_self_spatial(&h, &Localized::innermost(2)));
    }

    #[test]
    fn invariant_reference_is_temporal_not_spatial_proper() {
        // A(J) in (J, I): innermost-temporal; spatial adds nothing more.
        let h = Mat::from_rows(&[&[1, 0]]);
        assert!(has_self_temporal(&h, &Localized::innermost(2)));
        // has_self_spatial is also true here (temporal implies the spatial
        // system is satisfiable); Equation 1 checks temporal first.
        assert!(has_self_spatial(&h, &Localized::innermost(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_loop_panics() {
        let _ = Localized::new(2, &[2]);
    }
}
