//! Uniformly generated sets (Gannon–Jalby–Gallivan, Definition 1).

use std::collections::BTreeMap;
use ujam_ir::{LoopNest, RefId};
use ujam_linalg::Mat;

/// One reference inside a uniformly generated set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UgsMember {
    /// The reference's identity in the nest.
    pub id: RefId,
    /// Its constant offset vector `c` (the references share `H`).
    pub c: Vec<i64>,
    /// `true` for stores.
    pub is_def: bool,
}

/// A maximal set of references to one array sharing an access matrix `H`:
/// every pair is *uniformly generated* — `f(i) = H·i + c₁`,
/// `g(i) = H·i + c₂`.
///
/// Data reuse only exists inside such sets, which is what lets the analysis
/// discard input dependences: group reuse is recovered from the `c` vectors
/// by linear algebra instead of from read–read dependence edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UgsSet {
    array: String,
    h: Mat,
    members: Vec<UgsMember>,
}

impl UgsSet {
    /// Partitions every reference of a nest into uniformly generated sets.
    ///
    /// Sets are returned in a deterministic order (by array name, then by
    /// flattened `H`); members keep execution order.
    ///
    /// # Example
    ///
    /// ```
    /// use ujam_ir::NestBuilder;
    /// use ujam_reuse::UgsSet;
    /// let nest = NestBuilder::new("two")
    ///     .array("A", &[64])
    ///     .loop_("I", 1, 32)
    ///     .stmt("A(I) = A(I+1) + A(2I)")
    ///     .build();
    /// let sets = UgsSet::partition(&nest);
    /// // A(I)/A(I+1) share H=[1]; A(2I) has H=[2]: two sets.
    /// assert_eq!(sets.len(), 2);
    /// assert_eq!(sets.iter().map(|s| s.members().len()).sum::<usize>(), 3);
    /// ```
    pub fn partition(nest: &LoopNest) -> Vec<UgsSet> {
        let vars = nest.loop_vars();
        let mut map: BTreeMap<(String, Vec<i64>), UgsSet> = BTreeMap::new();
        for r in nest.refs() {
            let (h, c) = r.aref.access_matrix(&vars);
            let key = (
                r.aref.array().to_string(),
                h.iter_rows().flatten().copied().collect(),
            );
            map.entry(key)
                .or_insert_with(|| UgsSet {
                    array: r.aref.array().to_string(),
                    h,
                    members: Vec::new(),
                })
                .members
                .push(UgsMember {
                    id: r.id,
                    c,
                    is_def: r.is_def,
                });
        }
        map.into_values().collect()
    }

    /// The array every member references.
    pub fn array(&self) -> &str {
        &self.array
    }

    /// The shared access matrix (`rank × depth`).
    pub fn h(&self) -> &Mat {
        &self.h
    }

    /// The member references.
    pub fn members(&self) -> &[UgsMember] {
        &self.members
    }

    /// Members sorted lexicographically by `c` (ties by execution order) —
    /// the leader order used by the paper's table algorithms (Figure 2).
    pub fn members_lex(&self) -> Vec<&UgsMember> {
        let mut v: Vec<&UgsMember> = self.members.iter().collect();
        v.sort_by(|a, b| a.c.cmp(&b.c).then(a.id.cmp(&b.id)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;

    #[test]
    fn partition_separates_arrays_and_matrices() {
        let nest = NestBuilder::new("p")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .loop_("J", 1, 16)
            .loop_("I", 1, 16)
            .stmt("A(I,J) = A(I+1,J) + B(J,I) + B(J,I+1) + A(I,2J)")
            .build();
        let sets = UgsSet::partition(&nest);
        // A with H=identity (A(I,J), A(I+1,J)); A with the 2J access;
        // B with transposed H.
        assert_eq!(sets.len(), 3);
        let a_id = sets
            .iter()
            .find(|s| s.array() == "A" && s.members().len() == 2)
            .expect("identity-H A set");
        // Members keep execution order: the RHS use A(I+1,J) precedes the
        // LHS def A(I,J).
        assert_eq!(a_id.members()[0].c, vec![1, 0]);
        assert_eq!(a_id.members()[1].c, vec![0, 0]);
        // Exactly one member is a def (the LHS A(I,J)).
        assert_eq!(a_id.members().iter().filter(|m| m.is_def).count(), 1);
    }

    #[test]
    fn lex_order_sorts_by_constant_vector() {
        let nest = NestBuilder::new("lex")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .loop_("J", 1, 16)
            .loop_("I", 1, 16)
            .stmt("B(I,J) = A(I,J) + A(I-2,J) + A(I-1,J)")
            .build();
        let sets = UgsSet::partition(&nest);
        let a = sets.iter().find(|s| s.array() == "A").expect("A set");
        let lex: Vec<i64> = a.members_lex().iter().map(|m| m.c[0]).collect();
        assert_eq!(lex, vec![-2, -1, 0]);
    }

    #[test]
    fn same_subscript_use_and_def_share_a_set() {
        let nest = NestBuilder::new("acc")
            .array("A", &[64])
            .loop_("I", 1, 16)
            .stmt("A(I) = A(I) * 1.5")
            .build();
        let sets = UgsSet::partition(&nest);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].members().len(), 2);
    }
}
