//! Group-temporal and group-spatial partitioning of a UGS.

use crate::locality::Localized;
use crate::ugs::UgsSet;
use ujam_linalg::{lattice_contains, solve_unique, SolveOutcome};

/// Partitions a UGS's members into *group-temporal sets* (GTS).
///
/// Two references `A(H·i + c₁)` and `A(H·i + c₂)` are group-temporal iff
/// `H·x = c₁ − c₂` has an integer solution `x` supported on the localized
/// loops (§3.4): the same elements are touched, a fixed number of localized
/// iterations apart.
///
/// Returns groups of indices into `ugs.members()`, each group sorted by the
/// lexicographic `c` order the table algorithms use; groups are ordered by
/// their leader.
pub fn group_temporal_sets(ugs: &UgsSet, l: &Localized) -> Vec<Vec<usize>> {
    partition(ugs, |delta| {
        match solve_unique(ugs.h(), delta, l.loops()) {
            SolveOutcome::Unique(_) => true,
            // Under-determined systems need the exact lattice test: a
            // rational solution may exist with no integer witness (e.g.
            // strides 2 and 4 cannot close an odd difference).
            SolveOutcome::Underdetermined => lattice_contains(ugs.h(), delta, l.loops()),
            _ => false,
        }
    })
}

/// Partitions a UGS's members into *group-spatial sets* (GSS).
///
/// Group-spatial reuse relaxes group-temporal: the localized solve uses
/// `H_S` (the first, column-contiguous subscript row dropped) and the
/// residual difference in the first subscript must be smaller than the
/// cache line (`line_elems`, in array elements).  Every GTS is contained in
/// one GSS, so the GSS count `G_S ≤ G_T`.
pub fn group_spatial_sets(ugs: &UgsSet, l: &Localized, line_elems: i64) -> Vec<Vec<usize>> {
    assert!(line_elems >= 1, "cache line must hold at least one element");
    let h = ugs.h();
    partition(ugs, |delta| {
        if delta.is_empty() {
            return true;
        }
        // Solve the sub-system below the first row.
        let rows: Vec<usize> = (1..h.rows()).collect();
        let sub = select_rows(h, &rows);
        let sub_delta = &delta[1..];
        let x = match solve_unique(&sub, sub_delta, l.loops()) {
            SolveOutcome::Unique(x) => x,
            // Free sub-system (e.g. a rank-1 array): x = 0 suffices; the
            // first-row reduction below handles localized first-row loops.
            SolveOutcome::Underdetermined => vec![0; l.loops().len()],
            _ => return false,
        };
        // First-row residual after applying the forced solution.
        let mut residual = delta[0];
        let mut row0_gcd = 0i64;
        for (k, &col) in l.loops().iter().enumerate() {
            let coef = h[(0, col)];
            if coef == 0 {
                continue;
            }
            // If this localized loop is *only* used by the first row, it is
            // a free direction along the contiguous dimension: the residual
            // can be reduced modulo its coefficient.
            let used_below = (1..h.rows()).any(|r| h[(r, col)] != 0);
            if used_below {
                residual -= coef * x[k];
            } else {
                row0_gcd = gcd(row0_gcd, coef);
            }
        }
        if row0_gcd > 0 {
            residual = centered_mod(residual, row0_gcd);
        }
        residual.abs() < line_elems
    })
}

/// Greedy partition over the lexicographic member order: each member joins
/// the first group whose leader it relates to, else starts a new group.
///
/// For exact (group-temporal) relations this computes true equivalence
/// classes; for the windowed group-spatial relation it is the same greedy
/// leader walk the paper's algorithms perform.
fn partition(ugs: &UgsSet, mut related: impl FnMut(&[i64]) -> bool) -> Vec<Vec<usize>> {
    let order = ugs.members_lex();
    let by_index: Vec<usize> = order
        .iter()
        .map(|m| {
            ugs.members()
                .iter()
                .position(|x| x.id == m.id)
                .expect("member present")
        })
        .collect();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    'members: for (pos, &idx) in by_index.iter().enumerate() {
        let c = &order[pos].c;
        for g in groups.iter_mut() {
            let leader = &ugs.members()[g[0]].c;
            let delta: Vec<i64> = c.iter().zip(leader).map(|(a, b)| a - b).collect();
            if related(&delta) {
                g.push(idx);
                continue 'members;
            }
        }
        groups.push(vec![idx]);
    }
    groups
}

fn select_rows(h: &ujam_linalg::Mat, rows: &[usize]) -> ujam_linalg::Mat {
    let mut m = ujam_linalg::Mat::zeros(rows.len(), h.cols());
    for (i, &r) in rows.iter().enumerate() {
        for c in 0..h.cols() {
            m[(i, c)] = h[(r, c)];
        }
    }
    m
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Reduces `v` modulo `m` into the centered range `(-m/2, m/2]`.
fn centered_mod(v: i64, m: i64) -> i64 {
    let mut r = v.rem_euclid(m);
    if r > m / 2 {
        r -= m;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::Localized;
    use ujam_ir::NestBuilder;

    fn sets(src: &str, depth2: bool) -> (Vec<UgsSet>, usize) {
        let b = NestBuilder::new("g")
            .array("A", &[64, 64])
            .array("B", &[64, 64]);
        let b = if depth2 {
            b.loop_("J", 1, 16).loop_("I", 1, 16)
        } else {
            b.loop_("I", 1, 16)
        };
        let nest = b.stmt(src).build();
        let depth = nest.depth();
        (UgsSet::partition(&nest), depth)
    }

    #[test]
    fn figure1_gts_partition() {
        // Figure 1: A(I,J) (def+use) and A(I-2,J); localized = innermost I?
        // The figure localizes the innermost loop only; A(I,J) and A(I-2,J)
        // differ along I which IS the innermost here -> but the figure has
        // them in *separate* GTSs because the localized space is the
        // innermost loop of the (J, I)-nest and the refs differ in the I
        // (first) subscript... In our (J outer, I inner) nest, H·x = (2, 0)
        // has solution x_I = 2: same GTS under innermost localization.
        let (s, depth) = sets("A(I,J) = A(I,J) + A(I-2,J)", true);
        let a = &s[0];
        let l = Localized::innermost(depth);
        let gts = group_temporal_sets(a, &l);
        assert_eq!(gts.len(), 1, "distance-2 reuse along the inner loop");

        // With no localized reuse along I (localize J only), they split.
        let l_outer = Localized::new(depth, &[0]);
        let gts = group_temporal_sets(a, &l_outer);
        assert_eq!(gts.len(), 2);
    }

    #[test]
    fn outer_loop_difference_needs_outer_localization() {
        // B(I,J) vs B(I,J+1): differ along J (outer).
        let (s, depth) = sets("A(I,J) = B(I,J) + B(I,J+1)", true);
        let b = s.iter().find(|x| x.array() == "B").expect("B set");
        assert_eq!(
            group_temporal_sets(b, &Localized::innermost(depth)).len(),
            2
        );
        assert_eq!(group_temporal_sets(b, &Localized::all(depth)).len(), 1);
        assert_eq!(
            group_temporal_sets(b, &Localized::with_unrolled(depth, &[0])).len(),
            1
        );
    }

    #[test]
    fn gss_merges_first_dimension_neighbours() {
        // A(I,J) vs A(I+3,J): different elements, same cache line when the
        // line holds 8 elements.
        let (s, depth) = sets("B(I,J) = A(I,J) + A(I+3,J)", true);
        let a = s.iter().find(|x| x.array() == "A").expect("A set");
        let l = Localized::new(depth, &[0]); // exclude I so no temporal merge
        assert_eq!(group_temporal_sets(a, &l).len(), 2);
        assert_eq!(group_spatial_sets(a, &l, 8).len(), 1);
        assert_eq!(group_spatial_sets(a, &l, 2).len(), 2);
    }

    #[test]
    fn gss_respects_non_contiguous_differences() {
        // A(I,J) vs A(I,J+1): differ in the second dimension; never
        // group-spatial without J localized.
        let (s, depth) = sets("B(I,J) = A(I,J) + A(I,J+1)", true);
        let a = s.iter().find(|x| x.array() == "A").expect("A set");
        let l = Localized::innermost(depth);
        assert_eq!(group_spatial_sets(a, &l, 64).len(), 2);
    }

    #[test]
    fn every_gts_is_inside_one_gss() {
        let (s, depth) = sets("A(I,J) = A(I,J) + A(I-2,J) + A(I+3,J) + A(I,J+2)", true);
        let a = &s[0];
        for loops in [vec![0], vec![1], vec![0, 1]] {
            let l = Localized::new(depth, &loops);
            let gts = group_temporal_sets(a, &l);
            let gss = group_spatial_sets(a, &l, 8);
            assert!(gss.len() <= gts.len());
            // Nesting: each GTS's members all land in the same GSS.
            for g in &gts {
                let holder: Vec<usize> = gss
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| g.iter().all(|m| s.contains(m)))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(holder.len(), 1, "GTS split across GSSs");
            }
        }
    }

    #[test]
    fn strided_references_never_merge_on_fraction() {
        let (s, _) = sets("A(2I, 1) = A(2I-1, 1) + A(2I-4, 1)", false);
        let a = &s[0];
        let l = Localized::innermost(1);
        let gts = group_temporal_sets(a, &l);
        // A(2I) and A(2I-4) merge (distance 2); A(2I-1) interleaves.
        assert_eq!(gts.len(), 2);
    }
}
