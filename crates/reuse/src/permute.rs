//! Memory-order loop permutation (McKinley, Carr & Tseng — the paper's
//! reference \[4\]).
//!
//! Wolf et al. (§5.3) combine unroll-and-jam with permutation; this module
//! supplies the permutation half for this reproduction's extension
//! experiments: rank every *legal* loop order by Equation 1 (cache lines
//! per innermost iteration) and return the cheapest.  Composed with
//! `ujam_core::optimize`, this reproduces the classic pipeline
//! "permute for locality, then unroll-and-jam for balance".

use crate::cost::nest_cache_cost;
use crate::locality::Localized;
use ujam_dep::{legal_permutations, DepGraph};
use ujam_ir::transform::permute_loops;
use ujam_ir::LoopNest;

/// A ranked loop order.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedOrder {
    /// `perm[k]` = original position of the loop placed at depth `k`.
    pub perm: Vec<usize>,
    /// Equation 1 cost with only the innermost loop localized.
    pub cost: f64,
    /// The full ranking key: Equation 1 cost with the innermost 1, 2, …,
    /// `depth` loops localized, compared lexicographically.  Deeper
    /// entries break ties between orders that look alike from the
    /// innermost loop alone (e.g. KJI vs JKI matrix multiply).
    pub cost_profile: Vec<f64>,
}

/// Ranks every legal permutation of the nest cheapest-first by the
/// localized-suffix cost profile (ties: closest to the original order).
pub fn rank_orders(nest: &LoopNest, graph: &DepGraph, line_elems: i64) -> Vec<RankedOrder> {
    let depth = nest.depth();
    let mut ranked: Vec<RankedOrder> = legal_permutations(graph, depth)
        .into_iter()
        .map(|perm| {
            let permuted =
                permute_loops(nest, &perm).expect("legal_permutations yields valid perms");
            let cost_profile: Vec<f64> = (1..=depth)
                .map(|k| {
                    let loops: Vec<usize> = (depth - k..depth).collect();
                    nest_cache_cost(&permuted, &Localized::new(depth, &loops), line_elems)
                })
                .collect();
            RankedOrder {
                perm,
                cost: cost_profile[0],
                cost_profile,
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.cost_profile
            .partial_cmp(&b.cost_profile)
            .expect("Equation 1 costs are finite")
            .then(a.perm.cmp(&b.perm))
    });
    ranked
}

/// Applies the cheapest legal loop order.
///
/// Returns the permuted nest and the chosen order; the identity order is
/// returned unchanged when it is already the best (or the only legal one).
///
/// # Example
///
/// ```
/// use ujam_ir::NestBuilder;
/// use ujam_dep::DepGraph;
/// use ujam_reuse::permute::best_order;
/// // Matmul with the reduction innermost (JIK): memory order moves the
/// // stride-1 I loop inside — the classic JIK -> JKI rotation.
/// let jik = NestBuilder::new("jik")
///     .array("A", &[32, 32]).array("B", &[32, 32]).array("C", &[32, 32])
///     .loop_("J", 1, 16).loop_("I", 1, 16).loop_("K", 1, 16)
///     .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
///     .build();
/// let g = DepGraph::build(&jik);
/// let (best, order) = best_order(&jik, &g, 4);
/// assert_eq!(best.loop_vars(), vec!["J", "K", "I"]);
/// assert_eq!(order.perm, vec![0, 2, 1]);
/// ```
pub fn best_order(nest: &LoopNest, graph: &DepGraph, line_elems: i64) -> (LoopNest, RankedOrder) {
    let ranked = rank_orders(nest, graph, line_elems);
    let best = ranked
        .into_iter()
        .next()
        .expect("the identity permutation is always legal");
    let permuted = permute_loops(nest, &best.perm).expect("ranked perms are valid");
    (permuted, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;

    fn matmul(order: [&str; 3]) -> LoopNest {
        let mut b = NestBuilder::new("mm")
            .array("A", &[32, 32])
            .array("B", &[32, 32])
            .array("C", &[32, 32]);
        for v in order {
            b = b.loop_(v, 1, 16);
        }
        b.stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)").build()
    }

    #[test]
    fn matmul_memory_order_puts_stride_one_innermost() {
        // JKI and KJI are cost-equivalent for column-major matmul (A and C
        // swap roles); what matters is that the stride-1 I loop lands
        // innermost and ties keep the order closest to the original.
        for (start, expect) in [
            (["J", "I", "K"], vec!["J", "K", "I"]),
            (["K", "J", "I"], vec!["K", "J", "I"]),
            (["I", "J", "K"], vec!["J", "K", "I"]),
        ] {
            let nest = matmul(start);
            let g = DepGraph::build(&nest);
            let (best, order) = best_order(&nest, &g, 4);
            assert_eq!(best.loop_vars(), expect, "from {start:?}");
            assert_eq!(*best.loop_vars().last().expect("3 loops"), "I");
            // The chosen order is at least as cheap as the original at
            // every localization depth.
            let ranked = rank_orders(&nest, &g, 4);
            let identity = ranked
                .iter()
                .find(|r| r.perm == vec![0, 1, 2])
                .expect("identity is always legal");
            assert!(order.cost_profile <= identity.cost_profile.clone());
        }
    }

    #[test]
    fn already_optimal_order_is_kept() {
        let nest = matmul(["J", "K", "I"]);
        let g = DepGraph::build(&nest);
        let (best, order) = best_order(&nest, &g, 4);
        assert_eq!(order.perm, vec![0, 1, 2]);
        assert_eq!(best, nest);
    }

    #[test]
    fn ranking_is_sorted_and_complete_for_free_nests() {
        let nest = NestBuilder::new("sweep")
            .array("A", &[34, 34])
            .array("B", &[34, 34])
            .loop_("J", 1, 16)
            .loop_("I", 1, 16)
            .stmt("A(I,J) = B(I,J) * 2.0")
            .build();
        let g = DepGraph::build(&nest);
        let ranked = rank_orders(&nest, &g, 8);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].cost <= ranked[1].cost);
        // Column-major: I innermost (identity) is the cheap one.
        assert_eq!(ranked[0].perm, vec![0, 1]);
    }

    #[test]
    fn dependences_restrict_the_choice() {
        // vpenta-like: the J recurrence cannot move inward past... in fact
        // any order keeping the flow dependence positive is allowed; the
        // skewed dependence kills the interchange.
        let nest = NestBuilder::new("skew")
            .array("A", &[40, 40])
            .loop_("J", 2, 17)
            .loop_("I", 2, 17)
            .stmt("A(I,J) = A(I-1,J+1) * 0.5")
            .build();
        let g = DepGraph::build(&nest);
        let ranked = rank_orders(&nest, &g, 4);
        assert_eq!(ranked.len(), 1, "only the identity is legal");
    }
}
