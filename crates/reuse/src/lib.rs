//! The Wolf–Lam linear-algebra data-reuse model (uniformly generated sets).
//!
//! This crate implements §3.4–§3.5 of Carr & Guan: the reuse analysis that
//! replaces input dependences.  References are partitioned into *uniformly
//! generated sets* (same array, same access matrix `H`); reuse is then a
//! property of small linear systems:
//!
//! * **self-temporal**: `ker H` — iterations along these directions touch
//!   the same element;
//! * **self-spatial**: `ker H_S` (first subscript row zeroed) — iterations
//!   touch the same cache line (Fortran column-major);
//! * **group-temporal**: `H·x = c₁ − c₂` solvable within the localized
//!   space — two references touch the same elements a fixed offset apart;
//! * **group-spatial**: the same with `H_S`, up to a first-dimension
//!   residue smaller than the cache line.
//!
//! [`UgsSet::partition`] builds the sets; [`group_temporal_sets`] and
//! [`group_spatial_sets`] partition a set's members; [`ugs_cost`] evaluates
//! the paper's Equation 1 (cache lines per iteration); and [`depbased`]
//! implements the *dependence-based* baseline reuse analysis the paper
//! replaces (which is what needs the input dependences counted in Table 1).
//!
//! # Example
//!
//! ```
//! use ujam_ir::NestBuilder;
//! use ujam_reuse::{Localized, UgsSet, nest_cache_cost};
//!
//! let nest = NestBuilder::new("stencil")
//!     .array("A", &[66, 66]).array("B", &[66, 66])
//!     .loop_("J", 1, 64).loop_("I", 1, 64)
//!     .stmt("B(I,J) = A(I,J) + A(I,J+1) + A(I+1,J)")
//!     .build();
//! let sets = UgsSet::partition(&nest);
//! assert_eq!(sets.len(), 2); // one per array: all A refs share H = I
//! let l = Localized::innermost(nest.depth());
//! // Per iteration: A streams cost 2 lines/C (I,J & I,J+1 spatial; I+1,J
//! // group-spatial with I,J) and B costs 1/C.
//! let cost = nest_cache_cost(&nest, &l, 8);
//! assert!(cost > 0.0 && cost < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod depbased;
mod group;
mod locality;
pub mod permute;
mod ugs;

pub use cost::{nest_cache_cost, ugs_cost};
pub use group::{group_spatial_sets, group_temporal_sets};
pub use locality::{has_self_spatial, has_self_temporal, Localized};
pub use ugs::{UgsMember, UgsSet};
