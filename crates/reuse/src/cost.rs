//! Equation 1: memory (cache-line) cost of uniformly generated sets.

use crate::group::group_spatial_sets;
use crate::locality::{has_self_spatial, has_self_temporal, Localized};
use crate::ugs::UgsSet;
use ujam_ir::LoopNest;

/// The number of *cache lines fetched per innermost iteration* by one
/// uniformly generated set, given a localized iteration space and a cache
/// line of `line_elems` array elements — the paper's Equation 1.
///
/// The set is partitioned into group-spatial sets; each GSS fetches lines
/// through its leader:
///
/// * self-temporal reuse within `L` → the leader revisits the same element:
///   `0` lines per iteration (amortised `1/trip`);
/// * self-spatial reuse within `L` → the leader walks along a cache line:
///   `1/line` per iteration;
/// * otherwise → a fresh line every iteration: `1`.
///
/// Followers (group-temporal and group-spatial members) ride the leader's
/// line stream and contribute nothing.
///
/// # Example
///
/// ```
/// use ujam_ir::NestBuilder;
/// use ujam_reuse::{ugs_cost, Localized, UgsSet};
/// let nest = NestBuilder::new("sweep")
///     .array("A", &[66, 66])
///     .loop_("J", 1, 64).loop_("I", 1, 64)
///     .stmt("A(I,J) = A(I,J) * 2.0")
///     .build();
/// let sets = UgsSet::partition(&nest);
/// let l = Localized::innermost(nest.depth());
/// // Column-major sweep: one GSS with self-spatial reuse: 1/8 lines/iter.
/// assert_eq!(ugs_cost(&sets[0], &l, 8), 0.125);
/// ```
pub fn ugs_cost(ugs: &UgsSet, l: &Localized, line_elems: i64) -> f64 {
    let per_leader = if has_self_temporal(ugs.h(), l) {
        0.0
    } else if has_self_spatial(ugs.h(), l) {
        1.0 / line_elems as f64
    } else {
        1.0
    };
    let g_s = group_spatial_sets(ugs, l, line_elems).len();
    g_s as f64 * per_leader
}

/// Total cache lines fetched per innermost iteration by the whole nest:
/// Equation 1 summed over every uniformly generated set.
///
/// This is the `p` of the balance formula (§3.2): the prefetches (or
/// misses) each iteration must cover.
pub fn nest_cache_cost(nest: &LoopNest, l: &Localized, line_elems: i64) -> f64 {
    UgsSet::partition(nest)
        .iter()
        .map(|u| ugs_cost(u, l, line_elems))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;

    #[test]
    fn invariant_set_costs_nothing() {
        // A(J) under innermost-I localization: temporal reuse, cost 0.
        let nest = NestBuilder::new("inv")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("J", 1, 16)
            .loop_("I", 1, 16)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let sets = UgsSet::partition(&nest);
        let l = Localized::innermost(2);
        let a = sets.iter().find(|s| s.array() == "A").expect("A");
        let b = sets.iter().find(|s| s.array() == "B").expect("B");
        assert_eq!(ugs_cost(a, &l, 8), 0.0);
        // B(I): unit stride along innermost I: spatial, 1/8.
        assert_eq!(ugs_cost(b, &l, 8), 0.125);
        assert_eq!(nest_cache_cost(&nest, &l, 8), 0.125);
    }

    #[test]
    fn column_vs_row_order_matmul() {
        // C(I,J) = C(I,J) + A(I,K)*B(K,J) with I innermost: A spatial,
        // B invariant, C spatial.
        let jki = NestBuilder::new("jki")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .array("C", &[64, 64])
            .loop_("J", 1, 16)
            .loop_("K", 1, 16)
            .loop_("I", 1, 16)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        let l = Localized::innermost(3);
        let cost_jki = nest_cache_cost(&jki, &l, 8);
        // 1/8 (A) + 0 (B invariant) + 1/8 (C): 0.25.
        assert!((cost_jki - 0.25).abs() < 1e-12);

        // Same computation with K innermost: A walks a row (stride N): full
        // line per iteration; B walks a column: spatial; C invariant.
        let jik = NestBuilder::new("jik")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .array("C", &[64, 64])
            .loop_("J", 1, 16)
            .loop_("I", 1, 16)
            .loop_("K", 1, 16)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        let cost_jik = nest_cache_cost(&jik, &l, 8);
        assert!((cost_jik - (1.0 + 0.125 + 0.0)).abs() < 1e-12);
        assert!(cost_jik > cost_jki, "jki has better locality than jik");
    }

    #[test]
    fn unrolling_localization_reduces_cost() {
        // B(I,J) + B(I,J+1): under innermost localization two GSSs walk the
        // same data; localizing J (as unroll-and-jam by >=1 would) merges
        // them.
        let nest = NestBuilder::new("pair")
            .array("A", &[66, 66])
            .array("B", &[66, 66])
            .loop_("J", 1, 16)
            .loop_("I", 1, 16)
            .stmt("A(I,J) = B(I,J) + B(I,J+1)")
            .build();
        let inner = Localized::innermost(2);
        let both = Localized::with_unrolled(2, &[0]);
        let b = UgsSet::partition(&nest)
            .into_iter()
            .find(|s| s.array() == "B")
            .expect("B");
        assert_eq!(ugs_cost(&b, &inner, 8), 0.25, "two spatial streams");
        assert_eq!(ugs_cost(&b, &both, 8), 0.125, "merged into one stream");
    }

    #[test]
    fn no_reuse_costs_full_line_per_iteration() {
        // A(J,I) in a (J,I) nest: innermost I strides by 64 elements.
        let nest = NestBuilder::new("row")
            .array("A", &[64, 64])
            .loop_("J", 1, 16)
            .loop_("I", 1, 16)
            .stmt("A(J,I) = A(J,I) * 0.5")
            .build();
        let l = Localized::innermost(2);
        assert_eq!(nest_cache_cost(&nest, &l, 8), 1.0);
    }
}
