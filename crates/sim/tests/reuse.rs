//! Integration tests for the stack-distance engine and the reuse
//! profiler: the Fenwick-tree counter against the brute-force
//! reference on random traces, byte-stable report rendering, and the
//! degenerate traces a histogram consumer must survive.

use ujam_ir::NestBuilder;
use ujam_rng::Rng;
use ujam_sim::reuse::{stack_distances, stack_distances_brute};
use ujam_sim::{profile_nest_with_geometry, CacheGeometry};

/// The O(N log N) tree counter and the O(N^2) reference must agree on
/// every access of every trace — exercised over seeded random traces
/// with line populations small enough to force heavy reuse and large
/// enough to leave cold misses.
#[test]
fn tree_matches_brute_on_random_traces() {
    let mut rng = Rng::new(1997);
    for trial in 0..32 {
        let lines = rng.int(1, 40) as u64;
        let len = rng.int(0, 400) as usize;
        let trace: Vec<u64> = (0..len)
            .map(|_| rng.int(0, lines as i64 - 1) as u64)
            .collect();
        assert_eq!(
            stack_distances(&trace),
            stack_distances_brute(&trace),
            "trial {trial}: tree and brute diverge on {trace:?}"
        );
    }
}

/// Sparse line ids (e.g. real addresses with guard gaps) must not
/// confuse the interning step.
#[test]
fn tree_matches_brute_on_sparse_line_ids() {
    let mut rng = Rng::new(42);
    let ids = [0u64, 7, 1 << 20, u64::MAX - 3, 9_999_999, 12816 / 32];
    let trace: Vec<u64> = (0..500).map(|_| ids[rng.index(ids.len())]).collect();
    assert_eq!(stack_distances(&trace), stack_distances_brute(&trace));
}

#[test]
fn degenerate_traces_are_well_defined() {
    // Empty trace: no accesses, no distances.
    assert_eq!(stack_distances(&[]), vec![]);
    // All-cold trace: every line is new.
    let cold: Vec<u64> = (0..100).collect();
    assert!(stack_distances(&cold).iter().all(Option::is_none));
    // Single line hammered: one cold miss then distance zero forever.
    let hot = vec![3u64; 50];
    let d = stack_distances(&hot);
    assert_eq!(d[0], None);
    assert!(d[1..].iter().all(|&x| x == Some(0)));
}

/// Profiling the same nest twice must yield byte-identical JSON — the
/// report is pinned as a stable artifact for downstream diffing.
#[test]
fn report_renders_deterministically() {
    let nest = NestBuilder::new("det")
        .array("A", &[33, 33])
        .array("B", &[33, 33])
        .loop_("J", 1, 32)
        .loop_("I", 1, 32)
        .stmt("A(I,J) = B(I,J) + B(I+1,J)")
        .build();
    let g = CacheGeometry {
        capacity_bytes: 1024,
        line_bytes: 32,
        ways: 2,
    };
    let a = profile_nest_with_geometry(&nest, g).render_json();
    let b = profile_nest_with_geometry(&nest, g).render_json();
    assert_eq!(a, b, "same nest, same geometry, different bytes");
    assert!(a.starts_with("{\"version\":1,\"nest\":\"det\""));
}

/// A single-array nest attributes every access to that array, and the
/// per-array histogram totals reconcile with the aggregate.
#[test]
fn single_array_report_reconciles() {
    let nest = NestBuilder::new("solo")
        .array("A", &[64])
        .loop_("J", 1, 4)
        .loop_("I", 1, 64)
        .stmt("A(I) = A(I) + A(I)")
        .build();
    let g = CacheGeometry {
        capacity_bytes: 8192,
        line_bytes: 32,
        ways: 1,
    };
    let report = profile_nest_with_geometry(&nest, g);
    assert_eq!(report.arrays.len(), 1);
    let a = &report.arrays["A"];
    assert_eq!(a.accesses, report.accesses);
    assert_eq!(a.cold, report.cold);
    let agg: u64 = report.histogram.values().sum();
    let per: u64 = a.histogram.values().sum();
    assert_eq!(agg, per);
    assert_eq!(agg + report.cold, report.accesses);
}

/// An all-cold access pattern (every iteration touches a fresh line)
/// reports a 100% miss rate under both cache mappings.
#[test]
fn all_cold_nest_misses_everywhere() {
    // Stride 4 doubles = one access per 32-byte line, never revisited.
    let nest = NestBuilder::new("cold")
        .array("A", &[256])
        .loop_("I", 1, 64)
        .stmt("A(4*I) = A(4*I)")
        .build();
    let g = CacheGeometry {
        capacity_bytes: 1024,
        line_bytes: 32,
        ways: 1,
    };
    let report = profile_nest_with_geometry(&nest, g);
    // Two taps per iteration (read + write) land on the same line, so
    // the second is a hit at distance 0 — but across iterations every
    // line is cold.
    assert_eq!(report.cold, 64);
    assert_eq!(report.histogram.get(&0), Some(&64));
    assert_eq!(report.fa_misses, 64);
}
