//! A cycle-by-cycle list scheduler for one innermost-loop iteration.
//!
//! The balance model and `II = max(ResMII, RecMII)` are *bounds*; this
//! module schedules the actual operation DAG of a (scalar-replaced) loop
//! body against the machine's resources — memory units, floating-point
//! units, total issue width, operation latencies — the way a compiler
//! backend would.  It serves two purposes:
//!
//! * validation: the schedule length can never beat `ResMII`, and for
//!   latency-bound bodies it exposes the gap software pipelining must
//!   close (tests pin both properties);
//! * diagnostics: [`schedule_body`] returns per-op issue cycles, which the
//!   `ujam` CLI can print to show *why* a body is memory- or
//!   latency-bound.

use std::collections::HashMap;
use ujam_ir::{Expr, Lhs, LoopNest};
use ujam_machine::MachineModel;

/// The operation classes the scheduler tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// An array load (memory pipe).
    Load,
    /// An array store (memory pipe).
    Store,
    /// A floating-point operation (FP pipe).
    Flop,
}

/// One scheduled operation.
#[derive(Clone, Debug)]
pub struct ScheduledOp {
    /// Operation class.
    pub kind: OpKind,
    /// Operands this op waits for (indices into the op list).
    pub deps: Vec<usize>,
    /// Cycle the op issues at (filled by the scheduler).
    pub cycle: u64,
}

/// A scheduled loop body.
#[derive(Clone, Debug)]
pub struct BodySchedule {
    /// The operations in issue order of the original extraction.
    pub ops: Vec<ScheduledOp>,
    /// Total cycles from first issue to last completion.
    pub makespan: u64,
}

impl BodySchedule {
    /// Operations of one class.
    pub fn count(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }
}

/// Extracts the operation DAG of a body and list-schedules it.
///
/// Scalars are register moves: a name assigned in one statement feeds
/// uses in later statements with zero extra latency; loop-invariant
/// scalars and literals are free.  Dependences are operand edges only
/// (memory disambiguation is left to the dependence analysis — within one
/// iteration the paper's loop class has no same-address store/load pairs
/// that matter for the schedule length).
///
/// # Example
///
/// ```
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// use ujam_sim::listsched::{schedule_body, OpKind};
/// let nest = NestBuilder::new("axpy")
///     .array("Y", &[64]).array("X", &[64])
///     .loop_("I", 1, 64)
///     .stmt("Y(I) = Y(I) + 2.0 * X(I)")
///     .build();
/// let s = schedule_body(&nest, &MachineModel::dec_alpha());
/// assert_eq!(s.count(OpKind::Load), 2);
/// assert_eq!(s.count(OpKind::Store), 1);
/// assert_eq!(s.count(OpKind::Flop), 2);
/// // Two dependent flops at latency 6 dominate: 2 loads, mul, add, store.
/// assert!(s.makespan >= 13);
/// ```
pub fn schedule_body(nest: &LoopNest, machine: &MachineModel) -> BodySchedule {
    let (mut ops, _) = extract_ops(nest);
    list_schedule(&mut ops, machine);
    let makespan = ops
        .iter()
        .map(|o| o.cycle + latency(o.kind, machine))
        .max()
        .unwrap_or(0);
    BodySchedule { ops, makespan }
}

fn latency(kind: OpKind, machine: &MachineModel) -> u64 {
    match kind {
        OpKind::Load => machine.hit_cost().ceil() as u64,
        OpKind::Store => 1,
        OpKind::Flop => machine.fp_latency() as u64,
    }
}

/// Walks the body once, producing ops and the scalar-producer map.
fn extract_ops(nest: &LoopNest) -> (Vec<ScheduledOp>, HashMap<String, usize>) {
    let mut ops: Vec<ScheduledOp> = Vec::new();
    // Scalar name -> op index producing its current value.
    let mut producers: HashMap<String, usize> = HashMap::new();

    for stmt in nest.body() {
        let root = emit_expr(stmt.rhs(), &mut ops, &producers);
        match stmt.lhs() {
            Lhs::Array(_) => {
                let deps = root.into_iter().collect();
                ops.push(ScheduledOp {
                    kind: OpKind::Store,
                    deps,
                    cycle: 0,
                });
            }
            Lhs::Scalar(name) => {
                // A register move: the scalar's value is the rhs root (or,
                // for a pure copy, the copied producer).
                match root {
                    Some(idx) => {
                        producers.insert(name.clone(), idx);
                    }
                    None => {
                        producers.remove(name);
                    }
                }
            }
        }
    }
    (ops, producers)
}

/// Emits ops for an expression; returns the op producing its value, if
/// any (constants and external scalars produce none).
fn emit_expr(
    e: &Expr,
    ops: &mut Vec<ScheduledOp>,
    producers: &HashMap<String, usize>,
) -> Option<usize> {
    match e {
        Expr::Const(_) => None,
        Expr::Scalar(name) => producers.get(name).copied(),
        Expr::Ref(_) => {
            ops.push(ScheduledOp {
                kind: OpKind::Load,
                deps: Vec::new(),
                cycle: 0,
            });
            Some(ops.len() - 1)
        }
        Expr::Bin(_, l, r) => {
            let a = emit_expr(l, ops, producers);
            let b = emit_expr(r, ops, producers);
            let deps = a.into_iter().chain(b).collect();
            ops.push(ScheduledOp {
                kind: OpKind::Flop,
                deps,
                cycle: 0,
            });
            Some(ops.len() - 1)
        }
        Expr::Neg(inner) => {
            let a = emit_expr(inner, ops, producers);
            ops.push(ScheduledOp {
                kind: OpKind::Flop,
                deps: a.into_iter().collect(),
                cycle: 0,
            });
            Some(ops.len() - 1)
        }
    }
}

/// Greedy longest-path-first list scheduling under resource constraints.
fn list_schedule(ops: &mut [ScheduledOp], machine: &MachineModel) {
    let n = ops.len();
    // Critical-path priority (path length to any sink).
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        // Successors have larger indices? Not necessarily (deps point
        // backwards, so successors DO have larger indices by construction).
        let own = latency(ops[i].kind, machine);
        let mut h = own;
        for j in i + 1..n {
            if ops[j].deps.contains(&i) {
                h = h.max(own + height[j]);
            }
        }
        height[i] = h;
    }

    let mem_per_cycle = machine.mem_rate().ceil().max(1.0) as usize;
    let fp_per_cycle = machine.flop_rate().ceil().max(1.0) as usize;
    let issue_width = machine.issue_width() as usize;

    let mut done = vec![false; n];
    let mut ready_at = vec![0u64; n];
    let mut cycle: u64 = 0;
    let mut remaining = n;
    while remaining > 0 {
        let mut mem_used = 0;
        let mut fp_used = 0;
        let mut issued = 0;
        // Ready ops by priority.
        let mut ready: Vec<usize> = (0..n)
            .filter(|&i| !done[i] && ops[i].deps.iter().all(|&d| done[d]) && ready_at[i] <= cycle)
            .collect();
        ready.sort_by_key(|&i| std::cmp::Reverse(height[i]));
        for i in ready {
            if issued >= issue_width {
                break;
            }
            let fits = match ops[i].kind {
                OpKind::Load | OpKind::Store => {
                    if mem_used < mem_per_cycle {
                        mem_used += 1;
                        true
                    } else {
                        false
                    }
                }
                OpKind::Flop => {
                    if fp_used < fp_per_cycle {
                        fp_used += 1;
                        true
                    } else {
                        false
                    }
                }
            };
            if fits {
                ops[i].cycle = cycle;
                done[i] = true;
                issued += 1;
                remaining -= 1;
                let finish = cycle + latency(ops[i].kind, machine);
                for j in i + 1..n {
                    if ops[j].deps.contains(&i) {
                        ready_at[j] = ready_at[j].max(finish);
                    }
                }
            }
        }
        cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rec_mii, res_mii};
    use ujam_dep::DepGraph;
    use ujam_ir::transform::{scalar_replacement, unroll_and_jam};
    use ujam_ir::NestBuilder;

    #[test]
    fn dependent_chain_is_latency_bound() {
        // ((a+b)+c)+d: three dependent adds.
        let nest = NestBuilder::new("chain")
            .array("A", &[66])
            .array("B", &[66])
            .array("C", &[66])
            .array("D", &[66])
            .loop_("I", 1, 64)
            .stmt("D(I) = A(I) + B(I) + C(I) + 1.0")
            .build();
        let alpha = MachineModel::dec_alpha();
        let s = schedule_body(&nest, &alpha);
        // 3 flops * 6-cycle latency dominates the 3 loads.
        assert!(s.makespan >= 3 * 6, "makespan {}", s.makespan);
    }

    #[test]
    fn independent_ops_pack_to_resource_bound() {
        let nest = NestBuilder::new("wide")
            .array("A", &[66])
            .array("B", &[66])
            .loop_("I", 1, 64)
            .stmt("A(I) = B(I) * 2.0")
            .build();
        let wide = MachineModel::builder("wide")
            .rates(4.0, 4.0)
            .issue_width(8)
            .registers(64)
            .fp_latency(1)
            .build();
        let u = unroll_and_jam(
            &NestBuilder::new("outer")
                .array("A", &[66, 66])
                .array("B", &[66, 66])
                .loop_("J", 1, 64)
                .loop_("I", 1, 64)
                .stmt("A(I,J) = B(I,J) * 2.0")
                .build(),
            &[3, 0],
        )
        .expect("legal");
        let s = schedule_body(&u, &wide);
        // 8 memory ops at 4/cycle: at least 2 cycles of memory issue.
        assert!(s.makespan >= 2);
        assert_eq!(s.count(OpKind::Load), 4);
        assert_eq!(s.count(OpKind::Store), 4);
        let _ = nest;
    }

    #[test]
    fn schedule_never_beats_res_mii() {
        let alpha = MachineModel::dec_alpha();
        for name in ["jacobi", "mmjki", "shal"] {
            let nest = ujam_kernels_shim(name);
            let replaced = scalar_replacement(&nest);
            let s = schedule_body(&replaced.nest, &alpha);
            let bound = res_mii(&replaced.stats, nest.flops_per_iter(), &alpha);
            assert!(
                s.makespan as f64 >= bound.floor(),
                "{name}: makespan {} < ResMII {bound}",
                s.makespan
            );
        }
    }

    #[test]
    fn pipelining_headroom_shrinks_with_unrolling() {
        // For the intro reduction, the single-iteration makespan is
        // latency-bound; unrolling packs independent chains and the
        // makespan per original iteration drops.
        let nest = NestBuilder::new("intro")
            .array("A", &[250])
            .array("B", &[250])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let alpha = MachineModel::dec_alpha();
        let g = DepGraph::build(&nest);
        assert_eq!(rec_mii(&nest, &g, &alpha), 6.0);
        let s1 = scalar_replacement(&nest);
        let m1 = schedule_body(&s1.nest, &alpha).makespan as f64;
        let u = unroll_and_jam(&nest, &[3, 0]).expect("legal");
        let s4 = scalar_replacement(&u);
        let m4 = schedule_body(&s4.nest, &alpha).makespan as f64 / 4.0;
        assert!(m4 < m1, "per-iteration makespan should drop: {m1} -> {m4}");
    }

    /// Tiny local copies of two kernels (avoiding a dev-dependency cycle
    /// with ujam-kernels).
    fn ujam_kernels_shim(name: &str) -> ujam_ir::LoopNest {
        match name {
            "jacobi" => NestBuilder::new("jacobi")
                .array("A", &[52, 52])
                .array("B", &[52, 52])
                .loop_("J", 2, 49)
                .loop_("I", 2, 49)
                .stmt("B(I,J) = 0.25 * (A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1))")
                .build(),
            "mmjki" => NestBuilder::new("mmjki")
                .array("A", &[52, 52])
                .array("B", &[52, 52])
                .array("C", &[52, 52])
                .loop_("J", 1, 48)
                .loop_("K", 1, 48)
                .loop_("I", 1, 48)
                .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
                .build(),
            _ => NestBuilder::new("shal")
                .array("U", &[52, 52])
                .array("V", &[52, 52])
                .array("Z", &[52, 52])
                .loop_("J", 1, 48)
                .loop_("I", 1, 48)
                .stmt("U(I,J) = V(I,J) + Z(I+1,J) * Z(I,J+1) - Z(I,J)")
                .build(),
        }
    }
}
