//! Execution-time estimation for loop nests on modelled machines.
//!
//! This crate is the reproduction's stand-in for the paper's DEC Alpha and
//! HP PA-RISC workstations (§5.2, Figures 8–9): it runs a loop nest
//! through
//!
//! 1. **scalar replacement** — to know the steady-state memory operations,
//!    flops and register pressure of the innermost body,
//! 2. an **initiation-interval model** — `II = max(ResMII, RecMII)`, the
//!    software-pipelining bound a good backend achieves on these machines,
//! 3. a **cache simulation** of the nest's full reference trace through
//!    the machine's set-associative cache,
//!
//! and combines them into a cycle estimate
//!
//! ```text
//! cycles = II·iterations + (C_m − C_h)·misses + hoisted-op cycles
//! ```
//!
//! Absolute numbers are not the point (the paper's were wall-clock seconds
//! on 1990s hardware); ratios between variants of the same loop are, and
//! those depend only on the effects unroll-and-jam manipulates: op mix,
//! register reuse, and locality.
//!
//! # Example
//!
//! ```
//! use ujam_ir::NestBuilder;
//! use ujam_machine::MachineModel;
//! use ujam_sim::simulate;
//!
//! let nest = NestBuilder::new("sweep")
//!     .array("A", &[64, 64])
//!     .loop_("J", 1, 64).loop_("I", 1, 64)
//!     .stmt("A(I,J) = A(I,J) * 2.0")
//!     .build();
//! let r = simulate(&nest, &MachineModel::dec_alpha());
//! assert!(r.cycles > 0.0);
//! assert_eq!(r.iterations, 64 * 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod listsched;
mod profile;
pub mod reuse;
mod schedule;

pub use cache::{Access, Cache};
pub use profile::{
    profile_nest, profile_nest_with_geometry, ArrayReuse, CacheGeometry, ReuseReport,
    REPORT_VERSION,
};
pub use schedule::{rec_mii, res_mii};

use std::collections::BTreeMap;
use ujam_dep::DepGraph;
use ujam_ir::transform::scalar_replacement;
use ujam_ir::{LoopNest, Stmt};
use ujam_machine::MachineModel;

/// The outcome of simulating one nest on one machine.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Estimated total cycles.
    pub cycles: f64,
    /// Innermost initiation interval (cycles per iteration).
    pub ii: f64,
    /// Innermost iterations executed.
    pub iterations: i64,
    /// Data-cache misses over the whole nest.
    pub misses: u64,
    /// Data-cache accesses over the whole nest.
    pub accesses: u64,
}

impl SimReport {
    /// Cache miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Simulates a nest: initiation interval from the scalar-replaced body,
/// misses from the full reference trace, cycles from both.
///
/// Pass the nest *before* scalar replacement (e.g. straight out of
/// `unroll_and_jam`); replacement is applied internally for the schedule
/// while the cache sees the complete access stream.
pub fn simulate(nest: &LoopNest, machine: &MachineModel) -> SimReport {
    let replaced = scalar_replacement(nest);
    let graph = DepGraph::build(nest);
    let flops = nest.flops_per_iter();
    let ii = res_mii(&replaced.stats, flops, machine)
        .max(rec_mii(nest, &graph, machine))
        .max(1.0);

    let (misses, accesses) = trace_cache(nest, machine);
    let iterations = nest.iterations();
    let inner_trip = nest.loops().last().expect("non-empty nest").trip_count();
    let outer_iters = (iterations / inner_trip.max(1)) as f64;
    let hoisted_ops =
        (replaced.stats.hoisted_loads + replaced.stats.hoisted_stores) as f64 * outer_iters;

    // Software prefetching hides misses up to the issue bandwidth over the
    // loop's compute time (§3.2's serviced prefetches; §6's future-work
    // architecture).  Machines without prefetch (b = 0) pay for every miss.
    let prefetch_slots = machine.prefetch_bandwidth() * ii * iterations as f64;
    let unhidden = (misses as f64 - prefetch_slots).max(0.0);

    let cycles = ii * iterations as f64
        + (machine.miss_penalty() - machine.hit_cost()) * unhidden
        + hoisted_ops / machine.mem_rate();
    SimReport {
        cycles,
        ii,
        iterations,
        misses,
        accesses,
    }
}

/// Padding between arrays in the simulated address space.
const GUARD_BYTES: i64 = 4096;
/// All modelled elements are doubles.
pub(crate) const ELEM_BYTES: i64 = 8;

/// Lays the nest's arrays out consecutively with guard gaps so small
/// out-of-extent ghost accesses stay distinct and deterministic.
/// Returns each array's base byte address.  Shared by the cycle
/// simulator's cache trace and the reuse profiler, so both see the same
/// addresses.
pub(crate) fn address_layout(nest: &LoopNest) -> BTreeMap<String, i64> {
    let mut bases = BTreeMap::new();
    let mut next: i64 = GUARD_BYTES;
    for a in nest.arrays() {
        bases.insert(a.name().to_string(), next);
        next += a.len() * ELEM_BYTES + 2 * GUARD_BYTES;
    }
    bases
}

/// Runs the nest's reference trace through the machine's cache.
fn trace_cache(nest: &LoopNest, machine: &MachineModel) -> (u64, u64) {
    let bases = address_layout(nest);
    let mut cache = Cache::for_machine(machine);
    let mut env: BTreeMap<&str, i64> = BTreeMap::new();
    walk(nest, 0, &mut env, &mut |stmt, env| {
        for (aref, _is_def) in stmt.refs() {
            let decl = nest.array(aref.array()).expect("validated nest");
            let sub = aref.eval(env);
            let addr = bases[aref.array()] + decl.linearize(&sub) * ELEM_BYTES;
            cache.access(u64::try_from(addr.max(0)).expect("address fits"));
        }
    });
    (cache.misses(), cache.accesses())
}

/// Depth-first walk of the iteration space invoking `f` per statement.
fn walk<'a>(
    nest: &'a LoopNest,
    level: usize,
    env: &mut BTreeMap<&'a str, i64>,
    f: &mut impl FnMut(&'a Stmt, &BTreeMap<&'a str, i64>),
) {
    if level == nest.depth() {
        for stmt in nest.body() {
            f(stmt, env);
        }
        return;
    }
    let l = &nest.loops()[level];
    for v in l.values() {
        env.insert(l.var(), v);
        walk(nest, level + 1, env, f);
    }
    env.remove(l.var());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::transform::unroll_and_jam;
    use ujam_ir::NestBuilder;

    fn intro(n: i64) -> LoopNest {
        NestBuilder::new("intro")
            .array("A", &[n + 8])
            .array("B", &[n + 8])
            .loop_("J", 1, n)
            .loop_("I", 1, n)
            .stmt("A(J) = A(J) + B(I)")
            .build()
    }

    #[test]
    fn unroll_and_jam_speeds_up_the_intro_loop() {
        let alpha = MachineModel::dec_alpha();
        let nest = intro(240);
        let before = simulate(&nest, &alpha);
        let after = simulate(&unroll_and_jam(&nest, &[3, 0]).unwrap(), &alpha);
        // 4 accumulators amortize the FP latency: solid speedup.
        assert!(
            after.cycles < before.cycles * 0.6,
            "expected speedup, got {} -> {}",
            before.cycles,
            after.cycles
        );
    }

    #[test]
    fn misses_reflect_locality() {
        let alpha = MachineModel::dec_alpha();
        // Column-major walk: spatial locality; row-major walk: none (the
        // 8 KiB cache cannot hold a 512-column row working set).
        let col = NestBuilder::new("col")
            .array("A", &[512, 512])
            .loop_("J", 1, 512)
            .loop_("I", 1, 512)
            .stmt("A(I,J) = A(I,J) * 2.0")
            .build();
        let row = NestBuilder::new("row")
            .array("A", &[512, 512])
            .loop_("I", 1, 512)
            .loop_("J", 1, 512)
            .stmt("A(I,J) = A(I,J) * 2.0")
            .build();
        let col_r = simulate(&col, &alpha);
        let row_r = simulate(&row, &alpha);
        assert!(col_r.misses * 3 < row_r.misses);
        assert!(col_r.cycles < row_r.cycles);
    }

    #[test]
    fn report_fields_are_consistent() {
        let r = simulate(&intro(48), &MachineModel::hp_parisc());
        assert_eq!(r.iterations, 48 * 48);
        // Three refs per iteration reach the cache.
        assert_eq!(r.accesses, 3 * 48 * 48);
        assert!(r.miss_rate() >= 0.0 && r.miss_rate() <= 1.0);
        assert!(r.ii >= 1.0);
    }

    #[test]
    fn ii_respects_fp_latency_for_reductions() {
        let alpha = MachineModel::dec_alpha();
        let r = simulate(&intro(48), &alpha);
        assert!(r.ii >= alpha.fp_latency() as f64);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use ujam_ir::NestBuilder;

    #[test]
    fn prefetch_bandwidth_hides_miss_penalty() {
        // A streaming loop whose misses dominate on a no-prefetch machine.
        let nest = NestBuilder::new("stream")
            .array("A", &[512, 512])
            .array("B", &[512, 512])
            .loop_("J", 1, 256)
            .loop_("I", 1, 256)
            .stmt("A(I,J) = B(I,J) * 2.0")
            .build();
        let blocking = MachineModel::dec_alpha();
        let prefetching = MachineModel::builder("pf")
            .rates(1.0, 1.0)
            .registers(32)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .prefetch(1.0)
            .fp_latency(6)
            .build();
        let cold = simulate(&nest, &blocking);
        let warm = simulate(&nest, &prefetching);
        assert_eq!(cold.misses, warm.misses, "same cache behaviour");
        assert!(
            warm.cycles < cold.cycles,
            "prefetching must hide the penalty: {} vs {}",
            warm.cycles,
            cold.cycles
        );
        // With ample bandwidth every miss is hidden: cycles reduce to the
        // pipeline time plus hoisted traffic.
        assert!((warm.cycles - warm.ii * warm.iterations as f64).abs() < 1.0);
    }
}

#[cfg(test)]
mod tiling_tests {
    use super::*;
    use ujam_ir::transform::tile;
    use ujam_ir::NestBuilder;

    /// The locality transformation the Wolf et al. framework adds on top
    /// of unroll-and-jam: tiling shrinks the per-tile working set below
    /// the cache and the simulator sees the misses disappear.
    #[test]
    fn tiling_matmul_cuts_cache_misses() {
        let n = 96;
        let nest = NestBuilder::new("mm")
            .array("A", &[n + 4, n + 4])
            .array("B", &[n + 4, n + 4])
            .array("C", &[n + 4, n + 4])
            .loop_("J", 1, n)
            .loop_("K", 1, n)
            .loop_("I", 1, n)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        let alpha = MachineModel::dec_alpha();
        let flat = simulate(&nest, &alpha);
        // Tile J and K by 8: the A(:, K-tile) block (96×8 doubles = 6 KiB)
        // fits the 8 KiB cache and is reused across the 8 J_s iterations.
        let tiled = tile(&nest, &[(0, 8), (1, 8)]).expect("tileable");
        let blocked = simulate(&tiled, &alpha);
        assert_eq!(flat.accesses, blocked.accesses, "same work");
        assert!(
            blocked.misses * 2 < flat.misses,
            "tiling should at least halve misses: {} -> {}",
            flat.misses,
            blocked.misses
        );
    }
}
