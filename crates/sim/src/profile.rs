//! Reuse-distance profiling: run a nest through the IR interpreter with
//! the memory-access tap on, compute exact stack-distance histograms,
//! and project miss rates for a concrete cache geometry.
//!
//! Two projections are reported side by side:
//!
//! - **fully-associative** — straight from the stack distances: an
//!   access misses iff it is cold or its distance is at least the
//!   cache's line capacity (Mattson's stack algorithm), and
//! - **set-associative** — the same trace replayed through the machine's
//!   real [`Cache`](crate::Cache), which additionally sees conflict
//!   misses.
//!
//! The gap between the two is itself informative: it is exactly the
//! conflict-miss component the paper's Eq. 1 cost model cannot see.

use crate::reuse::stack_distances;
use crate::{address_layout, Cache, ELEM_BYTES};
use std::collections::BTreeMap;
use ujam_ir::interp::{execute_with_tap, FnTap};
use ujam_ir::LoopNest;
use ujam_trace::json;

/// Schema version of [`ReuseReport::render_json`].  Bump on any change
/// to the emitted structure.
pub const REPORT_VERSION: u32 = 1;

/// A cache geometry to project miss rates against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
}

impl CacheGeometry {
    /// The geometry of a machine model's data cache.
    pub fn for_machine(m: &ujam_machine::MachineModel) -> CacheGeometry {
        CacheGeometry {
            capacity_bytes: m.cache_bytes(),
            line_bytes: m.line_bytes(),
            ways: m.associativity(),
        }
    }

    /// Capacity in whole lines.
    pub fn capacity_lines(&self) -> u64 {
        (self.capacity_bytes / self.line_bytes) as u64
    }

    /// Validates the geometry the same way [`Cache::new`] would, as an
    /// error instead of a panic (for CLI-supplied values).
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 || self.line_bytes == 0 || self.ways == 0 {
            return Err("cache geometry fields must all be positive".to_string());
        }
        if !self
            .capacity_bytes
            .is_multiple_of(self.line_bytes * self.ways)
        {
            return Err(format!(
                "capacity {} is not a whole number of sets ({} bytes per set)",
                self.capacity_bytes,
                self.line_bytes * self.ways
            ));
        }
        Ok(())
    }
}

/// Reuse behaviour of one array within the aggregate trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArrayReuse {
    /// Accesses to this array.
    pub accesses: u64,
    /// Cold (first-touch) accesses.
    pub cold: u64,
    /// Power-of-two-bucketed distance histogram: key is the bucket's
    /// lower bound (0, 1, 2, 4, 8, …), value the access count.
    pub histogram: BTreeMap<u64, u64>,
}

/// The result of reuse-profiling one nest against one cache geometry.
#[derive(Clone, Debug, PartialEq)]
pub struct ReuseReport {
    /// Name of the profiled nest.
    pub nest: String,
    /// Geometry the miss rates are projected for.
    pub geometry: CacheGeometry,
    /// Total tapped array accesses.
    pub accesses: u64,
    /// Cold (first-touch-of-line) accesses.
    pub cold: u64,
    /// Fully-associative misses (cold + distance ≥ capacity).
    pub fa_misses: u64,
    /// Set-associative misses from replaying the trace through
    /// [`Cache`].
    pub sa_misses: u64,
    /// Aggregate power-of-two-bucketed distance histogram (cold
    /// accesses excluded; key is the bucket's lower bound).
    pub histogram: BTreeMap<u64, u64>,
    /// Per-array breakdown, distances measured against the aggregate
    /// LRU stack.
    pub arrays: BTreeMap<String, ArrayReuse>,
}

impl ReuseReport {
    /// Fully-associative miss rate in `[0, 1]`.
    pub fn fa_miss_rate(&self) -> f64 {
        rate(self.fa_misses, self.accesses)
    }

    /// Set-associative miss rate in `[0, 1]`.
    pub fn sa_miss_rate(&self) -> f64 {
        rate(self.sa_misses, self.accesses)
    }

    /// Renders the report as a single-line JSON object.
    ///
    /// The output is byte-stable: all maps are ordered, field order is
    /// fixed, and floats go through the trace crate's canonical
    /// formatter — profiling the same nest twice yields identical
    /// bytes (pinned by a test).
    pub fn render_json(&self) -> String {
        let mut o = String::with_capacity(512);
        o.push_str("{\"version\":");
        o.push_str(&REPORT_VERSION.to_string());
        o.push_str(",\"nest\":");
        json::write_escaped(&mut o, &self.nest);
        o.push_str(",\"geometry\":{\"capacity_bytes\":");
        o.push_str(&self.geometry.capacity_bytes.to_string());
        o.push_str(",\"line_bytes\":");
        o.push_str(&self.geometry.line_bytes.to_string());
        o.push_str(",\"ways\":");
        o.push_str(&self.geometry.ways.to_string());
        o.push_str("},\"accesses\":");
        o.push_str(&self.accesses.to_string());
        o.push_str(",\"cold\":");
        o.push_str(&self.cold.to_string());
        o.push_str(",\"fa_misses\":");
        o.push_str(&self.fa_misses.to_string());
        o.push_str(",\"fa_miss_rate\":");
        json::write_f64(&mut o, self.fa_miss_rate());
        o.push_str(",\"sa_misses\":");
        o.push_str(&self.sa_misses.to_string());
        o.push_str(",\"sa_miss_rate\":");
        json::write_f64(&mut o, self.sa_miss_rate());
        o.push_str(",\"histogram\":");
        write_histogram(&mut o, &self.histogram);
        o.push_str(",\"arrays\":{");
        for (i, (name, a)) in self.arrays.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            json::write_escaped(&mut o, name);
            o.push_str(":{\"accesses\":");
            o.push_str(&a.accesses.to_string());
            o.push_str(",\"cold\":");
            o.push_str(&a.cold.to_string());
            o.push_str(",\"histogram\":");
            write_histogram(&mut o, &a.histogram);
            o.push('}');
        }
        o.push_str("}}");
        o
    }
}

fn rate(misses: u64, accesses: u64) -> f64 {
    if accesses == 0 {
        0.0
    } else {
        misses as f64 / accesses as f64
    }
}

fn write_histogram(out: &mut String, h: &BTreeMap<u64, u64>) {
    out.push('{');
    for (i, (dist, count)) in h.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&dist.to_string());
        out.push_str("\":");
        out.push_str(&count.to_string());
    }
    out.push('}');
}

/// Lower bound of the power-of-two bucket containing `dist`:
/// 0, 1, 2, 4, 8, …
fn bucket(dist: u64) -> u64 {
    if dist < 2 {
        dist
    } else {
        1u64 << (63 - dist.leading_zeros())
    }
}

/// Profiles a nest against its machine's data-cache geometry.
pub fn profile_nest(nest: &LoopNest, machine: &ujam_machine::MachineModel) -> ReuseReport {
    profile_nest_with_geometry(nest, CacheGeometry::for_machine(machine))
}

/// Profiles a nest against an explicit cache geometry.
///
/// Executes the nest once under the interpreter's access tap, computes
/// exact stack distances at line granularity over the aggregate trace,
/// and replays the byte-address trace through a set-associative
/// [`Cache`] of the same geometry.
///
/// # Panics
///
/// Panics on degenerate geometry — call [`CacheGeometry::validate`]
/// first for untrusted input.
pub fn profile_nest_with_geometry(nest: &LoopNest, geometry: CacheGeometry) -> ReuseReport {
    let bases = address_layout(nest);
    // Collect (array index, byte address) per access; names interned so
    // the hot tap does no string allocation.
    let names: Vec<String> = nest.arrays().iter().map(|a| a.name().to_string()).collect();
    let index: BTreeMap<&str, u32> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    let mut events: Vec<(u32, u64)> = Vec::new();
    let mut tap = FnTap(|array: &str, flat: i64, _kind| {
        // Declared arrays only — exactly the set `index` covers.
        if let Some(&id) = index.get(array) {
            let addr = bases[array] + flat * ELEM_BYTES;
            events.push((id, u64::try_from(addr.max(0)).expect("address fits")));
        }
    });
    execute_with_tap(nest, &mut tap);

    let line_bytes = geometry.line_bytes as u64;
    let lines: Vec<u64> = events.iter().map(|&(_, addr)| addr / line_bytes).collect();
    let distances = stack_distances(&lines);

    let capacity = geometry.capacity_lines();
    let mut cache = Cache::new(geometry.capacity_bytes, geometry.line_bytes, geometry.ways);
    let mut per_array: Vec<ArrayReuse> = vec![ArrayReuse::default(); names.len()];
    let (mut cold, mut fa_misses) = (0u64, 0u64);
    let mut histogram: BTreeMap<u64, u64> = BTreeMap::new();
    for (&(id, addr), dist) in events.iter().zip(&distances) {
        let a = &mut per_array[id as usize];
        a.accesses += 1;
        match dist {
            None => {
                cold += 1;
                fa_misses += 1;
                a.cold += 1;
            }
            Some(d) => {
                if *d >= capacity {
                    fa_misses += 1;
                }
                *histogram.entry(bucket(*d)).or_insert(0) += 1;
                *a.histogram.entry(bucket(*d)).or_insert(0) += 1;
            }
        }
        cache.access(addr);
    }

    ReuseReport {
        nest: nest.name().to_string(),
        geometry,
        accesses: events.len() as u64,
        cold,
        fa_misses,
        sa_misses: cache.misses(),
        histogram,
        arrays: names.into_iter().zip(per_array).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;
    use ujam_machine::MachineModel;

    #[test]
    fn streaming_nest_misses_once_per_line() {
        // 512 consecutive doubles, 32-byte lines: 1 miss per 4 elements,
        // in both projections (no conflicts in a pure stream).
        let nest = NestBuilder::new("stream")
            .array("A", &[512])
            .loop_("I", 1, 512)
            .stmt("A(I) = A(I) * 2.0")
            .build();
        let r = profile_nest(&nest, &MachineModel::dec_alpha());
        assert_eq!(r.accesses, 1024); // one read + one write per element
        assert_eq!(r.cold, 128);
        assert_eq!(r.fa_misses, 128);
        assert_eq!(r.sa_misses, 128);
        // The read/write pair and line neighbours show up at distance 0.
        assert_eq!(r.histogram[&0], 1024 - 128);
        assert_eq!(r.arrays["A"].accesses, 1024);
    }

    #[test]
    fn fully_assoc_projection_matches_stack_algorithm() {
        // Working set of 2 KiB re-swept twice fits an 8 KiB cache: only
        // cold misses.  The same sweep against a 1 KiB geometry misses
        // every line, every pass.
        let nest = NestBuilder::new("sweep")
            .array("A", &[256])
            .loop_("P", 1, 2)
            .loop_("I", 1, 256)
            .stmt("s = s + A(I)")
            .build();
        let fits = profile_nest_with_geometry(
            &nest,
            CacheGeometry {
                capacity_bytes: 8192,
                line_bytes: 32,
                ways: 1,
            },
        );
        assert_eq!(fits.cold, 64);
        assert_eq!(fits.fa_misses, 64);
        let thrash = profile_nest_with_geometry(
            &nest,
            CacheGeometry {
                capacity_bytes: 1024,
                line_bytes: 32,
                ways: 1,
            },
        );
        assert_eq!(thrash.fa_misses, 128);
    }

    #[test]
    fn report_is_byte_stable() {
        let nest = NestBuilder::new("stable")
            .array("A", &[64, 8])
            .array("B", &[64])
            .loop_("J", 1, 8)
            .loop_("I", 1, 64)
            .stmt("A(I,J) = A(I,J) + B(I)")
            .build();
        let m = MachineModel::dec_alpha();
        let a = profile_nest(&nest, &m).render_json();
        let b = profile_nest(&nest, &m).render_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"version\":1,\"nest\":\"stable\""));
    }

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 4);
        assert_eq!(bucket(7), 4);
        assert_eq!(bucket(1023), 512);
    }
}
