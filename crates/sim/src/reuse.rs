//! Exact LRU stack-distance (reuse-distance) computation.
//!
//! The *reuse distance* of an access is the number of **distinct** cache
//! lines touched since the previous access to the same line (0 for an
//! immediate re-touch, `None` for the first — cold — access).  It is the
//! machine-independent summary of a reference trace: an access hits in a
//! fully-associative LRU cache of `C` lines iff its distance is `< C`,
//! so one pass over a trace projects miss rates for *every* capacity at
//! once (Mattson's stack algorithm).
//!
//! Two implementations live here:
//!
//! - [`stack_distances`] — the production O(N log N) counter: a Fenwick
//!   (binary-indexed) tree over trace positions holds one set bit per
//!   *currently most recent* access of each line, so the number of
//!   distinct lines between two accesses is a prefix-sum difference.
//! - [`stack_distances_brute`] — the obviously-correct O(N·D) reference
//!   (an explicit LRU stack), kept as the oracle the fast path is tested
//!   against.

/// A Fenwick (binary-indexed) tree over `n` positions supporting
/// point add and prefix sum, both O(log n).
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at position `i` (0-based).
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based inclusive).
    fn prefix(&self, i: usize) -> u32 {
        let mut i = i + 1;
        let mut s = 0u32;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Computes the reuse distance of every access in `trace` (elements are
/// opaque line identifiers).  `None` marks a cold access.
///
/// O(N log N) time, O(N) space.
///
/// # Example
///
/// ```
/// use ujam_sim::reuse::stack_distances;
/// // a b c a  →  a and the second a have two distinct lines between.
/// assert_eq!(
///     stack_distances(&[1, 2, 3, 1]),
///     vec![None, None, None, Some(2)]
/// );
/// ```
pub fn stack_distances(trace: &[u64]) -> Vec<Option<u64>> {
    use std::collections::HashMap;
    let mut out = Vec::with_capacity(trace.len());
    let mut last: HashMap<u64, usize> = HashMap::new();
    let mut bit = Fenwick::new(trace.len());
    for (t, &line) in trace.iter().enumerate() {
        match last.insert(line, t) {
            Some(prev) => {
                // Distinct lines touched strictly between prev and t:
                // each contributes exactly one set bit (its most recent
                // position) in (prev, t).
                let between = bit.prefix(t.saturating_sub(1)) - bit.prefix(prev);
                out.push(Some(u64::from(between)));
                bit.add(prev, -1);
            }
            None => out.push(None),
        }
        bit.add(t, 1);
    }
    out
}

/// Brute-force reference: an explicit LRU stack, O(N·D).  Exists to
/// cross-check [`stack_distances`]; use that one for real traces.
pub fn stack_distances_brute(trace: &[u64]) -> Vec<Option<u64>> {
    let mut out = Vec::with_capacity(trace.len());
    let mut stack: Vec<u64> = Vec::new(); // most recent last
    for &line in trace {
        match stack.iter().rposition(|&l| l == line) {
            Some(pos) => {
                out.push(Some((stack.len() - 1 - pos) as u64));
                stack.remove(pos);
            }
            None => out.push(None),
        }
        stack.push(line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_checked_trace() {
        // a b a c b b a
        let d = stack_distances(&[1, 2, 1, 3, 2, 2, 1]);
        assert_eq!(
            d,
            vec![
                None,
                None,
                Some(1), // b between the two a's
                None,
                Some(2), // a, c between the two b's
                Some(0), // immediate re-touch
                Some(2), // c, b between
            ]
        );
    }

    #[test]
    fn brute_matches_on_the_same_trace() {
        let trace = [1, 2, 1, 3, 2, 2, 1];
        assert_eq!(stack_distances(&trace), stack_distances_brute(&trace));
    }

    #[test]
    fn all_cold_trace() {
        let d = stack_distances(&[10, 20, 30, 40]);
        assert!(d.iter().all(Option::is_none));
    }

    #[test]
    fn empty_trace() {
        assert!(stack_distances(&[]).is_empty());
        assert!(stack_distances_brute(&[]).is_empty());
    }

    #[test]
    fn single_line_repeated() {
        let d = stack_distances(&[7; 5]);
        assert_eq!(d, vec![None, Some(0), Some(0), Some(0), Some(0)]);
    }
}
