//! Innermost-loop initiation-interval estimation.
//!
//! The paper's targets are pipelined, multi-issue RISC machines; a
//! software-pipelined innermost loop sustains one iteration every `II`
//! cycles where `II = max(ResMII, RecMII)`:
//!
//! * **ResMII** — resource pressure: the busiest of the memory pipe, the
//!   floating-point pipe, and total issue bandwidth;
//! * **RecMII** — recurrence pressure: a value carried around a
//!   loop-carried flow dependence of distance `d` must traverse its
//!   pipeline latency every `d` iterations.
//!
//! Scalar replacement feeds ResMII (fewer memory ops per iteration), and
//! unroll-and-jam feeds the flop side (more independent work per
//! iteration) — which is exactly how the transformation buys speed on
//! these machines.

use ujam_dep::{DepGraph, DepKind, Dist};
use ujam_ir::transform::ReplacementStats;
use ujam_ir::LoopNest;
use ujam_machine::MachineModel;

/// Resource-constrained minimum initiation interval, in cycles per
/// innermost iteration.
///
/// `spill_ops` memory operations are added when scalar replacement wants
/// more registers than the machine has (each spilled value costs a store
/// and a reload per iteration, charged as two memory ops).
pub fn res_mii(stats: &ReplacementStats, flops: usize, machine: &MachineModel) -> f64 {
    let spill = 2 * (stats.registers as i64 - machine.registers_for_replacement() as i64).max(0);
    let mem = stats.memory_ops() as f64 + spill as f64;
    let fp = flops as f64;
    let mem_bound = mem / machine.mem_rate();
    let fp_bound = fp / machine.flop_rate();
    let issue_bound = (mem + fp) / machine.issue_width() as f64;
    mem_bound.max(fp_bound).max(issue_bound)
}

/// Recurrence-constrained minimum initiation interval.
///
/// Every flow dependence that can be carried by the innermost loop with
/// all outer components zero forces `fp_latency / d` cycles per iteration
/// (a single-operation recurrence — the accumulator case that dominates
/// the paper's loops).
pub fn rec_mii(nest: &LoopNest, graph: &DepGraph, machine: &MachineModel) -> f64 {
    let depth = nest.depth();
    let mut worst: f64 = 0.0;
    for e in graph.edges_of(DepKind::True) {
        let outer_zero = e.dist[..depth - 1].iter().all(|d| d.can_be_zero());
        if !outer_zero {
            continue;
        }
        let d = match e.dist[depth - 1] {
            Dist::Exact(k) if k >= 1 => k as f64,
            Dist::Exact(_) => continue,
            // Unconstrained: the tightest realizable carry is distance 1.
            Dist::Any => 1.0,
        };
        worst = worst.max(machine.fp_latency() as f64 / d);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::transform::scalar_replacement;
    use ujam_ir::NestBuilder;

    #[test]
    fn res_mii_tracks_the_busiest_pipe() {
        let nest = NestBuilder::new("r")
            .array("A", &[66])
            .array("B", &[66])
            .loop_("I", 1, 64)
            .stmt("A(I) = B(I) + 1.0")
            .build();
        let stats = scalar_replacement(&nest).stats;
        let alpha = MachineModel::dec_alpha();
        // 2 memory ops (load B, store A), 1 flop: memory pipe dominates.
        assert_eq!(res_mii(&stats, 1, &alpha), 2.0);
    }

    #[test]
    fn spills_charge_extra_memory_ops() {
        let nest = NestBuilder::new("r")
            .array("A", &[66])
            .array("B", &[66])
            .loop_("I", 1, 64)
            .stmt("A(I) = B(I) + B(I-1) + B(I-2)")
            .build();
        let stats = scalar_replacement(&nest).stats;
        assert_eq!(stats.registers, 3);
        let cramped = MachineModel::builder("cramped")
            .rates(1.0, 1.0)
            .registers(7) // 1 usable after the reserve
            .build();
        // 2 ops + 2 spilled values * 2 = 6 memory ops.
        assert_eq!(res_mii(&stats, 2, &cramped), 6.0);
    }

    #[test]
    fn accumulator_recurrence_bounds_ii() {
        let nest = NestBuilder::new("acc")
            .array("A", &[66])
            .array("B", &[66])
            .loop_("J", 1, 64)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let g = DepGraph::build(&nest);
        let alpha = MachineModel::dec_alpha();
        assert_eq!(rec_mii(&nest, &g, &alpha), alpha.fp_latency() as f64);
    }

    #[test]
    fn long_distance_recurrence_relaxes_ii() {
        let nest = NestBuilder::new("rec3")
            .array("A", &[70])
            .loop_("I", 4, 67)
            .stmt("A(I) = A(I-3) * 0.5")
            .build();
        let g = DepGraph::build(&nest);
        let alpha = MachineModel::dec_alpha();
        assert_eq!(rec_mii(&nest, &g, &alpha), alpha.fp_latency() as f64 / 3.0);
    }

    #[test]
    fn independent_body_has_no_recurrence() {
        let nest = NestBuilder::new("indep")
            .array("A", &[66])
            .array("B", &[66])
            .loop_("I", 1, 64)
            .stmt("A(I) = B(I) * 2.0")
            .build();
        let g = DepGraph::build(&nest);
        assert_eq!(rec_mii(&nest, &g, &MachineModel::dec_alpha()), 0.0);
    }
}
