//! A set-associative, write-allocate, LRU data cache.

/// Result of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line had to be fetched.
    Miss,
}

/// A simple set-associative cache over byte addresses.
///
/// Loads and stores are treated alike (write-allocate, no write-back
/// penalty modelling): the balance model charges misses, not dirtiness.
///
/// # Example
///
/// ```
/// use ujam_sim::{Access, Cache};
/// let mut c = Cache::new(1024, 32, 1);
/// assert_eq!(c.access(0), Access::Miss);
/// assert_eq!(c.access(8), Access::Hit);    // same 32-byte line
/// assert_eq!(c.access(1024), Access::Miss); // maps onto set 0
/// assert_eq!(c.access(0), Access::Miss);   // direct-mapped conflict
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    line_bytes: usize,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]`: line tag, `None` when invalid.
    tags: Vec<Option<u64>>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero sizes, capacity not divisible
    /// by `line_bytes * ways`).
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Cache {
        assert!(
            capacity_bytes > 0 && line_bytes > 0 && ways > 0,
            "degenerate cache geometry"
        );
        assert_eq!(
            capacity_bytes % (line_bytes * ways),
            0,
            "capacity must be a whole number of sets"
        );
        let sets = capacity_bytes / (line_bytes * ways);
        Cache {
            line_bytes,
            sets,
            ways,
            tags: vec![None; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Builds the cache described by a machine model.
    pub fn for_machine(m: &ujam_machine::MachineModel) -> Cache {
        Cache::new(m.cache_bytes(), m.line_bytes(), m.associativity())
    }

    /// Touches one byte address.
    pub fn access(&mut self, addr: u64) -> Access {
        self.clock += 1;
        let line = addr / self.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;
        // Hit?
        for w in 0..self.ways {
            if self.tags[base + w] == Some(line) {
                self.stamps[base + w] = self.clock;
                self.hits += 1;
                return Access::Hit;
            }
        }
        // Miss: fill the LRU way.
        self.misses += 1;
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                if self.tags[base + w].is_none() {
                    (0, 0)
                } else {
                    (1, self.stamps[base + w])
                }
            })
            .expect("ways >= 1");
        self.tags[base + victim] = Some(line);
        self.stamps[base + victim] = self.clock;
        Access::Miss
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]` (0 when nothing was accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_walk_misses_once_per_line() {
        let mut c = Cache::new(4096, 32, 1);
        for i in 0..512u64 {
            c.access(i * 8);
        }
        assert_eq!(c.misses(), 512 * 8 / 32);
        assert_eq!(c.accesses(), 512);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 32, 2);
        c.access(100);
        for _ in 0..10 {
            assert_eq!(c.access(100), Access::Hit);
        }
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn direct_mapped_conflicts_thrash() {
        let mut c = Cache::new(1024, 32, 1);
        // Two addresses one cache-size apart alternate: always miss.
        for _ in 0..8 {
            assert_eq!(c.access(0), Access::Miss);
            assert_eq!(c.access(1024), Access::Miss);
        }
    }

    #[test]
    fn two_way_associativity_resolves_the_same_conflict() {
        let mut c = Cache::new(2048, 32, 2);
        c.access(0);
        c.access(2048); // same set, second way
        for _ in 0..8 {
            assert_eq!(c.access(0), Access::Hit);
            assert_eq!(c.access(2048), Access::Hit);
        }
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(64, 32, 2); // one set, two ways
        c.access(0); // line 0
        c.access(64); // line 2
        c.access(0); // refresh line 0
        c.access(128); // line 4: evicts line 2 (LRU)
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(64), Access::Miss);
    }

    #[test]
    fn working_set_larger_than_cache_misses_every_pass() {
        let mut c = Cache::new(1024, 32, 1);
        // Stream 4 KiB twice: capacity misses on the second pass too.
        for _pass in 0..2 {
            for line in 0..128u64 {
                c.access(line * 32);
            }
        }
        assert_eq!(c.misses(), 256);
    }

    #[test]
    fn small_working_set_hits_on_second_pass() {
        let mut c = Cache::new(4096, 32, 1);
        for _pass in 0..2 {
            for line in 0..64u64 {
                c.access(line * 32);
            }
        }
        assert_eq!(c.misses(), 64);
        assert_eq!(c.hits(), 64);
    }
}
