//! Property-style tests for the exact linear-algebra substrate.
//!
//! Triage note: originally `proptest`; the offline registry cannot serve
//! external crates, so the strategies are now deterministic seeded
//! generators from the in-tree `ujam-rng` crate with the same coverage.

use ujam_linalg::{solve_unique_nonneg, Mat, Rat, SolveOutcome, Space};
use ujam_rng::Rng;

/// Small matrices keep the search space meaningful while staying exact.
/// The column count is fixed so generated rows share an ambient dimension.
fn small_mat(rng: &mut Rng, max_rows: usize, cols: usize) -> Mat {
    let r = rng.int(1, max_rows as i64) as usize;
    let data: Vec<i64> = (0..r * cols).map(|_| rng.int(-4, 4)).collect();
    Mat::from_vec(r, cols, data)
}

fn small_vec(rng: &mut Rng, len: usize) -> Vec<i64> {
    (0..len).map(|_| rng.int(-6, 6)).collect()
}

fn rat_rows(m: &Mat) -> Vec<Vec<Rat>> {
    m.iter_rows()
        .map(|r| r.iter().map(|&x| Rat::from(x)).collect())
        .collect()
}

const CASES: usize = 64;

#[test]
fn rat_add_commutes() {
    let mut rng = Rng::new(0x2a7);
    for _ in 0..256 {
        let x = Rat::new(rng.int(-50, 49) as i128, rng.int(1, 19) as i128);
        let y = Rat::new(rng.int(-50, 49) as i128, rng.int(1, 19) as i128);
        assert_eq!(x + y, y + x);
        assert_eq!(x * y, y * x);
        assert_eq!((x - y) + y, x);
    }
}

#[test]
fn transpose_involution() {
    let mut rng = Rng::new(0x7a0);
    for _ in 0..CASES {
        let m = small_mat(&mut rng, 4, 4);
        assert_eq!(m.transpose().transpose(), m);
    }
}

#[test]
fn kernel_vectors_annihilate() {
    let mut rng = Rng::new(0xbe1);
    for _ in 0..CASES {
        let m = small_mat(&mut rng, 3, 4);
        let k = Space::kernel(&m);
        for b in k.basis() {
            for row in m.iter_rows() {
                let mut acc = Rat::ZERO;
                for (coef, x) in row.iter().zip(b) {
                    acc = acc + Rat::from(*coef) * *x;
                }
                assert!(acc.is_zero());
            }
        }
    }
}

#[test]
fn rank_nullity() {
    let mut rng = Rng::new(0x4a11);
    for _ in 0..CASES {
        let m = small_mat(&mut rng, 4, 4);
        let k = Space::kernel(&m);
        // rank = n - nullity; rank is the row-space dimension.
        let row_space = Space::span_rat(m.cols(), rat_rows(&m));
        assert_eq!(row_space.dim() + k.dim(), m.cols());
    }
}

#[test]
fn span_contains_generators() {
    let mut rng = Rng::new(0x59a);
    for _ in 0..CASES {
        let m = small_mat(&mut rng, 4, 4);
        let s = Space::span_rat(m.cols(), rat_rows(&m));
        for row in m.iter_rows() {
            assert!(s.contains_int(row));
        }
    }
}

#[test]
fn intersection_is_contained_in_both() {
    let mut rng = Rng::new(0x17ce);
    for _ in 0..CASES {
        let a = small_mat(&mut rng, 3, 4);
        let b = small_mat(&mut rng, 3, 4);
        let sa = Space::span_rat(4, rat_rows(&a));
        let sb = Space::span_rat(4, rat_rows(&b));
        let i = sa.intersect(&sb);
        assert!(sa.contains_space(&i));
        assert!(sb.contains_space(&i));
        // Dimension formula: dim(A) + dim(B) = dim(A+B) + dim(A∩B).
        assert_eq!(sa.dim() + sb.dim(), sa.sum(&sb).dim() + i.dim());
    }
}

#[test]
fn sum_contains_both() {
    let mut rng = Rng::new(0x50b);
    for _ in 0..CASES {
        let a = small_mat(&mut rng, 2, 3);
        let b = small_mat(&mut rng, 2, 3);
        let sa = Space::span_rat(3, rat_rows(&a));
        let sb = Space::span_rat(3, rat_rows(&b));
        let s = sa.sum(&sb);
        assert!(s.contains_space(&sa));
        assert!(s.contains_space(&sb));
    }
}

/// If the solver claims a unique solution, plugging it back in must
/// reproduce the right-hand side.
#[test]
fn solve_round_trip() {
    let mut rng = Rng::new(0x501e);
    for _ in 0..CASES {
        let m = small_mat(&mut rng, 3, 3);
        let x = small_vec(&mut rng, 2);
        // Build d = H·(x embedded in the first two columns), then re-solve.
        let cols = [0usize, 1usize];
        let cols = &cols[..cols.len().min(m.cols())];
        let mut full = vec![0i64; m.cols()];
        for (i, &c) in cols.iter().enumerate() {
            full[c] = x[i].abs(); // non-negative target
        }
        let d = m.mul_vec(&full);
        match solve_unique_nonneg(&m, &d, cols) {
            SolveOutcome::Unique(sol) => {
                let mut back = vec![0i64; m.cols()];
                for (i, &c) in cols.iter().enumerate() {
                    back[c] = sol[i];
                }
                assert_eq!(m.mul_vec(&back), d);
            }
            // Underdetermined/NoSolution are legitimate for rank-deficient H;
            // Negative/NonIntegral cannot happen since we constructed d from
            // a non-negative integer point, but an alternative solution may
            // exist only when the kernel is non-trivial, which reports
            // Underdetermined.
            SolveOutcome::Underdetermined => {}
            other => {
                // Only reachable if H restricted to cols is singular in a way
                // that makes our constructed point non-unique; that is
                // Underdetermined, so anything else is a bug.
                panic!("unexpected outcome {other:?}");
            }
        }
    }
}
