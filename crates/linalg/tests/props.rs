//! Property-based tests for the exact linear-algebra substrate.

use proptest::prelude::*;
use ujam_linalg::{solve_unique_nonneg, Mat, Rat, Space, SolveOutcome};

/// Small matrices keep the search space meaningful while staying exact.
/// The column count is fixed so generated rows share an ambient dimension.
fn small_mat(max_rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    (1..=max_rows).prop_flat_map(move |r| {
        proptest::collection::vec(-4i64..=4, r * cols)
            .prop_map(move |data| Mat::from_vec(r, cols, data))
    })
}

fn small_vec(len: usize) -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-6i64..=6, len)
}

proptest! {
    #[test]
    fn rat_add_commutes(a in -50i64..50, b in 1i64..20, c in -50i64..50, d in 1i64..20) {
        let x = Rat::new(a as i128, b as i128);
        let y = Rat::new(c as i128, d as i128);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!((x - y) + y, x);
    }

    #[test]
    fn transpose_involution(m in small_mat(4, 4)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn kernel_vectors_annihilate(m in small_mat(3, 4)) {
        let k = Space::kernel(&m);
        for b in k.basis() {
            for row in m.iter_rows() {
                let mut acc = Rat::ZERO;
                for (coef, x) in row.iter().zip(b) {
                    acc = acc + Rat::from(*coef) * *x;
                }
                prop_assert!(acc.is_zero());
            }
        }
    }

    #[test]
    fn rank_nullity(m in small_mat(4, 4)) {
        let k = Space::kernel(&m);
        // rank = n - nullity; rank is the row-space dimension.
        let row_space = Space::span_rat(
            m.cols(),
            m.iter_rows().map(|r| r.iter().map(|&x| Rat::from(x)).collect()).collect(),
        );
        prop_assert_eq!(row_space.dim() + k.dim(), m.cols());
    }

    #[test]
    fn span_contains_generators(m in small_mat(4, 4)) {
        let s = Space::span_rat(
            m.cols(),
            m.iter_rows().map(|r| r.iter().map(|&x| Rat::from(x)).collect()).collect(),
        );
        for row in m.iter_rows() {
            prop_assert!(s.contains_int(row));
        }
    }

    #[test]
    fn intersection_is_contained_in_both(a in small_mat(3, 4), b in small_mat(3, 4)) {
        let sa = Space::span_rat(
            4,
            a.iter_rows().map(|r| r.iter().map(|&x| Rat::from(x)).collect()).collect(),
        );
        let sb = Space::span_rat(
            4,
            b.iter_rows().map(|r| r.iter().map(|&x| Rat::from(x)).collect()).collect(),
        );
        let i = sa.intersect(&sb);
        prop_assert!(sa.contains_space(&i));
        prop_assert!(sb.contains_space(&i));
        // Dimension formula: dim(A) + dim(B) = dim(A+B) + dim(A∩B).
        prop_assert_eq!(sa.dim() + sb.dim(), sa.sum(&sb).dim() + i.dim());
    }

    #[test]
    fn sum_contains_both(a in small_mat(2, 3), b in small_mat(2, 3)) {
        let sa = Space::span_rat(
            3,
            a.iter_rows().map(|r| r.iter().map(|&x| Rat::from(x)).collect()).collect(),
        );
        let sb = Space::span_rat(
            3,
            b.iter_rows().map(|r| r.iter().map(|&x| Rat::from(x)).collect()).collect(),
        );
        let s = sa.sum(&sb);
        prop_assert!(s.contains_space(&sa));
        prop_assert!(s.contains_space(&sb));
    }

    /// If the solver claims a unique solution, plugging it back in must
    /// reproduce the right-hand side.
    #[test]
    fn solve_round_trip(m in small_mat(3, 3), x in small_vec(2)) {
        // Build d = H·(x embedded in the first two columns), then re-solve.
        let cols = [0usize, 1usize];
        let cols = &cols[..cols.len().min(m.cols())];
        let mut full = vec![0i64; m.cols()];
        for (i, &c) in cols.iter().enumerate() {
            full[c] = x[i].abs(); // non-negative target
        }
        let d = m.mul_vec(&full);
        match solve_unique_nonneg(&m, &d, cols) {
            SolveOutcome::Unique(sol) => {
                let mut back = vec![0i64; m.cols()];
                for (i, &c) in cols.iter().enumerate() {
                    back[c] = sol[i];
                }
                prop_assert_eq!(m.mul_vec(&back), d);
            }
            // Underdetermined/NoSolution are legitimate for rank-deficient H;
            // Negative/NonIntegral cannot happen since we constructed d from
            // a non-negative integer point, but an alternative solution may
            // exist only when the kernel is non-trivial, which reports
            // Underdetermined.
            SolveOutcome::Underdetermined => {}
            other => {
                // Only reachable if H restricted to cols is singular in a way
                // that makes our constructed point non-unique; that is
                // Underdetermined, so anything else is a bug.
                prop_assert!(false, "unexpected outcome {:?}", other);
            }
        }
    }
}
