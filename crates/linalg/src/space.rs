//! Rational vector subspaces in canonical form.

use crate::{Mat, Rat};
use std::fmt;

/// A subspace of `Q^n` stored as a reduced-row-echelon basis.
///
/// `Space` represents the vector spaces of the Wolf–Lam reuse model: the
/// self-temporal reuse space `R_ST = ker H`, the self-spatial space
/// `R_SS = ker H_S`, and the *localized vector space* `L` spanned by the
/// loops whose reuse the transformation can exploit.  Keeping the basis in
/// RREF makes equality, containment and membership checks canonical.
///
/// # Example
///
/// ```
/// use ujam_linalg::{Mat, Space};
/// let l = Space::span_int(3, &[&[0, 0, 1]]); // innermost loop only
/// let ker = Space::kernel(&Mat::from_rows(&[&[1, 0, 0], &[0, 1, 0]]));
/// assert!(ker.contains_space(&l));
/// assert_eq!(ker.intersect(&l).dim(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Space {
    ambient: usize,
    /// RREF rows; each has length `ambient`.
    basis: Vec<Vec<Rat>>,
}

/// Reduces `rows` to RREF in place and drops zero rows.
fn rref(rows: &mut Vec<Vec<Rat>>, width: usize) {
    let mut pivot_row = 0;
    for col in 0..width {
        // Find a row at or below pivot_row with a non-zero in this column.
        let Some(src) = (pivot_row..rows.len()).find(|&r| !rows[r][col].is_zero()) else {
            continue;
        };
        rows.swap(pivot_row, src);
        let inv = rows[pivot_row][col].recip();
        for x in rows[pivot_row].iter_mut() {
            *x = *x * inv;
        }
        let prow = rows[pivot_row].clone();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != pivot_row && !row[col].is_zero() {
                let factor = row[col];
                for (x, &p) in row.iter_mut().zip(&prow) {
                    let sub = p * factor;
                    *x = *x - sub;
                }
            }
        }
        pivot_row += 1;
        if pivot_row == rows.len() {
            break;
        }
    }
    rows.retain(|r| r.iter().any(|x| !x.is_zero()));
}

/// Returns the pivot column of an RREF row.
fn pivot_col(row: &[Rat]) -> usize {
    row.iter()
        .position(|x| !x.is_zero())
        .expect("zero row in basis")
}

impl Space {
    /// The trivial subspace `{0}` of `Q^ambient`.
    pub fn trivial(ambient: usize) -> Space {
        Space {
            ambient,
            basis: Vec::new(),
        }
    }

    /// The full space `Q^ambient`.
    pub fn full(ambient: usize) -> Space {
        Space::span_rat(
            ambient,
            (0..ambient)
                .map(|i| {
                    let mut v = vec![Rat::ZERO; ambient];
                    v[i] = Rat::ONE;
                    v
                })
                .collect(),
        )
    }

    /// The span of the given integer generator vectors.
    ///
    /// # Panics
    ///
    /// Panics if any generator's length differs from `ambient`.
    pub fn span_int(ambient: usize, gens: &[&[i64]]) -> Space {
        let rows = gens
            .iter()
            .map(|g| {
                assert_eq!(g.len(), ambient, "generator length mismatch");
                g.iter().map(|&x| Rat::from(x)).collect()
            })
            .collect();
        Space::span_rat(ambient, rows)
    }

    /// The span of rational generator rows.
    pub fn span_rat(ambient: usize, mut rows: Vec<Vec<Rat>>) -> Space {
        for r in &rows {
            assert_eq!(r.len(), ambient, "generator length mismatch");
        }
        rref(&mut rows, ambient);
        Space {
            ambient,
            basis: rows,
        }
    }

    /// The span of the coordinate axes in `loops` (a localized vector space
    /// made of whole loop directions).
    pub fn axes(ambient: usize, loops: &[usize]) -> Space {
        let gens: Vec<Vec<Rat>> = loops
            .iter()
            .map(|&i| {
                assert!(i < ambient, "axis index out of range");
                let mut v = vec![Rat::ZERO; ambient];
                v[i] = Rat::ONE;
                v
            })
            .collect();
        Space::span_rat(ambient, gens)
    }

    /// The kernel (null space) `{ x : H·x = 0 }` of an integer matrix.
    ///
    /// This is the *self-temporal reuse vector space* of a reference with
    /// access matrix `H`.
    pub fn kernel(h: &Mat) -> Space {
        let n = h.cols();
        // RREF of H over the rationals.
        let mut rows: Vec<Vec<Rat>> = h
            .iter_rows()
            .map(|r| r.iter().map(|&x| Rat::from(x)).collect())
            .collect();
        rref(&mut rows, n);
        let pivots: Vec<usize> = rows.iter().map(|r| pivot_col(r)).collect();
        let mut basis = Vec::new();
        for free in 0..n {
            if pivots.contains(&free) {
                continue;
            }
            let mut v = vec![Rat::ZERO; n];
            v[free] = Rat::ONE;
            for (row, &p) in rows.iter().zip(&pivots) {
                v[p] = -row[free];
            }
            basis.push(v);
        }
        Space::span_rat(n, basis)
    }

    /// Dimension of the subspace.
    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    /// Dimension of the ambient space.
    pub fn ambient(&self) -> usize {
        self.ambient
    }

    /// `true` if this is the `{0}` subspace.
    pub fn is_trivial(&self) -> bool {
        self.basis.is_empty()
    }

    /// The canonical RREF basis rows.
    pub fn basis(&self) -> &[Vec<Rat>] {
        &self.basis
    }

    /// Membership test for a rational vector.
    pub fn contains(&self, v: &[Rat]) -> bool {
        assert_eq!(v.len(), self.ambient, "vector length mismatch");
        let mut residue = v.to_vec();
        for row in &self.basis {
            let p = pivot_col(row);
            if !residue[p].is_zero() {
                let factor = residue[p];
                for c in 0..self.ambient {
                    let sub = row[c] * factor;
                    residue[c] = residue[c] - sub;
                }
            }
        }
        residue.iter().all(|x| x.is_zero())
    }

    /// Membership test for an integer vector.
    pub fn contains_int(&self, v: &[i64]) -> bool {
        let rv: Vec<Rat> = v.iter().map(|&x| Rat::from(x)).collect();
        self.contains(&rv)
    }

    /// `true` if `other ⊆ self`.
    pub fn contains_space(&self, other: &Space) -> bool {
        assert_eq!(self.ambient, other.ambient, "ambient mismatch");
        other.basis.iter().all(|v| self.contains(v))
    }

    /// The sum (join) `self + other`.
    pub fn sum(&self, other: &Space) -> Space {
        assert_eq!(self.ambient, other.ambient, "ambient mismatch");
        let mut rows = self.basis.clone();
        rows.extend(other.basis.iter().cloned());
        Space::span_rat(self.ambient, rows)
    }

    /// The intersection `self ∩ other`.
    ///
    /// Computed via the kernel trick: with basis rows `U` and `V`, the pairs
    /// `(a, b)` with `Uᵀa = Vᵀb` form the kernel of `[Uᵀ | −Vᵀ]`, and the
    /// intersection is `{ Uᵀa }`.
    pub fn intersect(&self, other: &Space) -> Space {
        assert_eq!(self.ambient, other.ambient, "ambient mismatch");
        let (k1, k2) = (self.basis.len(), other.basis.len());
        if k1 == 0 || k2 == 0 {
            return Space::trivial(self.ambient);
        }
        // Build [Uᵀ | −Vᵀ] as rational rows: ambient rows, k1 + k2 cols.
        let width = k1 + k2;
        let mut rows: Vec<Vec<Rat>> = (0..self.ambient)
            .map(|i| {
                let mut row = Vec::with_capacity(width);
                for b in &self.basis {
                    row.push(b[i]);
                }
                for b in &other.basis {
                    row.push(-b[i]);
                }
                row
            })
            .collect();
        rref(&mut rows, width);
        let pivots: Vec<usize> = rows.iter().map(|r| pivot_col(r)).collect();
        let mut inter = Vec::new();
        for free in 0..width {
            if pivots.contains(&free) {
                continue;
            }
            // Kernel vector over (a, b); we only need the `a` part.
            let mut ab = vec![Rat::ZERO; width];
            ab[free] = Rat::ONE;
            for (row, &p) in rows.iter().zip(&pivots) {
                ab[p] = -row[free];
            }
            // v = Uᵀ a
            let mut v = vec![Rat::ZERO; self.ambient];
            for (j, b) in self.basis.iter().enumerate() {
                if ab[j].is_zero() {
                    continue;
                }
                for c in 0..self.ambient {
                    let add = b[c] * ab[j];
                    v[c] = v[c] + add;
                }
            }
            inter.push(v);
        }
        Space::span_rat(self.ambient, inter)
    }
}

impl fmt::Debug for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Space(dim {} of Q^{})", self.dim(), self.ambient)?;
        for b in &self.basis {
            write!(f, " span{b:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_of_identity_is_trivial() {
        assert!(Space::kernel(&Mat::identity(3)).is_trivial());
    }

    #[test]
    fn kernel_of_zero_is_full() {
        let k = Space::kernel(&Mat::zeros(2, 3));
        assert_eq!(k.dim(), 3);
        assert_eq!(k, Space::full(3));
    }

    #[test]
    fn kernel_of_row_is_orthogonal_line() {
        // A(J) in an (I, J) nest: H = [0 1]; reuse along I.
        let k = Space::kernel(&Mat::from_rows(&[&[0, 1]]));
        assert_eq!(k.dim(), 1);
        assert!(k.contains_int(&[1, 0]));
        assert!(!k.contains_int(&[0, 1]));
    }

    #[test]
    fn kernel_vectors_are_in_kernel() {
        let h = Mat::from_rows(&[&[1, 2, 3], &[0, 1, 1]]);
        let k = Space::kernel(&h);
        assert_eq!(k.dim(), 1);
        for b in k.basis() {
            // Multiply H by the (rational) kernel vector and check zero.
            for row in h.iter_rows() {
                let mut acc = Rat::ZERO;
                for (a, x) in row.iter().zip(b) {
                    acc = acc + Rat::from(*a) * *x;
                }
                assert!(acc.is_zero());
            }
        }
    }

    #[test]
    fn span_canonicalizes() {
        let a = Space::span_int(2, &[&[2, 4]]);
        let b = Space::span_int(2, &[&[1, 2]]);
        assert_eq!(a, b);
        let c = Space::span_int(2, &[&[1, 0], &[1, 1]]);
        assert_eq!(c, Space::full(2));
    }

    #[test]
    fn containment_and_membership() {
        let s = Space::span_int(3, &[&[1, 1, 0], &[0, 0, 1]]);
        assert!(s.contains_int(&[2, 2, 5]));
        assert!(!s.contains_int(&[1, 0, 0]));
        assert!(s.contains_space(&Space::span_int(3, &[&[1, 1, 1]])));
        assert!(Space::full(3).contains_space(&s));
        assert!(s.contains_space(&Space::trivial(3)));
    }

    #[test]
    fn sum_and_intersection() {
        let x = Space::axes(3, &[0]);
        let y = Space::axes(3, &[1]);
        let xy = x.sum(&y);
        assert_eq!(xy.dim(), 2);
        assert!(x.intersect(&y).is_trivial());
        assert_eq!(xy.intersect(&Space::axes(3, &[1, 2])), y);
    }

    #[test]
    fn intersection_of_planes_is_line() {
        let p1 = Space::span_int(3, &[&[1, 0, 0], &[0, 1, 1]]);
        let p2 = Space::span_int(3, &[&[0, 1, 0], &[0, 0, 1]]);
        let line = p1.intersect(&p2);
        assert_eq!(line.dim(), 1);
        assert!(line.contains_int(&[0, 1, 1]));
    }

    #[test]
    fn axes_builds_localized_space() {
        let l = Space::axes(4, &[2, 3]);
        assert_eq!(l.dim(), 2);
        assert!(l.contains_int(&[0, 0, 7, -3]));
        assert!(!l.contains_int(&[1, 0, 0, 0]));
    }

    #[test]
    fn intersect_with_trivial_is_trivial() {
        let s = Space::full(2);
        assert!(s.intersect(&Space::trivial(2)).is_trivial());
    }
}
