//! Exact integer and rational linear algebra for compiler reuse analysis.
//!
//! The Wolf–Lam data-reuse model (and the Carr–Guan unroll-and-jam algorithm
//! built on it) works with small integer matrices: the access matrix `H` of a
//! uniformly generated array reference, constant offset vectors `c`, and
//! vector spaces such as the *self-temporal reuse space* `ker H` or the
//! *localized iteration space*.  Everything must be exact — a reuse space that
//! is "almost" contained in the localized space is not contained at all — so
//! this crate provides:
//!
//! * [`Mat`]: dense row-major integer matrices with exact arithmetic,
//! * [`Rat`]: normalized arbitrary-sign rationals over `i128`,
//! * [`Space`]: rational vector subspaces in canonical (RREF) form with
//!   membership, containment, sum and intersection,
//! * [`solve`]: solvers for `H·x = d` restricted to a subset of columns, as
//!   needed by the table-construction algorithms of Carr & Guan (Figures 2,
//!   3, 5 and 7 of the paper), including the *unique non-negative integer
//!   solution* query that determines the unroll offset at which two
//!   reference groups merge.
//!
//! Dimensions in this domain are tiny (loop depths ≤ 6, a handful of array
//! dimensions), so the implementation favours clarity and exactness over
//! asymptotics; all algorithms are fraction-free or use `i128` rationals and
//! will panic on overflow rather than silently wrap.
//!
//! # Example
//!
//! ```
//! use ujam_linalg::{Mat, Space};
//!
//! // H for A(I, J+1) in a 2-deep nest: identity access.
//! let h = Mat::identity(2);
//! // Its temporal reuse space ker H is trivial:
//! assert_eq!(Space::kernel(&h).dim(), 0);
//!
//! // H for A(J) (row vector [0 1]): reuse along the I loop.
//! let h = Mat::from_rows(&[&[0, 1]]);
//! let ker = Space::kernel(&h);
//! assert_eq!(ker.dim(), 1);
//! assert!(ker.contains_int(&[1, 0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hnf;
mod mat;
mod rat;
pub mod solve;
mod space;

pub use hnf::{column_hnf, lattice_contains};
pub use mat::Mat;
pub use rat::Rat;
pub use solve::{solve_unique, solve_unique_nonneg, SolveOutcome};
pub use space::Space;
