//! Dense integer matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major integer matrix.
///
/// `Mat` is the carrier for the access matrices `H` of array references
/// (`rank × depth`) and for stacked bases in space computations.  It is a
/// plain value type: cheap to clone at the sizes this domain uses.
///
/// # Example
///
/// ```
/// use ujam_linalg::Mat;
/// // The access matrix of A(I, J+1) in a (I, J) nest.
/// let h = Mat::from_rows(&[&[1, 0], &[0, 1]]);
/// assert_eq!(h[(0, 0)], 1);
/// assert_eq!(h.mul_vec(&[2, 3]), vec![2, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl Mat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Mat {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty with the
    /// intent of building a non-trivial matrix (an empty slice yields the
    /// `0 × 0` matrix).
    pub fn from_rows(rows: &[&[i64]]) -> Mat {
        if rows.is_empty() {
            return Mat::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in Mat::from_rows");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i64>) -> Mat {
        assert_eq!(data.len(), rows * cols, "bad Mat::from_vec length");
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[i64] {
        assert!(r < self.rows, "row index out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<i64> {
        assert!(c < self.cols, "column index out of range");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[i64]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// The transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v)
                    .map(|(a, b)| a.checked_mul(*b).expect("overflow in mul_vec"))
                    .try_fold(0i64, |acc, x| acc.checked_add(x))
                    .expect("overflow in mul_vec")
            })
            .collect()
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc: i64 = 0;
                for k in 0..self.cols {
                    acc = acc
                        .checked_add(self[(r, k)].checked_mul(rhs[(k, c)]).expect("overflow"))
                        .expect("overflow in mul");
                }
                out[(r, c)] = acc;
            }
        }
        out
    }

    /// Returns a copy with row `r` replaced by zeros.
    ///
    /// This builds the matrix `H_S` used for *self-spatial* reuse: the row of
    /// the contiguous (first, column-major) array dimension is dropped so
    /// that solutions may differ along that dimension.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn with_zero_row(&self, r: usize) -> Mat {
        assert!(r < self.rows, "row index out of range");
        let mut m = self.clone();
        for c in 0..self.cols {
            m[(r, c)] = 0;
        }
        m
    }

    /// Returns the submatrix keeping only the given columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_cols(&self, cols: &[usize]) -> Mat {
        let mut m = Mat::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            for (i, &c) in cols.iter().enumerate() {
                assert!(c < self.cols, "column index out of range");
                m[(r, i)] = self[(r, c)];
            }
        }
        m
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Mat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Places `self` and `other` side by side.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut m = Mat::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                m[(r, c)] = self[(r, c)];
            }
            for c in 0..other.cols {
                m[(r, self.cols + c)] = other[(r, c)];
            }
        }
        m
    }

    /// `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0)
    }

    /// `true` if each row and each column holds at most one non-zero entry.
    ///
    /// This is the *separable SIV* shape required by §3.5 of the paper: each
    /// subscript uses a single induction variable and each induction variable
    /// appears in at most one subscript.
    pub fn is_siv_separable(&self) -> bool {
        for r in 0..self.rows {
            if self.row(r).iter().filter(|&&x| x != 0).count() > 1 {
                return false;
            }
        }
        for c in 0..self.cols {
            if (0..self.rows).filter(|&r| self[(r, c)] != 0).count() > 1 {
                return false;
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = i64;
    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(r < self.rows && c < self.cols, "Mat index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(r < self.rows && c < self.cols, "Mat index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            if r > 0 {
                writeln!(f)?;
            }
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self[(r, c)])?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_indexing() {
        let m = Mat::from_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(1, 0)], 3);
        assert_eq!(Mat::identity(3)[(2, 2)], 1);
        assert!(Mat::zeros(2, 2).is_zero());
    }

    #[test]
    fn mul_vec_matches_hand_computation() {
        let m = Mat::from_rows(&[&[1, 0, 2], &[0, 3, 0]]);
        assert_eq!(m.mul_vec(&[1, 2, 3]), vec![7, 6]);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = Mat::from_rows(&[&[1, 2], &[3, 4]]);
        let b = Mat::from_rows(&[&[5, 6], &[7, 8]]);
        assert_eq!(a.mul(&b), Mat::from_rows(&[&[19, 22], &[43, 50]]));
    }

    #[test]
    fn transpose_round_trips() {
        let m = Mat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().row(0), &[1, 4]);
    }

    #[test]
    fn zero_row_builds_spatial_matrix() {
        let h = Mat::identity(2);
        let hs = h.with_zero_row(0);
        assert_eq!(hs.row(0), &[0, 0]);
        assert_eq!(hs.row(1), &[0, 1]);
    }

    #[test]
    fn stacking() {
        let a = Mat::from_rows(&[&[1, 2]]);
        let b = Mat::from_rows(&[&[3, 4]]);
        assert_eq!(a.vstack(&b), Mat::from_rows(&[&[1, 2], &[3, 4]]));
        assert_eq!(a.hstack(&b), Mat::from_rows(&[&[1, 2, 3, 4]]));
    }

    #[test]
    fn select_cols_keeps_order() {
        let m = Mat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(m.select_cols(&[2, 0]), Mat::from_rows(&[&[3, 1], &[6, 4]]));
    }

    #[test]
    fn siv_separable_detection() {
        assert!(Mat::identity(3).is_siv_separable());
        assert!(Mat::from_rows(&[&[0, 2], &[1, 0]]).is_siv_separable());
        // Row with two induction variables (I+J): not separable.
        assert!(!Mat::from_rows(&[&[1, 1]]).is_siv_separable());
        // Same induction variable in two subscripts: not separable.
        assert!(!Mat::from_rows(&[&[1, 0], &[1, 0]]).is_siv_separable());
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = Mat::from_rows(&[]);
        assert_eq!(m.rows(), 0);
        assert!(m.is_zero());
    }
}
