//! Linear solvers for the merge-point equations of the table algorithms.
//!
//! The Carr–Guan table construction (Figures 2, 3, 5, 7 of the paper)
//! repeatedly asks: *at which unroll offset does a copy of reference group
//! `j` coincide with group `i`?*  That is the system `H·x = c_j − c_i`,
//! where `x` is supported only on the loops being unrolled and must be a
//! non-negative integer vector.  For the separable-SIV references the paper
//! targets (§3.5), the restricted system has full column rank, so the
//! solution — if any — is unique; [`solve_unique_nonneg`] reports exactly
//! which of the possible failure modes occurred so callers (and tests) can
//! distinguish "never merges" from "merges outside the unroll space".

use crate::{Mat, Rat};

/// Result of the merge-point solve `H·x = d` over selected columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A unique, integral, component-wise non-negative solution; entries are
    /// given for the selected columns in the order they were passed.
    Unique(Vec<i64>),
    /// The system is inconsistent: the groups never coincide.
    NoSolution,
    /// The restricted system is under-determined (non-trivial kernel), so
    /// there is no single merge point.  Does not occur for separable SIV.
    Underdetermined,
    /// A unique rational solution exists but is not integral: the copies
    /// interleave without ever coinciding.
    NonIntegral,
    /// The unique integral solution has a negative component: the merge
    /// would require unrolling "backwards", which unroll-and-jam cannot do.
    Negative,
}

impl SolveOutcome {
    /// Convenience accessor for the solution vector, if unique/valid.
    pub fn unique(&self) -> Option<&[i64]> {
        match self {
            SolveOutcome::Unique(v) => Some(v),
            _ => None,
        }
    }
}

/// Solves `H·x = d` for `x` supported on `cols`, requiring a unique
/// non-negative integer solution.
///
/// Rows of `H` whose restriction to `cols` is all zero impose the pure
/// constraint `d_r == 0`; if violated the system is inconsistent.
///
/// # Panics
///
/// Panics if `d.len() != h.rows()` or any column index is out of range.
///
/// # Example
///
/// ```
/// use ujam_linalg::{Mat, solve::{solve_unique_nonneg, SolveOutcome}};
/// // A(I,J) vs A(I-2,J): Δc = (2, 0); unrolling I by 2 merges the copies.
/// let h = Mat::identity(2);
/// let got = solve_unique_nonneg(&h, &[2, 0], &[0]);
/// assert_eq!(got, SolveOutcome::Unique(vec![2]));
/// ```
pub fn solve_unique_nonneg(h: &Mat, d: &[i64], cols: &[usize]) -> SolveOutcome {
    match solve_unique(h, d, cols) {
        SolveOutcome::Unique(ints) if ints.iter().any(|&v| v < 0) => SolveOutcome::Negative,
        other => other,
    }
}

/// Solves `H·x = d` for `x` supported on `cols`, requiring a unique integer
/// solution of any sign.
///
/// This is the group-reuse membership query of the Wolf–Lam model: two
/// uniformly generated references belong to the same group-temporal set iff
/// `H·x = c₂ − c₁` has an (any-sign) integer solution within the localized
/// loops.  [`solve_unique_nonneg`] layers the unroll-space sign requirement
/// on top.
///
/// # Panics
///
/// Panics if `d.len() != h.rows()` or any column index is out of range.
pub fn solve_unique(h: &Mat, d: &[i64], cols: &[usize]) -> SolveOutcome {
    assert_eq!(d.len(), h.rows(), "rhs length mismatch");
    let restricted = h.select_cols(cols);
    match solve_rational(&restricted, d) {
        RationalSolve::NoSolution => SolveOutcome::NoSolution,
        RationalSolve::Underdetermined => SolveOutcome::Underdetermined,
        RationalSolve::Unique(x) => {
            if x.iter().any(|r| !r.is_integer()) {
                SolveOutcome::NonIntegral
            } else {
                SolveOutcome::Unique(
                    x.iter()
                        .map(|r| r.to_i64().expect("merge offset exceeds i64"))
                        .collect(),
                )
            }
        }
    }
}

/// Internal result of the rational solve.
enum RationalSolve {
    Unique(Vec<Rat>),
    NoSolution,
    Underdetermined,
}

/// Gaussian elimination of `[A | d]` over the rationals.
fn solve_rational(a: &Mat, d: &[i64]) -> RationalSolve {
    let (m, n) = (a.rows(), a.cols());
    let mut aug: Vec<Vec<Rat>> = (0..m)
        .map(|r| {
            let mut row: Vec<Rat> = a.row(r).iter().map(|&x| Rat::from(x)).collect();
            row.push(Rat::from(d[r]));
            row
        })
        .collect();

    let mut pivot_cols = Vec::new();
    let mut pivot_row = 0;
    for col in 0..n {
        let Some(src) = (pivot_row..m).find(|&r| !aug[r][col].is_zero()) else {
            continue;
        };
        aug.swap(pivot_row, src);
        let inv = aug[pivot_row][col].recip();
        for x in aug[pivot_row].iter_mut() {
            *x = *x * inv;
        }
        let prow = aug[pivot_row].clone();
        for (r, row) in aug.iter_mut().enumerate() {
            if r != pivot_row && !row[col].is_zero() {
                let factor = row[col];
                for (x, &p) in row.iter_mut().zip(&prow) {
                    let sub = p * factor;
                    *x = *x - sub;
                }
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
        if pivot_row == m {
            break;
        }
    }

    // Inconsistent row: 0 = nonzero.
    for row in &aug[pivot_row..] {
        if !row[n].is_zero() {
            return RationalSolve::NoSolution;
        }
    }
    if pivot_cols.len() < n {
        return RationalSolve::Underdetermined;
    }
    let mut x = vec![Rat::ZERO; n];
    for (r, &c) in pivot_cols.iter().enumerate() {
        x[c] = aug[r][n];
    }
    RationalSolve::Unique(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_merge_point() {
        // Paper Figure 1: A(I,J) and A(I-2,J) merge once the I loop is
        // unrolled by 2.
        let h = Mat::identity(2);
        assert_eq!(
            solve_unique_nonneg(&h, &[2, 0], &[0]),
            SolveOutcome::Unique(vec![2])
        );
    }

    #[test]
    fn inconsistent_when_unselected_dimension_differs() {
        // A(I,J) vs A(I-2,J-1) unrolling only I: the J difference can never
        // be closed.
        let h = Mat::identity(2);
        assert_eq!(
            solve_unique_nonneg(&h, &[2, 1], &[0]),
            SolveOutcome::NoSolution
        );
    }

    #[test]
    fn two_loop_merge() {
        let h = Mat::identity(3);
        assert_eq!(
            solve_unique_nonneg(&h, &[1, 3, 0], &[0, 1]),
            SolveOutcome::Unique(vec![1, 3])
        );
    }

    #[test]
    fn negative_offset_is_reported() {
        let h = Mat::identity(2);
        assert_eq!(
            solve_unique_nonneg(&h, &[-1, 0], &[0]),
            SolveOutcome::Negative
        );
    }

    #[test]
    fn non_integral_offset_is_reported() {
        // A(2I) vs A(2I - 1): copies interleave, never coincide.
        let h = Mat::from_rows(&[&[2, 0]]);
        assert_eq!(
            solve_unique_nonneg(&h, &[1], &[0]),
            SolveOutcome::NonIntegral
        );
        // A(2I) vs A(2I - 4): merge at unroll offset 2.
        assert_eq!(
            solve_unique_nonneg(&h, &[4], &[0]),
            SolveOutcome::Unique(vec![2])
        );
    }

    #[test]
    fn underdetermined_non_siv() {
        // H with a dependent column pair: x0 + x1 appears in one subscript.
        let h = Mat::from_rows(&[&[1, 1]]);
        assert_eq!(
            solve_unique_nonneg(&h, &[2], &[0, 1]),
            SolveOutcome::Underdetermined
        );
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let h = Mat::identity(2);
        assert_eq!(
            solve_unique_nonneg(&h, &[0, 0], &[0]),
            SolveOutcome::Unique(vec![0])
        );
    }

    #[test]
    fn coefficient_scaling() {
        // A(3J) style access: merge needs Δc divisible by 3.
        let h = Mat::from_rows(&[&[0, 3]]);
        assert_eq!(
            solve_unique_nonneg(&h, &[6], &[1]),
            SolveOutcome::Unique(vec![2])
        );
        assert_eq!(
            solve_unique_nonneg(&h, &[7], &[1]),
            SolveOutcome::NonIntegral
        );
    }

    #[test]
    fn unique_accessor() {
        assert_eq!(SolveOutcome::Unique(vec![1]).unique(), Some(&[1][..]));
        assert_eq!(SolveOutcome::NoSolution.unique(), None);
    }
}

#[cfg(test)]
mod solve_unique_tests {
    use super::*;

    #[test]
    fn any_sign_solution_is_accepted() {
        let h = Mat::identity(2);
        assert_eq!(
            solve_unique(&h, &[-3, 0], &[0]),
            SolveOutcome::Unique(vec![-3])
        );
        assert_eq!(
            solve_unique_nonneg(&h, &[-3, 0], &[0]),
            SolveOutcome::Negative
        );
    }
}
