//! Normalized rational numbers over `i128`.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number.
///
/// Invariants: the denominator is always positive and `gcd(num, den) == 1`
/// (with `0` represented as `0/1`).  Arithmetic panics on overflow; the
/// matrices in this domain are tiny (loop depth × array rank), so overflow
/// indicates a logic error rather than a workload we must support.
///
/// # Example
///
/// ```
/// use ujam_linalg::Rat;
/// let a = Rat::new(2, 4);
/// assert_eq!(a, Rat::new(1, 2));
/// assert_eq!((a + Rat::from(1)).to_string(), "3/2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates a rational `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Numerator (sign-carrying).
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is exactly zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is a (possibly negative) integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Returns the value as an `i64` if it is an integer that fits.
    pub fn to_i64(self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::new(
            self.num
                .checked_mul(rhs.den)
                .and_then(|a| a.checked_add(rhs.num.checked_mul(self.den).expect("rat overflow")))
                .expect("rat overflow"),
            self.den.checked_mul(rhs.den).expect("rat overflow"),
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        Rat::new(
            self.num.checked_mul(rhs.num).expect("rat overflow"),
            self.den.checked_mul(rhs.den).expect("rat overflow"),
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: Rat) -> Rat {
        let inv = rhs.recip();
        Rat::new(
            self.num.checked_mul(inv.num).expect("rat overflow"),
            self.den.checked_mul(inv.den).expect("rat overflow"),
        )
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(1, -2), Rat::new(-1, 2));
        assert_eq!(Rat::new(-3, -6), Rat::new(1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering_compares_cross_products() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::new(7, 2) > Rat::from(3));
    }

    #[test]
    fn integer_queries() {
        assert!(Rat::new(4, 2).is_integer());
        assert_eq!(Rat::new(4, 2).to_i64(), Some(2));
        assert_eq!(Rat::new(1, 2).to_i64(), None);
        assert!(Rat::ZERO.is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rat::new(3, 2).to_string(), "3/2");
        assert_eq!(Rat::from(-4).to_string(), "-4");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn zero_reciprocal_panics() {
        let _ = Rat::ZERO.recip();
    }
}
