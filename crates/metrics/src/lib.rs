//! Runtime metrics for the unroll-and-jam pipeline: sharded counters,
//! gauges, and log-scale latency histograms with versioned JSON
//! snapshots.
//!
//! The crate is organised around three types:
//!
//! * [`MetricsRegistry`] — a named collection of [`Counter`]s,
//!   [`Gauge`]s, and [`Histogram`]s.  Metrics are created on first use
//!   and live for the registry's lifetime; lookups take a read lock,
//!   updates touch only atomics.
//! * [`MetricsHandle`] — a cheap clonable handle threaded through the
//!   optimizer next to the `TraceSink`.  A disabled handle makes every
//!   operation a no-op, so un-instrumented runs pay only a branch.
//! * [`MetricsSnapshot`] — a point-in-time copy of everything the
//!   registry holds, renderable as versioned JSON (the `ujam stats`
//!   wire format) or as human-readable tables.
//!
//! Everything here is in-tree and `std`-only; recording never blocks
//! behind another recorder (shards + relaxed atomics), and snapshots
//! are deterministic: the same multiset of observations always yields
//! the same rendered bytes (see `DESIGN.md` §11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod series;
mod snapshot;

pub use histogram::{
    bucket_bounds, bucket_index, Exemplar, Histogram, HistogramSnapshot, BUCKET_COUNT,
};
pub use series::{SeriesCollector, SeriesWindow, SERIES_VERSION};
pub use snapshot::{MetricsSnapshot, SNAPSHOT_VERSION};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonic counter (requests served, cache hits, …).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (in-flight requests, cache bytes, …) that can
/// move both ways.
///
/// High-water marks written through [`Gauge::set_max`] are tracked
/// twice: the lifetime peak (what [`Gauge::get`] and snapshots report)
/// and a *window* peak that a periodic collector can read-and-reset
/// with [`Gauge::swap_reset`] without disturbing the lifetime value —
/// that is what lets the series layer report per-window queue-depth
/// high water while `serve.queue_depth.peak` keeps its
/// since-startup meaning.
#[derive(Debug, Default)]
pub struct Gauge {
    level: AtomicI64,
    window: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge {
            level: AtomicI64::new(0),
            window: AtomicI64::new(0),
        }
    }

    /// Sets the level outright.
    pub fn set(&self, v: i64) {
        self.level.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.level.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the level to `v` if `v` is higher, leaving it alone
    /// otherwise — a lock-free high-water mark (peak queue depth,
    /// peak open connections).  Both the lifetime peak and the current
    /// window's peak advance.
    pub fn set_max(&self, v: i64) {
        self.level.fetch_max(v, Ordering::Relaxed);
        self.window.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.level.load(Ordering::Relaxed)
    }

    /// Returns the window peak accumulated since the previous call and
    /// starts a fresh window.  The lifetime value is untouched, so
    /// snapshots still report the since-startup peak.
    pub fn swap_reset(&self) -> i64 {
        self.window.swap(0, Ordering::Relaxed)
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Metrics are created lazily by [`MetricsRegistry::counter`] /
/// [`gauge`](MetricsRegistry::gauge) /
/// [`histogram`](MetricsRegistry::histogram) and never removed, so a
/// hot path can resolve its `Arc` once at startup and update it without
/// ever touching the registry lock again.
///
/// # Example
///
/// ```
/// use ujam_metrics::MetricsRegistry;
/// let reg = MetricsRegistry::new();
/// reg.counter("serve.requests").inc();
/// reg.histogram("serve.request_ns").observe(1_234);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("serve.requests"), 1);
/// assert_eq!(snap.histogram("serve.request_ns").unwrap().count, 1);
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_create<T>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str, make: fn() -> T) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics lock poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut writable = map.write().expect("metrics lock poisoned");
    Arc::clone(
        writable
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter called `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name, Counter::new)
    }

    /// The gauge called `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name, Gauge::new)
    }

    /// The histogram called `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name, Histogram::new)
    }

    /// A point-in-time copy of every metric, suitable for rendering.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            counters,
            gauges,
            histograms,
        }
    }
}

/// A clonable, possibly-disabled reference to a [`MetricsRegistry`],
/// threaded through the optimizer alongside the trace sink.
///
/// With [`MetricsHandle::disabled`] every method is a no-op and
/// [`enabled`](MetricsHandle::enabled) is `false`, so instrumented code
/// can guard any per-observation work (clock reads, name formatting)
/// behind one branch.
#[derive(Clone, Default)]
pub struct MetricsHandle(Option<Arc<MetricsRegistry>>);

impl MetricsHandle {
    /// A handle that records nothing.
    pub fn disabled() -> MetricsHandle {
        MetricsHandle(None)
    }

    /// A handle recording into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> MetricsHandle {
        MetricsHandle(Some(registry))
    }

    /// Whether observations are being recorded.  Check this before
    /// doing per-observation work (e.g. reading the clock).
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The underlying registry, if enabled.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.0.as_ref()
    }

    /// Adds `n` to the counter called `name`.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(reg) = &self.0 {
            reg.counter(name).add(n);
        }
    }

    /// Sets the gauge called `name`.
    pub fn gauge_set(&self, name: &str, v: i64) {
        if let Some(reg) = &self.0 {
            reg.gauge(name).set(v);
        }
    }

    /// Moves the gauge called `name` by `delta`.
    pub fn gauge_add(&self, name: &str, delta: i64) {
        if let Some(reg) = &self.0 {
            reg.gauge(name).add(delta);
        }
    }

    /// Records one observation in the histogram called `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(reg) = &self.0 {
            reg.histogram(name).observe(value);
        }
    }

    /// A snapshot of the registry, or an empty snapshot when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.0 {
            Some(reg) => reg.snapshot(),
            None => MetricsSnapshot {
                version: SNAPSHOT_VERSION,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_the_same_metric_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.snapshot().counter("x"), 3);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("inflight");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(0);
        assert_eq!(reg.snapshot().gauge("inflight"), 0);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::new();
        g.set_max(4);
        g.set_max(2);
        assert_eq!(g.get(), 4, "lower values never move the mark");
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn swap_reset_yields_window_peaks_and_keeps_the_lifetime_peak() {
        let g = Gauge::new();
        g.set_max(7);
        g.set_max(3);
        assert_eq!(g.swap_reset(), 7, "first window peaked at 7");
        assert_eq!(g.get(), 7, "lifetime peak survives the window read");
        g.set_max(5);
        assert_eq!(g.swap_reset(), 5, "second window peaked lower");
        assert_eq!(g.get(), 7, "lifetime peak still the since-startup max");
        assert_eq!(g.swap_reset(), 0, "an idle window reports zero");
    }

    #[test]
    fn disabled_handle_is_a_total_no_op() {
        let h = MetricsHandle::disabled();
        assert!(!h.enabled());
        h.count("c", 1);
        h.gauge_set("g", 9);
        h.observe("h", 42);
        let snap = h.snapshot();
        assert_eq!(snap.counter("c"), 0);
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn enabled_handle_records_into_its_registry() {
        let reg = Arc::new(MetricsRegistry::new());
        let h = MetricsHandle::new(Arc::clone(&reg));
        assert!(h.enabled());
        h.count("serve.requests", 2);
        h.gauge_add("serve.inflight", 1);
        h.observe("serve.request_ns", 100);
        h.observe("serve.request_ns", 200);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.requests"), 2);
        assert_eq!(snap.gauge("serve.inflight"), 1);
        assert_eq!(snap.histogram("serve.request_ns").unwrap().count, 2);
        assert_eq!(snap.histogram("serve.request_ns").unwrap().sum, 300);
    }

    // -- satellite: histogram edge cases ---------------------------------

    #[test]
    fn zero_observations_snapshot_is_all_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert!(s.nonzero_buckets().is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p90(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_bucket_distribution_reports_that_bucket_everywhere() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.observe(100); // bucket [64, 127]
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 100_000);
        assert_eq!(s.nonzero_buckets(), vec![(64, 127, 1000)]);
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        assert_eq!(s.p99(), 127);
        assert_eq!(s.quantile(0.0), 127);
        assert_eq!(s.quantile(1.0), 127);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::with_shards(1);
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        h.observe(1);
        let s = h.snapshot();
        assert_eq!(s.count, 3, "counts stay exact under sum saturation");
        assert_eq!(s.sum, u64::MAX, "sum pins at u64::MAX");
        // Merging saturated snapshots also saturates rather than wraps.
        let mut merged = s.clone();
        merged.merge(&s);
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, u64::MAX);
    }

    #[test]
    fn shard_merge_equals_single_shard_totals() {
        let sharded = Histogram::with_shards(4);
        let flat = Histogram::with_shards(1);
        for v in 0..200u64 {
            sharded.observe_in_shard(v as usize, v * 7);
            flat.observe_in_shard(0, v * 7);
        }
        // Hand-merging the per-shard snapshots...
        let mut merged = HistogramSnapshot::empty();
        for s in sharded.shard_snapshots() {
            merged.merge(&s);
        }
        // ...equals the built-in merged snapshot, equals one big shard.
        assert_eq!(merged, sharded.snapshot());
        assert_eq!(merged, flat.snapshot());
    }

    #[test]
    fn quantiles_on_degenerate_distributions() {
        // All zeros: every quantile is the zero bucket's upper bound.
        let zeros = Histogram::new();
        for _ in 0..10 {
            zeros.observe(0);
        }
        let s = zeros.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);

        // One observation: every quantile is its bucket's upper bound.
        let one = Histogram::new();
        one.observe(5000); // bucket [4096, 8191]
        let s = one.snapshot();
        assert_eq!(s.p50(), 8191);
        assert_eq!(s.p90(), 8191);
        assert_eq!(s.p99(), 8191);

        // Out-of-range q clamps rather than panics.
        assert_eq!(s.quantile(-1.0), 8191);
        assert_eq!(s.quantile(2.0), 8191);
    }
}
