//! Fixed-bucket log-scale histograms with exact counts and sums.
//!
//! A [`Histogram`] is a set of power-of-two buckets over `u64` values:
//! bucket 0 holds only zero, bucket `i` (1 ≤ i ≤ 64) holds
//! `[2^(i-1), 2^i)`.  The bucket layout is *fixed*, so two histograms —
//! or two shards of one histogram — can always be merged by adding
//! bucket counts, and a snapshot taken on one machine compares exactly
//! against one taken on another.
//!
//! Recording is lock-free: each shard is a block of relaxed atomics, and
//! a thread picks its shard once (round-robin at first use) so
//! concurrent writers rarely contend on the same cache lines.  `count`
//! and bucket totals are exact; `sum` saturates at `u64::MAX` instead of
//! wrapping, so a snapshot can never under-report total time.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of buckets: one for zero plus one per power of two up to
/// `2^63..=u64::MAX`.
pub const BUCKET_COUNT: usize = 65;

/// Default shard count for histograms created by
/// [`Histogram::new`] — enough to keep an 8–16 worker pool from
/// serialising on one atomic, small enough that snapshots stay cheap.
pub const DEFAULT_SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread claims a shard slot once, round-robin; all its
    /// observations land there.
    static SHARD_SLOT: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
}

/// The bucket a value falls into: 0 for zero, else `64 - leading_zeros`
/// (so bucket `i` covers `[2^(i-1), 2^i)`).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `[lo, hi]` range of values a bucket holds.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// One shard's worth of bucket counters.
struct Shard {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, value);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// The tagged maximum observation of the current collection window —
/// the *exemplar* that links an aggregate latency histogram back to the
/// concrete request (by trace id) that produced its worst value.
///
/// Offers are filtered by a relaxed atomic high-water mark, so the
/// mutex below is only ever contended when an observation actually
/// beats the running window maximum — O(1) and lock-free on the hot
/// path for everything else.  Ties keep the first-seen observation, so
/// a fixed multiset of (value, tag) offers always yields the same
/// exemplar.
#[derive(Debug, Default)]
pub struct Exemplar {
    /// Fast-path filter: the window's running maximum value.
    max: AtomicU64,
    /// The `(value, tag)` of the current window maximum.
    slot: Mutex<Option<(u64, u64)>>,
}

impl Exemplar {
    /// An empty exemplar.
    pub fn new() -> Exemplar {
        Exemplar::default()
    }

    /// Offers one tagged observation; it is kept only if it beats the
    /// window's running maximum (ties lose to the incumbent).
    pub fn offer(&self, value: u64, tag: u64) {
        if value < self.max.load(Ordering::Relaxed) {
            return;
        }
        let mut slot = self.slot.lock().expect("exemplar lock");
        match *slot {
            Some((incumbent, _)) if value <= incumbent => {}
            _ => {
                *slot = Some((value, tag));
                self.max.store(value, Ordering::Relaxed);
            }
        }
    }

    /// The current `(value, tag)` maximum without ending the window.
    pub fn peek(&self) -> Option<(u64, u64)> {
        *self.slot.lock().expect("exemplar lock")
    }

    /// Returns the window's `(value, tag)` maximum and starts a fresh
    /// window (`None` when nothing was offered since the last take).
    pub fn take(&self) -> Option<(u64, u64)> {
        let mut slot = self.slot.lock().expect("exemplar lock");
        self.max.store(0, Ordering::Relaxed);
        slot.take()
    }
}

/// A sharded, lock-free, fixed-bucket log-scale histogram.
///
/// # Example
///
/// ```
/// use ujam_metrics::Histogram;
/// let h = Histogram::new();
/// for v in [3_u64, 900, 900, 1_000_000] {
///     h.observe(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.sum, 1_001_803);
/// assert_eq!(snap.p50(), snap.quantile(0.5));
/// ```
pub struct Histogram {
    shards: Vec<Shard>,
    exemplar: Exemplar,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A histogram with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Histogram {
        Histogram::with_shards(DEFAULT_SHARDS)
    }

    /// A histogram with an explicit shard count (clamped to ≥ 1).
    pub fn with_shards(shards: usize) -> Histogram {
        Histogram {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
            exemplar: Exemplar::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Records one observation in the calling thread's shard.
    pub fn observe(&self, value: u64) {
        let slot = SHARD_SLOT.with(|s| *s);
        self.shards[slot % self.shards.len()].record(value);
    }

    /// Records one observation in an explicit shard — for tests and
    /// merge-equivalence checks that need a known distribution of
    /// observations across shards.
    pub fn observe_in_shard(&self, shard: usize, value: u64) {
        self.shards[shard % self.shards.len()].record(value);
    }

    /// [`Histogram::observe`] plus an exemplar offer: when `value`
    /// beats the window maximum, `tag` (a request trace id) becomes the
    /// window's exemplar — retrievable with
    /// [`Histogram::take_exemplar`].
    pub fn observe_tagged(&self, value: u64, tag: u64) {
        self.observe(value);
        self.exemplar.offer(value, tag);
    }

    /// The current window's `(value, tag)` maximum without resetting it.
    pub fn peek_exemplar(&self) -> Option<(u64, u64)> {
        self.exemplar.peek()
    }

    /// Ends the exemplar window: the `(value, tag)` of the maximum
    /// tagged observation since the previous take, or `None` when no
    /// tagged observation arrived.  Bucket counts and sums are
    /// untouched — only the exemplar window resets.
    pub fn take_exemplar(&self) -> Option<(u64, u64)> {
        self.exemplar.take()
    }

    /// A merged snapshot over every shard.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for shard in &self.shards {
            merged.merge(&shard.snapshot());
        }
        merged
    }

    /// One snapshot per shard, unmerged — [`HistogramSnapshot::merge`]
    /// over these must equal [`Histogram::snapshot`].
    pub fn shard_snapshots(&self) -> Vec<HistogramSnapshot> {
        self.shards.iter().map(Shard::snapshot).collect()
    }
}

/// An immutable point-in-time copy of a histogram: exact count, exact
/// (saturating) sum, and every bucket total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, saturating at `u64::MAX`.
    pub sum: u64,
    /// Per-bucket observation counts ([`BUCKET_COUNT`] entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKET_COUNT],
        }
    }

    /// Adds another snapshot into this one: counts and buckets add
    /// exactly, sums saturate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The quantile `q` (in `[0, 1]`), reported as the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` observation.  Returns 0
    /// for an empty snapshot.  Because buckets are fixed, the answer is
    /// deterministic for a given multiset of observations.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKET_COUNT - 1).1
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(lo, hi, count)` triples, in value
    /// order — the compact wire form of the distribution.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_whole_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn observations_land_in_their_buckets_with_exact_count_and_sum() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1024, 1500] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 2530);
        assert_eq!(s.buckets[bucket_index(0)], 1);
        assert_eq!(s.buckets[bucket_index(1)], 1);
        assert_eq!(s.buckets[bucket_index(2)], 2); // 2 and 3
        assert_eq!(s.buckets[bucket_index(1024)], 2); // 1024 and 1500
        assert_eq!(s.nonzero_buckets().len(), 4);
    }

    #[test]
    fn concurrent_observers_lose_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for v in 0..1000u64 {
                        h.observe(v);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.sum, 8 * (999 * 1000 / 2));
    }

    #[test]
    fn exemplar_keeps_the_max_latency_tag_per_window() {
        let h = Histogram::new();
        h.observe_tagged(100, 1);
        h.observe_tagged(900, 2);
        h.observe_tagged(400, 3);
        assert_eq!(h.peek_exemplar(), Some((900, 2)));
        assert_eq!(h.take_exemplar(), Some((900, 2)));
        // The window resets; observations are untouched.
        assert_eq!(h.take_exemplar(), None);
        assert_eq!(h.snapshot().count, 3);
        // A fresh window tracks its own maximum, even a smaller one.
        h.observe_tagged(50, 4);
        assert_eq!(h.take_exemplar(), Some((50, 4)));
    }

    #[test]
    fn exemplar_ties_keep_the_first_seen_tag() {
        let e = Exemplar::new();
        e.offer(700, 10);
        e.offer(700, 11);
        assert_eq!(e.take(), Some((700, 10)));
        // Zero-valued observations still register in an empty window.
        e.offer(0, 12);
        assert_eq!(e.take(), Some((0, 12)));
        assert_eq!(e.take(), None);
    }

    #[test]
    fn concurrent_exemplar_offers_keep_the_true_maximum() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        h.observe_tagged(v, t * 10_000 + v);
                    }
                });
            }
        });
        let (value, tag) = h.take_exemplar().expect("offers arrived");
        assert_eq!(value, 999);
        assert_eq!(tag % 10_000, 999, "tag belongs to a max observation");
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut s = HistogramSnapshot::empty();
        // 90 observations of 100 (bucket [64,127]), 10 of 10_000
        // (bucket [8192,16383]).
        s.count = 100;
        s.buckets[bucket_index(100)] = 90;
        s.buckets[bucket_index(10_000)] = 10;
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        assert_eq!(s.p99(), 16383);
        assert_eq!(s.quantile(1.0), 16383);
    }
}
