//! Point-in-time snapshots of a whole registry, with a versioned,
//! machine-readable JSON rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use ujam_trace::json::write_escaped;

/// The wire-format version stamped into every snapshot — bump it when a
/// field is renamed, removed, or changes meaning (additions are fine).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Everything a registry held at one instant: counter totals, gauge
/// levels, and merged histogram snapshots, each keyed by metric name in
/// sorted order (snapshots of equal registries render identically).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// The snapshot schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Monotonic counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Merged histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's total, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as one strict-JSON object:
    ///
    /// ```json
    /// {"version":1,
    ///  "counters":{"serve.requests":19,...},
    ///  "gauges":{"serve.inflight":0,...},
    ///  "histograms":{"serve.request_ns":{"count":19,"sum":123,
    ///    "mean":6.4,"p50":63,"p90":127,"p99":127,
    ///    "buckets":[[0,0,1],[32,63,9],[64,127,9]]},...}}
    /// ```
    ///
    /// Keys are sorted and every number is written in full, so two
    /// snapshots with equal contents render byte-identically.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"version\":{}", self.version);
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99()
            );
            for (j, (lo, hi, c)) in h.nonzero_buckets().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},{hi},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as aligned human-readable tables (the
    /// default `ujam stats` view).  Sections with no entries are
    /// omitted.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("== metrics: counters ==\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:32} {value:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== metrics: gauges ==\n");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name:32} {value:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("== metrics: histograms ==\n");
            let _ = writeln!(
                out,
                "{:32} {:>10} {:>12} {:>12} {:>12}",
                "histogram", "count", "p50", "p90", "p99"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:32} {:>10} {:>12} {:>12} {:>12}",
                    h.count,
                    h.p50(),
                    h.p90(),
                    h.p99()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_trace::json;

    fn sample() -> MetricsSnapshot {
        let mut h = HistogramSnapshot::empty();
        h.count = 3;
        h.sum = 300;
        h.buckets[crate::histogram::bucket_index(100)] = 3;
        MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            counters: [("serve.requests".to_string(), 19u64)].into(),
            gauges: [("serve.inflight".to_string(), 0i64)].into(),
            histograms: [("serve.request_ns".to_string(), h)].into(),
        }
    }

    #[test]
    fn json_rendering_is_strict_and_complete() {
        let doc = sample().render_json();
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(v.get("version").and_then(json::Value::as_f64), Some(1.0));
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(json::Value::as_f64),
            Some(19.0)
        );
        let h = v
            .get("histograms")
            .and_then(|h| h.get("serve.request_ns"))
            .expect("histogram present");
        assert_eq!(h.get("count").and_then(json::Value::as_f64), Some(3.0));
        assert_eq!(h.get("p99").and_then(json::Value::as_f64), Some(127.0));
        let buckets = h
            .get("buckets")
            .and_then(json::Value::as_array)
            .expect("buckets");
        assert_eq!(buckets.len(), 1, "only nonzero buckets on the wire");
    }

    #[test]
    fn equal_snapshots_render_identically() {
        assert_eq!(sample().render_json(), sample().render_json());
    }

    #[test]
    fn human_rendering_mentions_every_metric() {
        let text = sample().render_human();
        assert!(text.contains("serve.requests"));
        assert!(text.contains("serve.inflight"));
        assert!(text.contains("serve.request_ns"));
    }
}
