//! The time-series layer: a ring of periodic collection windows with
//! counter deltas, derived rates, per-window gauge peaks, and histogram
//! exemplars.
//!
//! A [`MetricsSnapshot`](crate::MetricsSnapshot) is point-in-time — it
//! tells you p99 is up, not when it went up or how fast requests were
//! arriving while it did.  A [`SeriesCollector`] closes that gap: each
//! call to [`SeriesCollector::collect`] ends one *window*, recording
//!
//! * the delta of every counter that advanced since the previous
//!   window (from which rates such as `reqs/s` derive),
//! * the per-window high water of every `*.peak` gauge (read
//!   destructively via [`Gauge::swap_reset`](crate::Gauge::swap_reset),
//!   which leaves the lifetime peak untouched),
//! * the exemplar of every histogram — the `(max value, trace id)` of
//!   the window's worst tagged observation, linking the aggregate back
//!   to a concrete request in the flight recorder.
//!
//! Collection is *destructive* for window state (gauge windows and
//! exemplars reset), so exactly one collector should own a registry's
//! series.  Timestamps are injected by the caller in milliseconds, so
//! tests drive the clock explicitly and renderings are byte-stable:
//! the same sequence of observations and collect calls always yields
//! the same JSON.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::MetricsRegistry;
use ujam_trace::json::write_escaped;

/// The series wire-format version — bump when a field is renamed,
/// removed, or changes meaning (additions are fine).
pub const SERIES_VERSION: u32 = 1;

/// Default ring capacity: enough history for a dashboard's sparkline
/// without unbounded growth.
pub const DEFAULT_WINDOWS: usize = 64;

/// One closed collection window.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesWindow {
    /// Monotonic window number (0 = first window since startup).
    pub seq: u64,
    /// End of the window, in caller-defined milliseconds.
    pub at_ms: u64,
    /// Window length in milliseconds (`at_ms` minus the previous
    /// window's, or `at_ms` itself for the first window).
    pub dur_ms: u64,
    /// Counters that advanced this window, by name, with their deltas.
    pub deltas: BTreeMap<String, u64>,
    /// Per-window high water of `*.peak` gauges that registered one.
    pub peaks: BTreeMap<String, i64>,
    /// Per-histogram exemplars: `(max observed value, trace id)`.
    pub exemplars: BTreeMap<String, (u64, u64)>,
}

impl SeriesWindow {
    /// A counter's delta this window, 0 when it did not advance.
    pub fn delta(&self, name: &str) -> u64 {
        self.deltas.get(name).copied().unwrap_or(0)
    }

    /// A counter's delta as a per-second rate over this window.
    pub fn rate_per_s(&self, name: &str) -> f64 {
        if self.dur_ms == 0 {
            return 0.0;
        }
        self.delta(name) as f64 * 1000.0 / self.dur_ms as f64
    }

    /// Cache hit rate this window: `hits / (hits + misses)`, 0.0 when
    /// the window saw no lookups.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.delta("serve.cache.hits");
        let total = hits + self.delta("serve.cache.misses");
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Renders this window as one strict-JSON object with fixed field
    /// order and sorted map keys, so equal windows render
    /// byte-identically.  The `derived` object carries the serving
    /// rates a dashboard wants precomputed: `reqs_per_s`, `hit_rate`,
    /// `shed_per_s`, and the window's `queue_depth_peak`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{},\"at_ms\":{},\"dur_ms\":{}",
            self.seq, self.at_ms, self.dur_ms
        );
        out.push_str(",\"deltas\":{");
        for (i, (name, v)) in self.deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"peaks\":{");
        for (i, (name, v)) in self.peaks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"exemplars\":{");
        for (i, (name, (max, tag))) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
            let _ = write!(out, ":{{\"max\":{max},\"trace_id\":{tag}}}");
        }
        let _ = write!(
            out,
            "}},\"derived\":{{\"hit_rate\":{:.3},\"queue_depth_peak\":{},\"reqs_per_s\":{:.3},\"shed_per_s\":{:.3}}}}}",
            self.hit_rate(),
            self.peaks.get("serve.queue_depth.peak").copied().unwrap_or(0),
            self.rate_per_s("serve.requests"),
            self.rate_per_s("serve.shed"),
        );
        out
    }
}

/// A bounded ring of [`SeriesWindow`]s over one registry.
pub struct SeriesCollector {
    capacity: usize,
    next_seq: u64,
    last_at_ms: u64,
    prev_counters: BTreeMap<String, u64>,
    windows: VecDeque<SeriesWindow>,
}

impl SeriesCollector {
    /// A collector retaining the last `capacity` windows (clamped ≥ 1).
    pub fn new(capacity: usize) -> SeriesCollector {
        SeriesCollector {
            capacity: capacity.max(1),
            next_seq: 0,
            last_at_ms: 0,
            prev_counters: BTreeMap::new(),
            windows: VecDeque::new(),
        }
    }

    /// A collector with [`DEFAULT_WINDOWS`] capacity.
    pub fn with_default_capacity() -> SeriesCollector {
        SeriesCollector::new(DEFAULT_WINDOWS)
    }

    /// Ends the current window at `at_ms` (caller-defined milliseconds,
    /// expected non-decreasing): counter deltas against the previous
    /// window, `*.peak` gauge windows swap-reset, histogram exemplars
    /// taken.  The oldest window falls off the ring at capacity.
    pub fn collect(&mut self, registry: &MetricsRegistry, at_ms: u64) -> &SeriesWindow {
        let snap = registry.snapshot();
        let mut deltas = BTreeMap::new();
        for (name, &total) in &snap.counters {
            let prev = self.prev_counters.get(name).copied().unwrap_or(0);
            let delta = total.saturating_sub(prev);
            if delta > 0 {
                deltas.insert(name.clone(), delta);
            }
        }
        self.prev_counters = snap.counters;
        let mut peaks = BTreeMap::new();
        for name in snap.gauges.keys() {
            if !name.ends_with(".peak") {
                continue;
            }
            // swap_reset is the destructive per-window read; the
            // lifetime peak (what snapshots report) is untouched.
            let peak = registry.gauge(name).swap_reset();
            if peak != 0 {
                peaks.insert(name.clone(), peak);
            }
        }
        let mut exemplars = BTreeMap::new();
        for name in snap.histograms.keys() {
            if let Some(ex) = registry.histogram(name).take_exemplar() {
                exemplars.insert(name.clone(), ex);
            }
        }
        let window = SeriesWindow {
            seq: self.next_seq,
            at_ms,
            dur_ms: at_ms.saturating_sub(self.last_at_ms),
            deltas,
            peaks,
            exemplars,
        };
        self.next_seq += 1;
        self.last_at_ms = at_ms;
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(window);
        self.windows.back().expect("just pushed")
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &SeriesWindow> {
        self.windows.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Renders the whole ring as one strict-JSON object:
    ///
    /// ```json
    /// {"version":1,"windows":[{"seq":0,"at_ms":1000,...},...]}
    /// ```
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"version\":{SERIES_VERSION},\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&w.render_json());
        }
        out.push_str("]}");
        out
    }
}

impl Default for SeriesCollector {
    fn default() -> SeriesCollector {
        SeriesCollector::with_default_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_trace::json::{self, Value};

    #[test]
    fn deltas_are_per_window_not_cumulative() {
        let reg = MetricsRegistry::new();
        let mut col = SeriesCollector::new(8);
        reg.counter("serve.requests").add(5);
        let w0 = col.collect(&reg, 1000).clone();
        assert_eq!(w0.delta("serve.requests"), 5);
        assert_eq!(w0.dur_ms, 1000);
        reg.counter("serve.requests").add(3);
        let w1 = col.collect(&reg, 3000).clone();
        assert_eq!(w1.delta("serve.requests"), 3, "delta, not total");
        assert_eq!(w1.dur_ms, 2000);
        assert_eq!(w1.rate_per_s("serve.requests"), 1.5);
        // An idle window records no deltas at all.
        let w2 = col.collect(&reg, 4000).clone();
        assert!(w2.deltas.is_empty());
    }

    #[test]
    fn peak_gauges_report_per_window_high_water() {
        let reg = MetricsRegistry::new();
        let mut col = SeriesCollector::new(8);
        reg.gauge("serve.queue_depth.peak").set_max(9);
        reg.gauge("serve.conn.open").set(3); // not a .peak gauge
        let w0 = col.collect(&reg, 1000).clone();
        assert_eq!(w0.peaks.get("serve.queue_depth.peak"), Some(&9));
        assert!(!w0.peaks.contains_key("serve.conn.open"));
        reg.gauge("serve.queue_depth.peak").set_max(2);
        let w1 = col.collect(&reg, 2000).clone();
        assert_eq!(
            w1.peaks.get("serve.queue_depth.peak"),
            Some(&2),
            "the window peak resets even though the lifetime peak is 9"
        );
        assert_eq!(reg.gauge("serve.queue_depth.peak").get(), 9);
    }

    #[test]
    fn exemplars_surface_the_max_latency_trace_id_per_window() {
        let reg = MetricsRegistry::new();
        let mut col = SeriesCollector::new(8);
        let h = reg.histogram("serve.request_ns");
        h.observe_tagged(100, 1);
        h.observe_tagged(5000, 2);
        h.observe_tagged(700, 3);
        let w0 = col.collect(&reg, 1000).clone();
        assert_eq!(w0.exemplars.get("serve.request_ns"), Some(&(5000, 2)));
        // Next window starts fresh.
        h.observe_tagged(300, 4);
        let w1 = col.collect(&reg, 2000).clone();
        assert_eq!(w1.exemplars.get("serve.request_ns"), Some(&(300, 4)));
        let w2 = col.collect(&reg, 3000).clone();
        assert!(w2.exemplars.is_empty(), "no tagged observations arrived");
    }

    #[test]
    fn ring_evicts_oldest_windows_at_capacity() {
        let reg = MetricsRegistry::new();
        let mut col = SeriesCollector::new(3);
        for i in 0..5u64 {
            reg.counter("c").inc();
            col.collect(&reg, (i + 1) * 1000);
        }
        let seqs: Vec<u64> = col.windows().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest first, oldest evicted");
        assert_eq!(col.len(), 3);
    }

    #[test]
    fn rendering_is_byte_stable_and_strict_json() {
        let build = || {
            let reg = MetricsRegistry::new();
            let mut col = SeriesCollector::new(4);
            reg.counter("serve.requests").add(4);
            reg.counter("serve.cache.hits").add(1);
            reg.counter("serve.cache.misses").add(3);
            reg.gauge("serve.queue_depth.peak").set_max(7);
            reg.histogram("serve.request_ns").observe_tagged(1234, 42);
            col.collect(&reg, 2000);
            reg.counter("serve.requests").add(2);
            reg.counter("serve.shed").add(1);
            col.collect(&reg, 3000);
            col.render_json()
        };
        let doc = build();
        assert_eq!(doc, build(), "same observations render identically");
        let expected = concat!(
            "{\"version\":1,\"windows\":[",
            "{\"seq\":0,\"at_ms\":2000,\"dur_ms\":2000,",
            "\"deltas\":{\"serve.cache.hits\":1,\"serve.cache.misses\":3,\"serve.requests\":4},",
            "\"peaks\":{\"serve.queue_depth.peak\":7},",
            "\"exemplars\":{\"serve.request_ns\":{\"max\":1234,\"trace_id\":42}},",
            "\"derived\":{\"hit_rate\":0.250,\"queue_depth_peak\":7,\"reqs_per_s\":2.000,\"shed_per_s\":0.000}},",
            "{\"seq\":1,\"at_ms\":3000,\"dur_ms\":1000,",
            "\"deltas\":{\"serve.requests\":2,\"serve.shed\":1},",
            "\"peaks\":{},\"exemplars\":{},",
            "\"derived\":{\"hit_rate\":0.000,\"queue_depth_peak\":0,\"reqs_per_s\":2.000,\"shed_per_s\":1.000}}",
            "]}"
        );
        assert_eq!(doc, expected, "pinned wire bytes");
        let v = json::parse(&doc).expect("strict JSON");
        assert_eq!(v.get("version").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            v.get("windows").and_then(Value::as_array).map(<[_]>::len),
            Some(2)
        );
    }
}
