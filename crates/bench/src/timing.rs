//! A minimal plain-`Instant` micro-benchmark harness.
//!
//! The workspace builds against an offline registry, so the bench
//! targets cannot pull in criterion; this module provides the small
//! subset they need — calibrated batching, a few repeated samples, and a
//! median/min report — with no dependencies.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples collected per benchmark; the median is the headline number.
const SAMPLES: usize = 7;

/// Target wall time per sample batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);

/// One measured benchmark: its name and per-iteration timings.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark label, e.g. `"tables/jacobi/4"`.
    pub name: String,
    /// Median nanoseconds per iteration across sample batches.
    pub median_ns: f64,
    /// Fastest sample batch, nanoseconds per iteration.
    pub min_ns: f64,
    /// Iterations per sample batch after calibration.
    pub iters: u64,
}

impl Measurement {
    /// Renders one aligned report line.
    pub fn report(&self) -> String {
        format!(
            "{:44} {:>12} /iter   (min {:>12}, {} iters/sample)",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            self.iters
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times `f`, printing a report line and returning the measurement.
///
/// The routine warms up, calibrates a batch size that runs for roughly
/// [`BATCH_TARGET`], then takes [`SAMPLES`] batches and reports the
/// median.  Results are passed through [`black_box`] so the work is not
/// optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up and calibration in one: time single calls until the batch
    // size that hits the target is known.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (BATCH_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let m = Measurement {
        name: name.to_string(),
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        iters,
    };
    println!("{}", m.report());
    m
}

/// Per-pass wall-time totals aggregated from a pipeline [`Trace`].
///
/// Collapses the trace's spans by pass name (keeping first-seen order),
/// so a batch run over many nests reports one row per pass with the
/// total time and how many nests contributed.
///
/// [`Trace`]: ujam_trace::Trace
#[derive(Clone, Debug, Default)]
pub struct PassBreakdown {
    rows: Vec<PassRow>,
}

/// One aggregated row of a [`PassBreakdown`].
#[derive(Clone, Debug)]
pub struct PassRow {
    /// Pass name as it appears in the span (`"build-tables"`, …).
    pub pass: String,
    /// Total nanoseconds across all aggregated spans.
    pub total_ns: u128,
    /// Number of spans (≈ nests) aggregated into this row.
    pub count: usize,
}

impl PassBreakdown {
    /// Aggregates every span of `trace` by pass name.
    pub fn from_trace(trace: &ujam_trace::Trace) -> PassBreakdown {
        let mut b = PassBreakdown::default();
        for (_, pass, ns) in trace.spans() {
            match b.rows.iter_mut().find(|r| r.pass == pass) {
                Some(row) => {
                    row.total_ns += ns;
                    row.count += 1;
                }
                None => b.rows.push(PassRow {
                    pass: pass.to_string(),
                    total_ns: ns,
                    count: 1,
                }),
            }
        }
        b
    }

    /// The aggregated rows, in first-seen (pipeline) order.
    pub fn rows(&self) -> &[PassRow] {
        &self.rows
    }

    /// Total nanoseconds across every pass.
    pub fn total_ns(&self) -> u128 {
        self.rows.iter().map(|r| r.total_ns).sum()
    }

    /// Renders an aligned table: pass, total time, share of the
    /// pipeline, span count.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:18} {:>12} {:>7} {:>7}\n",
            "pass", "total", "share", "spans"
        ));
        let total = self.total_ns().max(1) as f64;
        for r in &self.rows {
            out.push_str(&format!(
                "{:18} {:>12} {:>6.1}% {:>7}\n",
                r.pass,
                fmt_ns(r.total_ns as f64),
                100.0 * r.total_ns as f64 / total,
                r.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_trace::{Trace, TraceRecord};

    #[test]
    fn breakdown_aggregates_by_pass_in_pipeline_order() {
        let trace = Trace::new(vec![
            TraceRecord::span("a", "select-loops", 10),
            TraceRecord::span("a", "search-space", 30),
            TraceRecord::span("b", "select-loops", 5),
            TraceRecord::span("b", "search-space", 15),
        ]);
        let b = PassBreakdown::from_trace(&trace);
        assert_eq!(b.rows().len(), 2);
        assert_eq!(b.rows()[0].pass, "select-loops");
        assert_eq!(b.rows()[0].total_ns, 15);
        assert_eq!(b.rows()[0].count, 2);
        assert_eq!(b.rows()[1].total_ns, 45);
        assert_eq!(b.total_ns(), 60);
        let report = b.report();
        assert!(report.contains("select-loops"));
        assert!(report.contains("75.0%"), "search-space share: {report}");
    }

    #[test]
    fn measures_something_positive() {
        let m = bench("spin", || (0..100u64).sum::<u64>());
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.iters >= 1);
    }

    #[test]
    fn formats_every_magnitude() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5.0e3).ends_with("µs"));
        assert!(fmt_ns(5.0e6).ends_with("ms"));
        assert!(fmt_ns(5.0e9).ends_with("s"));
    }
}
