//! A minimal plain-`Instant` micro-benchmark harness.
//!
//! The workspace builds against an offline registry, so the bench
//! targets cannot pull in criterion; this module provides the small
//! subset they need — calibrated batching, a few repeated samples, and a
//! median/min report — with no dependencies.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples collected per benchmark; the median is the headline number.
const SAMPLES: usize = 7;

/// Target wall time per sample batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);

/// One measured benchmark: its name and per-iteration timings.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark label, e.g. `"tables/jacobi/4"`.
    pub name: String,
    /// Median nanoseconds per iteration across sample batches.
    pub median_ns: f64,
    /// Fastest sample batch, nanoseconds per iteration.
    pub min_ns: f64,
    /// Iterations per sample batch after calibration.
    pub iters: u64,
}

impl Measurement {
    /// Renders one aligned report line.
    pub fn report(&self) -> String {
        format!(
            "{:44} {:>12} /iter   (min {:>12}, {} iters/sample)",
            self.name,
            fmt_ns(self.median_ns),
            fmt_ns(self.min_ns),
            self.iters
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times `f`, printing a report line and returning the measurement.
///
/// The routine warms up, calibrates a batch size that runs for roughly
/// [`BATCH_TARGET`], then takes [`SAMPLES`] batches and reports the
/// median.  Results are passed through [`black_box`] so the work is not
/// optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    // Warm-up and calibration in one: time single calls until the batch
    // size that hits the target is known.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (BATCH_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let m = Measurement {
        name: name.to_string(),
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        iters,
    };
    println!("{}", m.report());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let m = bench("spin", || (0..100u64).sum::<u64>());
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert!(m.iters >= 1);
    }

    #[test]
    fn formats_every_magnitude() {
        assert!(fmt_ns(5.0).ends_with("ns"));
        assert!(fmt_ns(5.0e3).ends_with("µs"));
        assert!(fmt_ns(5.0e6).ends_with("ms"));
        assert!(fmt_ns(5.0e9).ends_with("s"));
    }
}
