//! Table 1 / §5.1: input-dependence share of the dependence graph.

use ujam_dep::{DepGraph, DepKind};
use ujam_kernels::kernels;

/// The §5.1 statistics over a routine corpus.
#[derive(Clone, Debug)]
pub struct Table1Report {
    /// Routines analysed (the paper ran 1187).
    pub routines_total: usize,
    /// Routines that had any dependences (the paper's 649); all
    /// per-routine statistics are over these.
    pub routines_with_deps: usize,
    /// Total dependences across the corpus.
    pub total_deps: usize,
    /// Total input dependences across the corpus (the paper: 84%).
    pub total_input: usize,
    /// Mean per-routine input percentage (the paper: 55.7%).
    pub mean_pct: f64,
    /// Standard deviation of the per-routine percentage (paper: 33.6).
    pub std_pct: f64,
    /// Mean per-routine input-dependence count (the paper: 398).
    pub mean_count: f64,
    /// Histogram bands exactly as Table 1 prints them:
    /// `(label, routine count)`.
    pub bands: Vec<(&'static str, usize)>,
    /// Bytes to store every dependence graph.
    pub bytes_all: usize,
    /// Bytes once input dependences are dropped (the UGS approach).
    pub bytes_no_input: usize,
}

impl Table1Report {
    /// The corpus-wide input fraction (paper headline: 0.84).
    pub fn total_fraction(&self) -> f64 {
        if self.total_deps == 0 {
            0.0
        } else {
            self.total_input as f64 / self.total_deps as f64
        }
    }

    /// Fraction of dependence-graph bytes saved by dropping input edges.
    pub fn bytes_saved_fraction(&self) -> f64 {
        if self.bytes_all == 0 {
            0.0
        } else {
            1.0 - self.bytes_no_input as f64 / self.bytes_all as f64
        }
    }
}

/// Table 1's percentage bands, in the paper's order.
const BANDS: [(&str, f64, f64); 9] = [
    ("0%", 0.0, 0.0),
    ("1%-32%", 0.01, 32.99),
    ("33%-39%", 33.0, 39.99),
    ("40%-49%", 40.0, 49.99),
    ("50%-59%", 50.0, 59.99),
    ("60%-69%", 60.0, 69.99),
    ("70%-79%", 70.0, 79.99),
    ("80%-89%", 80.0, 89.99),
    ("90%-100%", 90.0, 100.0),
];

/// Runs the §5.1 measurement over the 19 kernels plus enough synthetic
/// *subroutines* (each holding several loop nests, like the paper's
/// Fortran routines) to reach `routines_total` (the paper analysed 1187).
pub fn table1(seed: u64, routines_total: usize) -> Table1Report {
    let mut routines: Vec<Vec<ujam_ir::LoopNest>> =
        kernels().iter().map(|k| vec![k.nest()]).collect();
    let synth = routines_total.saturating_sub(routines.len());
    routines.extend(ujam_kernels::corpus_subroutines(seed, synth));

    let mut total_deps = 0usize;
    let mut total_input = 0usize;
    let mut bytes_all = 0usize;
    let mut bytes_no_input = 0usize;
    let mut per_routine_pct = Vec::new();
    let mut per_routine_count = Vec::new();
    let mut band_counts = vec![0usize; BANDS.len()];

    for routine in &routines {
        // Aggregate every nest of the subroutine, as Memoria would.
        let (mut deps, mut input, mut b_all, mut b_no) = (0usize, 0usize, 0usize, 0usize);
        for nest in routine {
            let g = DepGraph::build(nest);
            let stats = g.stats();
            deps += stats.total;
            input += g.count(DepKind::Input);
            b_all += stats.bytes_all;
            b_no += stats.bytes_no_input;
        }
        if deps == 0 {
            continue;
        }
        total_deps += deps;
        total_input += input;
        bytes_all += b_all;
        bytes_no_input += b_no;
        let pct = 100.0 * input as f64 / deps as f64;
        per_routine_pct.push(pct);
        per_routine_count.push(input as f64);
        let band = BANDS
            .iter()
            .position(|&(_, lo, hi)| {
                if lo == 0.0 && hi == 0.0 {
                    input == 0
                } else {
                    pct >= lo && pct <= hi
                }
            })
            .expect("bands cover [0, 100]");
        band_counts[band] += 1;
    }

    let n = per_routine_pct.len().max(1) as f64;
    let mean_pct = per_routine_pct.iter().sum::<f64>() / n;
    let var = per_routine_pct
        .iter()
        .map(|p| (p - mean_pct).powi(2))
        .sum::<f64>()
        / n;
    let mean_count = per_routine_count.iter().sum::<f64>() / n;

    Table1Report {
        routines_total: routines.len(),
        routines_with_deps: per_routine_pct.len(),
        total_deps,
        total_input,
        mean_pct,
        std_pct: var.sqrt(),
        mean_count,
        bands: BANDS
            .iter()
            .zip(band_counts)
            .map(|(&(label, _, _), c)| (label, c))
            .collect(),
        bytes_all,
        bytes_no_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_matches_the_paper() {
        let r = table1(1997, 300);
        assert_eq!(r.routines_total, 300);
        assert!(r.routines_with_deps > 100);
        // The headline claim: input dependences dominate.
        assert!(
            r.total_fraction() > 0.5,
            "input fraction only {}",
            r.total_fraction()
        );
        assert!(r.mean_pct > 30.0 && r.mean_pct < 90.0);
        assert!(r.bytes_saved_fraction() > 0.4);
        // Bands partition the dep-bearing routines.
        let band_total: usize = r.bands.iter().map(|&(_, c)| c).sum();
        assert_eq!(band_total, r.routines_with_deps);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = table1(7, 120);
        let b = table1(7, 120);
        assert_eq!(a.total_deps, b.total_deps);
        assert_eq!(a.total_input, b.total_input);
    }
}
