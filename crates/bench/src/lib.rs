//! Experiment logic behind the table/figure reproduction binaries.
//!
//! Every artifact of the paper's evaluation section has a function here
//! returning structured rows, consumed by the `table1`, `table2`,
//! `figure8`, `figure9` and `table3_ablation` binaries (and by the
//! workspace integration tests, which assert the *shape* of each result).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod extensions;
pub mod figures;
pub mod table1;
pub mod timing;

pub use ablation::{ablation, AblationRow};
pub use extensions::{permute_then_jam, prefetch_sweep, register_sweep, scaling_sweep};
pub use figures::{figure, FigureRow};
pub use table1::{table1, Table1Report};

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}
