//! Figures 8 & 9: normalized execution time of the 19 test loops.

use ujam_core::{optimize_batch_with, BalanceModel};
use ujam_kernels::kernels;
use ujam_machine::MachineModel;
use ujam_sim::simulate;

/// One bar group of Figure 8/9: a kernel's execution time under the three
/// arms the paper plots.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Table 2 loop number.
    pub num: usize,
    /// Kernel name.
    pub name: &'static str,
    /// Simulated cycles of the original loop.
    pub original: f64,
    /// Cycles after unroll-and-jam guided by the *all-hits* model
    /// (the paper's "No Cache" series, Carr & Kennedy '94).
    pub no_cache: f64,
    /// Cycles after unroll-and-jam guided by the §3.2 cache-aware model
    /// (the paper's "Cache" series).
    pub cache: f64,
    /// Unroll vector the all-hits model chose.
    pub unroll_no_cache: Vec<u32>,
    /// Unroll vector the cache-aware model chose.
    pub unroll_cache: Vec<u32>,
}

impl FigureRow {
    /// `no_cache / original` — the normalized bar the paper plots.
    pub fn norm_no_cache(&self) -> f64 {
        self.no_cache / self.original
    }

    /// `cache / original`.
    pub fn norm_cache(&self) -> f64 {
        self.cache / self.original
    }
}

/// Reproduces one figure: optimize every Table 2 loop under both cost
/// models and simulate all three variants on `machine`.
pub fn figure(machine: &MachineModel) -> Vec<FigureRow> {
    let ks = kernels();
    let nests: Vec<_> = ks.iter().map(|k| k.nest()).collect();
    // Both experimental arms go through the batch driver: one pipeline
    // context per nest, fanned out across scoped threads.
    let no_cache_plans = optimize_batch_with(&nests, machine, BalanceModel::AllHits);
    let cache_plans = optimize_batch_with(&nests, machine, BalanceModel::CacheAware);
    ks.iter()
        .zip(&nests)
        .zip(no_cache_plans)
        .zip(cache_plans)
        .map(|(((k, nest), nc), c)| {
            let nc = nc.expect("Table 2 kernels are valid");
            let c = c.expect("Table 2 kernels are valid");
            let original = simulate(nest, machine);
            let no_cache = simulate(&nc.nest, machine);
            let cache = simulate(&c.nest, machine);
            FigureRow {
                num: k.num,
                name: k.name,
                original: original.cycles,
                no_cache: no_cache.cycles,
                cache: cache.cycles,
                unroll_no_cache: nc.unroll,
                unroll_cache: c.unroll,
            }
        })
        .collect()
}

/// Renders the figure as the text table the binaries print: one row per
/// loop, normalized execution times, chosen unroll vectors.
pub fn render(machine: &MachineModel, rows: &[FigureRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Normalized execution time on {} (original = 1.00)",
        machine.name()
    );
    let _ = writeln!(
        out,
        "{:>3} {:10} {:>9} {:>9} {:>9}  {:14} {:14}",
        "#", "loop", "orig", "no-cache", "cache", "u(no-cache)", "u(cache)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>3} {:10} {:>9.2} {:>9.2} {:>9.2}  {:14} {:14}",
            r.num,
            r.name,
            1.0,
            r.norm_no_cache(),
            r.norm_cache(),
            format!("{:?}", r.unroll_no_cache),
            format!("{:?}", r.unroll_cache),
        );
    }
    let gmean_nc = geomean(rows.iter().map(|r| r.norm_no_cache()));
    let gmean_c = geomean(rows.iter().map(|r| r.norm_cache()));
    let _ = writeln!(
        out,
        "geometric mean: no-cache {gmean_nc:.3}, cache {gmean_c:.3}"
    );
    out
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_has_the_paper_shape_on_alpha() {
        let rows = figure(&MachineModel::dec_alpha());
        assert_eq!(rows.len(), 19);
        // Transformed loops never lose by much, and most win.
        let wins = rows.iter().filter(|r| r.norm_cache() < 0.999).count();
        assert!(wins >= 10, "only {wins}/19 loops improved");
        for r in &rows {
            assert!(
                r.norm_cache() < 1.15,
                "{} regressed: {:.2}",
                r.name,
                r.norm_cache()
            );
        }
        // The geometric mean shows a clear overall speedup.
        let g = geomean(rows.iter().map(|r| r.norm_cache()));
        assert!(g < 0.9, "geometric mean {g:.3} not a speedup");
    }
}
