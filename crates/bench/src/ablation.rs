//! §5.3 ablation: precomputed tables versus Wolf/Maydan/Chen brute force.

use std::time::Instant;
use ujam_core::brute::optimize_brute;
use ujam_core::{optimize_in_space, UnrollSpace};
use ujam_dep::{safe_unroll_bounds, DepGraph};
use ujam_kernels::kernels;
use ujam_machine::MachineModel;

/// One kernel's analysis-cost comparison.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Kernel name.
    pub name: &'static str,
    /// Unroll-space size searched.
    pub candidates: usize,
    /// Microseconds for the table-driven optimizer (build + search).
    pub table_us: f64,
    /// Microseconds for the materialise-and-reanalyse optimizer.
    pub brute_us: f64,
    /// Whether both picked the same unroll vector.
    pub agree: bool,
}

impl AblationRow {
    /// `brute / table` — how much re-analysis costs.
    pub fn speedup(&self) -> f64 {
        self.brute_us / self.table_us.max(1e-9)
    }
}

/// Runs the comparison on every kernel over a bound-`bound` space on the
/// loop(s) the dependence analysis allows.
pub fn ablation(machine: &MachineModel, bound: u32) -> Vec<AblationRow> {
    kernels()
        .iter()
        .map(|k| {
            let nest = k.nest();
            let graph = DepGraph::build(&nest);
            let bounds = safe_unroll_bounds(&nest, &graph);
            // Unroll the outermost jammable loop (all kernels have one).
            let loop_idx = (0..nest.depth() - 1).find(|&l| bounds[l] >= 1).unwrap_or(0);
            let b = bound.min(bounds[loop_idx].max(1));
            let space = UnrollSpace::new(nest.depth(), &[loop_idx], b);

            let t0 = Instant::now();
            let table_plan =
                optimize_in_space(&nest, machine, &space).expect("Table 2 kernels are valid");
            let table_us = t0.elapsed().as_secs_f64() * 1e6;

            let t0 = Instant::now();
            let brute_plan =
                optimize_brute(&nest, machine, &space).expect("Table 2 kernels are valid");
            let brute_us = t0.elapsed().as_secs_f64() * 1e6;

            AblationRow {
                name: k.name,
                candidates: space.len(),
                table_us,
                brute_us,
                agree: table_plan.unroll == brute_plan.unroll,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_optimizers_agree_on_every_kernel() {
        for machine in [MachineModel::dec_alpha(), MachineModel::hp_parisc()] {
            for row in ablation(&machine, 4) {
                assert!(row.agree, "{} disagrees on {}", row.name, machine.name());
            }
        }
    }
}
