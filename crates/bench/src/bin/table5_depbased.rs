//! §5.2's equivalence claim, end to end: the UGS-guided optimizer makes
//! the same choices as the dependence-based optimizer (reference \[1\]) —
//! while the latter must build and store full dependence graphs (input
//! dependences included) for every candidate body it evaluates.

use ujam_core::brute::optimize_depbased;
use ujam_core::{optimize_in_space, UnrollSpace};
use ujam_dep::{safe_unroll_bounds, DepGraph};
use ujam_kernels::kernels;
use ujam_machine::MachineModel;
use ujam_sim::simulate;

fn main() {
    let machine = MachineModel::dec_alpha();
    println!("== UGS model vs dependence-based model (reference [1]) ==");
    println!(
        "{:10} {:>12} {:>12} {:>7} {:>9} {:>12}",
        "loop", "u(UGS)", "u(dep)", "agree", "perf", "dep bytes"
    );
    let mut agreements = 0;
    for k in kernels() {
        let nest = k.nest();
        let graph = DepGraph::build(&nest);
        let bounds = safe_unroll_bounds(&nest, &graph);
        let Some(loop_idx) = (0..nest.depth() - 1).find(|&l| bounds[l] >= 1) else {
            continue;
        };
        let space = UnrollSpace::new(nest.depth(), &[loop_idx], bounds[loop_idx].min(7));
        // A kernel the optimizer rejects gets its error row, not a panic:
        // the rest of the suite still prints.
        let ugs = match optimize_in_space(&nest, &machine, &space) {
            Ok(plan) => plan,
            Err(e) => {
                println!("{:10} skipped: {e}", k.name);
                continue;
            }
        };
        let (dep, bytes) = match optimize_depbased(&nest, &machine, &space) {
            Ok(pair) => pair,
            Err(e) => {
                println!("{:10} skipped (dep-based): {e}", k.name);
                continue;
            }
        };
        let agree = ugs.unroll == dep.unroll;
        agreements += agree as usize;
        // Even when the exact vectors differ, the delivered performance
        // should match (the §5.2 claim).
        let t_ugs = simulate(&ugs.nest, &machine).cycles;
        let t_dep = simulate(&dep.nest, &machine).cycles;
        println!(
            "{:10} {:>12} {:>12} {:>7} {:>8.2}x {:>12}",
            k.name,
            format!("{:?}", ugs.unroll),
            format!("{:?}", dep.unroll),
            agree,
            t_dep / t_ugs,
            bytes
        );
    }
    println!("\nagreement: {agreements}/19 loops; 'perf' is dep-model cycles over");
    println!("UGS-model cycles (1.00 = identical performance).  'dep bytes' is");
    println!("the dependence-graph storage the baseline built across its search");
    println!("— the UGS tables build none of it.");
}
