//! Regenerates Figure 9: normalized execution time of the 19 test loops
//! on the HP PA-RISC model (Original / No Cache / Cache).

use ujam_bench::figures::{figure, render};
use ujam_machine::MachineModel;

fn main() {
    let machine = MachineModel::hp_parisc();
    let rows = figure(&machine);
    print!("{}", render(&machine, &rows));
}
