//! Extension experiment: the Wolf/Maydan/Chen combination (§5.3) —
//! memory-order loop permutation (reference \[4\]) before unroll-and-jam,
//! followed by a per-pass wall-time breakdown of the optimizer pipeline
//! over the full Table 2 suite (from the tracing layer's spans).

use ujam_bench::permute_then_jam;
use ujam_bench::timing::PassBreakdown;
use ujam_core::{optimize_batch_traced_with_workers, BalanceModel};
use ujam_kernels::kernels;
use ujam_machine::MachineModel;
use ujam_trace::CollectingSink;

fn main() {
    let machine = MachineModel::dec_alpha();
    println!(
        "== Permute-then-jam pipeline on {} (speedups vs original) ==",
        machine.name()
    );
    println!(
        "{:10} {:>12} {:>9} {:>9} {:>9}",
        "loop", "order", "jam", "permute", "combined"
    );
    for row in permute_then_jam(&machine) {
        println!(
            "{:10} {:>12} {:>8.2}x {:>8.2}x {:>8.2}x",
            row.name,
            row.order.join(","),
            row.jam_only,
            row.permute_only,
            row.combined
        );
    }

    // Where the optimizer spends its time, pass by pass, across the
    // whole Table 2 suite — straight off the tracing layer's spans.
    let nests: Vec<_> = kernels().iter().map(|k| k.nest()).collect();
    let sink = CollectingSink::new();
    let results =
        optimize_batch_traced_with_workers(&nests, &machine, BalanceModel::CacheAware, 1, &sink);
    let failures = results.iter().filter(|r| r.is_err()).count();
    println!(
        "\n== Per-pass timing over the Table 2 suite ({} nests{}) ==",
        nests.len(),
        if failures > 0 {
            format!(", {failures} failed")
        } else {
            String::new()
        }
    );
    print!("{}", PassBreakdown::from_trace(&sink.take()).report());
}
