//! Extension experiment: the Wolf/Maydan/Chen combination (§5.3) —
//! memory-order loop permutation (reference \[4\]) before unroll-and-jam.

use ujam_bench::permute_then_jam;
use ujam_machine::MachineModel;

fn main() {
    let machine = MachineModel::dec_alpha();
    println!(
        "== Permute-then-jam pipeline on {} (speedups vs original) ==",
        machine.name()
    );
    println!(
        "{:10} {:>12} {:>9} {:>9} {:>9}",
        "loop", "order", "jam", "permute", "combined"
    );
    for row in permute_then_jam(&machine) {
        println!(
            "{:10} {:>12} {:>8.2}x {:>8.2}x {:>8.2}x",
            row.name,
            row.order.join(","),
            row.jam_only,
            row.permute_only,
            row.combined
        );
    }
}
