//! §5.3 comparison with Wolf, Maydan & Chen: analysis cost of the
//! table-driven optimizer versus re-analysing every materialised body.
//!
//! Usage: `table3_ablation [bound]` (default unroll-space bound 8).

use std::process::ExitCode;
use ujam_bench::ablation;
use ujam_machine::MachineModel;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: table3_ablation [bound]");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let bound: u32 = std::env::args()
        .nth(1)
        .map(|a| {
            a.parse()
                .map_err(|_| format!("bound must be a number, got {a:?}"))
        })
        .transpose()?
        .unwrap_or(8);
    let machine = MachineModel::dec_alpha();
    let rows = ablation(&machine, bound);
    println!("== Analysis cost: precomputed tables vs brute force (bound {bound}) ==");
    println!(
        "{:10} {:>10} {:>12} {:>12} {:>9} {:>7}",
        "loop", "candidates", "tables (us)", "brute (us)", "speedup", "agree"
    );
    let mut total_t = 0.0;
    let mut total_b = 0.0;
    for r in &rows {
        println!(
            "{:10} {:>10} {:>12.0} {:>12.0} {:>8.1}x {:>7}",
            r.name,
            r.candidates,
            r.table_us,
            r.brute_us,
            r.speedup(),
            r.agree
        );
        total_t += r.table_us;
        total_b += r.brute_us;
    }
    println!(
        "{:10} {:>10} {:>12.0} {:>12.0} {:>8.1}x",
        "TOTAL",
        "",
        total_t,
        total_b,
        total_b / total_t.max(1e-9)
    );
    Ok(())
}
