//! Extension experiment (§6 future work): unroll-and-jam on architectures
//! with larger register sets.

use ujam_bench::register_sweep;

fn main() {
    let kernels = ["dmxpy1", "mmjik", "shal", "afold"];
    let sizes = [8u32, 16, 32, 64, 128];
    println!("== Register-file sweep (Alpha-like machine) ==");
    println!(
        "{:10} {:>6} {:>14} {:>6} {:>8}",
        "loop", "regs", "unroll", "used", "speedup"
    );
    for row in register_sweep(&kernels, &sizes) {
        println!(
            "{:10} {:>6} {:>14} {:>6} {:>7.2}x",
            row.name,
            row.registers,
            format!("{:?}", row.unroll),
            row.used,
            row.speedup
        );
    }
    println!("\nThe register budget is the binding constraint on small files;");
    println!("larger files let the optimizer unroll further until balance or");
    println!("the safety bound takes over — the paper's §6 conjecture.");
}
