//! Extension experiment (§6 future work): architectures with software
//! prefetching — the §3.2 balance model's `b` term, exercised.

use ujam_bench::prefetch_sweep;

fn main() {
    let kernels = ["mmjik", "jacobi", "dmxpy1", "shal"];
    let bandwidths = [0.0, 0.25, 0.5, 1.0];
    println!("== Software-prefetch sweep (Alpha-like machine) ==");
    println!(
        "{:10} {:>6} {:>14} {:>12} {:>8}",
        "loop", "b", "unroll", "cycles", "speedup"
    );
    for row in prefetch_sweep(&kernels, &bandwidths) {
        println!(
            "{:10} {:>6} {:>14} {:>12.0} {:>7.2}x",
            row.name,
            row.bandwidth,
            format!("{:?}", row.unroll),
            row.cycles,
            row.speedup
        );
    }
    println!("\nAs the prefetcher hides more of the miss term, the cache-aware");
    println!("objective converges to the all-hits objective and the remaining");
    println!("speedup comes purely from balancing memory ops against flops.");
}
