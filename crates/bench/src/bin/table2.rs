//! Regenerates Table 2: the test-loop roster, with this reproduction's
//! per-kernel statistics appended (depth, refs, flops, balance inputs).

use ujam_kernels::kernels;
use ujam_reuse::{nest_cache_cost, Localized};

fn main() {
    println!("== Table 2: Description of Test Loops ==");
    println!(
        "{:>3} {:10} {:38} {:>5} {:>5} {:>6} {:>7}",
        "Num", "Loop", "Description", "depth", "refs", "flops", "lines/i"
    );
    for k in kernels() {
        let nest = k.nest();
        let lines = nest_cache_cost(&nest, &Localized::innermost(nest.depth()), 4);
        println!(
            "{:>3} {:10} {:38} {:>5} {:>5} {:>6} {:>7.3}",
            k.num,
            k.name,
            k.description,
            nest.depth(),
            nest.refs().len(),
            nest.flops_per_iter(),
            lines
        );
    }
    println!();
    println!("Reconstruction notes:");
    for k in kernels() {
        println!("  {:10} {}", k.name, k.notes);
    }
}
