//! Extension experiment: problem-size sweep across the cache-capacity
//! crossover (Alpha model, 8 KiB cache).

use ujam_bench::extensions::scaling_sweep;

fn main() {
    let kernels = ["dmxpy0", "jacobi", "mmjki", "cond.9"];
    let sizes = [24i64, 48, 96, 240];
    println!("== Problem-size sweep (DEC Alpha model) ==");
    println!(
        "{:10} {:>5} {:>8} {:>10} {:>14} {:>8}",
        "loop", "n", ">cache", "miss-rate", "unroll", "speedup"
    );
    for r in scaling_sweep(&kernels, &sizes) {
        println!(
            "{:10} {:>5} {:>8} {:>9.1}% {:>14} {:>7.2}x",
            r.name,
            r.n,
            r.exceeds_cache,
            100.0 * r.orig_miss_rate,
            format!("{:?}", r.unroll),
            r.speedup
        );
    }
    println!("\nBelow the cache capacity the miss term vanishes and the win is");
    println!("balance-only; above it the cache-aware model's extra unrolling");
    println!("pays off — the crossover the paper's model predicts.");
}
