//! Regenerates Table 1 and the §5.1 statistics.
//!
//! Usage: `table1 [routine-count] [seed]` (defaults: 1187 routines —
//! the paper's corpus size — seed 1997).

use std::process::ExitCode;
use ujam_bench::{pct, table1};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: table1 [routine-count] [seed]");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| {
            a.parse()
                .map_err(|_| format!("routine count must be a number, got {a:?}"))
        })
        .transpose()?
        .unwrap_or(1187);
    let seed: u64 = args
        .next()
        .map(|a| {
            a.parse()
                .map_err(|_| format!("seed must be a number, got {a:?}"))
        })
        .transpose()?
        .unwrap_or(1997);

    let r = table1(seed, n);
    println!("== Table 1: Percentage of Input Dependences ==");
    println!("{:>12} | Number of Routines", "Range");
    println!("{:->12}-+-{:->20}", "", "");
    for (label, count) in &r.bands {
        println!("{label:>12} | {count}");
    }
    println!();
    println!("== Section 5.1 statistics ==");
    println!("routines analysed:          {}", r.routines_total);
    println!("routines with dependences:  {}", r.routines_with_deps);
    println!("total dependences:          {}", r.total_deps);
    println!(
        "total input dependences:    {} ({} of all dependences; paper: 84%)",
        r.total_input,
        pct(r.total_fraction())
    );
    println!(
        "mean per-routine input %:   {:.1}% (std {:.1}; paper: 55.7%, std 33.6)",
        r.mean_pct, r.std_pct
    );
    println!(
        "mean input deps / routine:  {:.1} (paper: 398)",
        r.mean_count
    );
    println!();
    println!("== Dependence-graph storage (A2) ==");
    println!("bytes with input deps:      {}", r.bytes_all);
    println!("bytes without input deps:   {}", r.bytes_no_input);
    println!(
        "space saved by UGS model:   {}",
        pct(r.bytes_saved_fraction())
    );
    Ok(())
}
