//! Regenerates Figure 8: normalized execution time of the 19 test loops
//! on the DEC Alpha model (Original / No Cache / Cache).

use ujam_bench::figures::{figure, render};
use ujam_machine::MachineModel;

fn main() {
    let machine = MachineModel::dec_alpha();
    let rows = figure(&machine);
    print!("{}", render(&machine, &rows));
}
