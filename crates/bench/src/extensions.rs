//! Extension experiments beyond the paper's evaluation — its §6 future
//! work, made runnable:
//!
//! * [`register_sweep`] — "examine the performance of unroll-and-jam on
//!   architectures with larger register sets so that the transformation is
//!   not as limited";
//! * [`prefetch_sweep`] — "the effects of our optimization technique on
//!   architectures that support software prefetching since our performance
//!   model handles this";
//! * [`permute_then_jam`] — the Wolf/Maydan/Chen §5.3 combination:
//!   memory-order permutation (reference \[4\]) before unroll-and-jam.

use ujam_core::{optimize, optimize_with, BalanceModel};
use ujam_dep::DepGraph;
use ujam_kernels::{kernel, kernels};
use ujam_machine::MachineModel;
use ujam_reuse::permute::best_order;
use ujam_sim::simulate;

/// One row of the register-file sweep.
#[derive(Clone, Debug)]
pub struct RegisterRow {
    /// Kernel name.
    pub name: &'static str,
    /// FP register-file size.
    pub registers: u32,
    /// Chosen unroll vector.
    pub unroll: Vec<u32>,
    /// Registers the plan consumes.
    pub used: i64,
    /// Simulated speedup over the original loop.
    pub speedup: f64,
}

/// Sweeps FP register-file sizes on an Alpha-like machine for the given
/// kernels, showing how the register constraint limits (and larger files
/// unlock) unrolling.
pub fn register_sweep(names: &[&'static str], sizes: &[u32]) -> Vec<RegisterRow> {
    let mut rows = Vec::new();
    for &name in names {
        let nest = kernel(name).expect("known kernel").nest();
        for &registers in sizes {
            let machine = MachineModel::builder("alpha-variant")
                .rates(1.0, 1.0)
                .issue_width(2)
                .registers(registers)
                .cache(8 * 1024, 32, 1)
                .miss(20.0, 1.0)
                .fp_latency(6)
                .build();
            let plan = optimize(&nest, &machine).expect("known kernels are valid");
            let before = simulate(&nest, &machine);
            let after = simulate(&plan.nest, &machine);
            rows.push(RegisterRow {
                name,
                registers,
                unroll: plan.unroll,
                used: plan.predicted.registers,
                speedup: before.cycles / after.cycles,
            });
        }
    }
    rows
}

/// One row of the prefetch sweep.
#[derive(Clone, Debug)]
pub struct PrefetchRow {
    /// Kernel name.
    pub name: &'static str,
    /// Prefetch-issue bandwidth (prefetches per cycle).
    pub bandwidth: f64,
    /// Chosen unroll vector under the cache-aware model.
    pub unroll: Vec<u32>,
    /// Simulated cycles of the transformed loop.
    pub cycles: f64,
    /// Simulated speedup over the original loop on the same machine.
    pub speedup: f64,
}

/// Sweeps software-prefetch bandwidth: as `b` grows the miss term of §3.2
/// vanishes, the cache-aware model converges to the all-hits model, and
/// the residual win comes purely from balance.
pub fn prefetch_sweep(names: &[&'static str], bandwidths: &[f64]) -> Vec<PrefetchRow> {
    let mut rows = Vec::new();
    for &name in names {
        let nest = kernel(name).expect("known kernel").nest();
        for &bandwidth in bandwidths {
            let machine = MachineModel::builder("alpha+pf")
                .rates(1.0, 1.0)
                .issue_width(2)
                .registers(32)
                .cache(8 * 1024, 32, 1)
                .miss(20.0, 1.0)
                .prefetch(bandwidth)
                .fp_latency(6)
                .build();
            let plan = optimize_with(&nest, &machine, BalanceModel::CacheAware)
                .expect("known kernels are valid");
            let before = simulate(&nest, &machine);
            let after = simulate(&plan.nest, &machine);
            rows.push(PrefetchRow {
                name,
                bandwidth,
                unroll: plan.unroll,
                cycles: after.cycles,
                speedup: before.cycles / after.cycles,
            });
        }
    }
    rows
}

/// One row of the permute-then-jam pipeline comparison.
#[derive(Clone, Debug)]
pub struct PipelineRow {
    /// Kernel name.
    pub name: &'static str,
    /// Loop order chosen by the memory-order pass.
    pub order: Vec<String>,
    /// Speedup from unroll-and-jam alone.
    pub jam_only: f64,
    /// Speedup from permutation alone.
    pub permute_only: f64,
    /// Speedup from permutation followed by unroll-and-jam.
    pub combined: f64,
}

/// Runs the Wolf et al. combination over the whole suite: permutation for
/// locality first, then unroll-and-jam for balance.
pub fn permute_then_jam(machine: &MachineModel) -> Vec<PipelineRow> {
    kernels()
        .iter()
        .map(|k| {
            let nest = k.nest();
            let baseline = simulate(&nest, machine).cycles;

            let jam = optimize(&nest, machine).expect("known kernels are valid");
            let jam_only = baseline / simulate(&jam.nest, machine).cycles;

            let graph = DepGraph::build(&nest);
            let (permuted, _) = best_order(&nest, &graph, machine.line_elems());
            let permute_only = baseline / simulate(&permuted, machine).cycles;

            let combined_plan =
                optimize(&permuted, machine).expect("permutation preserves validity");
            let combined = baseline / simulate(&combined_plan.nest, machine).cycles;

            PipelineRow {
                name: k.name,
                order: permuted.loop_vars().iter().map(|s| s.to_string()).collect(),
                jam_only,
                permute_only,
                combined,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_core::optimize;

    #[test]
    fn larger_register_files_unlock_more_unrolling() {
        let rows = register_sweep(&["dmxpy1"], &[12, 32, 128]);
        assert_eq!(rows.len(), 3);
        // The chosen unroll amount is monotone in the register budget.
        let amounts: Vec<u32> = rows.iter().map(|r| r.unroll[0]).collect();
        assert!(
            amounts[0] <= amounts[1] && amounts[1] <= amounts[2],
            "{amounts:?}"
        );
        // And the budget is always respected.
        for r in &rows {
            assert!(r.used <= r.registers.saturating_sub(6) as i64);
        }
    }

    #[test]
    fn prefetch_bandwidth_never_slows_a_fixed_plan() {
        // For one fixed transformed loop, adding prefetch bandwidth can
        // only hide penalty cycles.  (The *chosen plan* may differ between
        // bandwidths — the sweep binary shows that — so the guarantee is
        // per-plan, not per-sweep-row.)
        let nest = kernel("mmjik").expect("known kernel").nest();
        let base = MachineModel::builder("b0")
            .rates(1.0, 1.0)
            .registers(32)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .fp_latency(6)
            .build();
        let pf = MachineModel::builder("b1")
            .rates(1.0, 1.0)
            .registers(32)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .prefetch(1.0)
            .fp_latency(6)
            .build();
        let plan = optimize(&nest, &base).expect("known kernels are valid");
        assert!(simulate(&plan.nest, &pf).cycles <= simulate(&plan.nest, &base).cycles);
        // And the sweep produces a row per (kernel, bandwidth).
        let rows = prefetch_sweep(&["mmjik"], &[0.0, 1.0]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.speedup > 0.0));
    }

    #[test]
    fn pipeline_reports_the_memory_order_and_wins_over_permute_alone() {
        let rows = permute_then_jam(&MachineModel::dec_alpha());
        assert_eq!(rows.len(), 19);
        // mmjik: permutation yields the JKI memory order; jamming the
        // permuted loop beats permutation alone.  (Jam-only on the
        // original JIK order register-blocks the dot product and can beat
        // both — a finding, not a bug: see the table4_pipeline output.)
        let mmjik = rows.iter().find(|r| r.name == "mmjik").expect("in suite");
        assert_eq!(mmjik.order, vec!["J", "K", "I"]);
        assert!(mmjik.combined >= mmjik.permute_only * 0.99);
        // Kernels already in memory order are left alone by the permuter.
        let mmjki = rows.iter().find(|r| r.name == "mmjki").expect("in suite");
        assert_eq!(mmjki.order, vec!["J", "K", "I"]);
        assert!((mmjki.permute_only - 1.0).abs() < 1e-9);
    }
}

/// One row of the problem-size sweep.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Kernel name.
    pub name: &'static str,
    /// Iterations per loop.
    pub n: i64,
    /// Whether the per-sweep working set exceeds the data cache.
    pub exceeds_cache: bool,
    /// Unroll vector the cache-aware model chose.
    pub unroll: Vec<u32>,
    /// Simulated speedup of the chosen plan over the original.
    pub speedup: f64,
    /// Miss rate of the original loop.
    pub orig_miss_rate: f64,
}

/// Sweeps problem sizes across the cache-capacity crossover: once the
/// working set fits in cache the miss term of §3.2 vanishes and the
/// remaining speedup comes from balance alone — the transformation's
/// cache motivation has a *size threshold* the sweep makes visible.
pub fn scaling_sweep(names: &[&'static str], sizes: &[i64]) -> Vec<ScalingRow> {
    let machine = MachineModel::dec_alpha();
    let mut rows = Vec::new();
    for &name in names {
        let k = kernel(name).expect("known kernel");
        for &n in sizes {
            let nest = k.nest_sized(n);
            let plan = optimize(&nest, &machine).expect("known kernels are valid");
            let before = simulate(&nest, &machine);
            let after = simulate(&plan.nest, &machine);
            // Rough working-set estimate: every declared array element.
            let bytes: i64 = nest.arrays().iter().map(|a| a.len() * 8).sum();
            rows.push(ScalingRow {
                name,
                n,
                exceeds_cache: bytes as usize > machine.cache_bytes(),
                unroll: plan.unroll,
                speedup: before.cycles / after.cycles,
                orig_miss_rate: before.miss_rate(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod scaling_tests {
    use super::*;

    #[test]
    fn miss_rates_fall_when_the_working_set_fits() {
        let rows = scaling_sweep(&["dmxpy0"], &[24, 240]);
        assert!(rows[0].orig_miss_rate < rows[1].orig_miss_rate);
        assert!(!rows[0].exceeds_cache);
        assert!(rows[1].exceeds_cache);
        // The transformation never hurts at either size.
        for r in &rows {
            assert!(r.speedup > 0.95, "{r:?}");
        }
    }
}
