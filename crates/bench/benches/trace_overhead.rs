//! Overhead guard for the observability layers: with the default
//! `NullSink` (and the disabled `MetricsHandle` it implies), the
//! tables-path optimizer must stay within 2% of a pipeline that has no
//! tracing plumbing at all — and so must a pipeline with a *live*
//! metrics registry, whose per-pass histogram observes are relaxed
//! atomics on pre-sized buckets.
//!
//! Four arms over the same kernel:
//! 1. `bare` — the pass sequence invoked via `Pass::run` directly (no
//!    `run_traced` wrapper, no sink anywhere),
//! 2. `null-sink` — `optimize_with`, which routes through
//!    `optimize_traced(.., NullSink)` with metrics disabled: every
//!    emission site is behind one `enabled()` check (2% gate),
//! 3. `metrics` — `optimize_observed` with a null sink but an enabled
//!    `MetricsHandle`, recording `pass.*.ns` histograms (2% gate),
//! 4. `collect` — `optimize_traced` with a `CollectingSink`, to show
//!    what full tracing costs (informational).
//!
//! Plain-`Instant` harness (`ujam_bench::timing`): the offline registry
//! rules out criterion.  Run with `cargo bench --bench trace_overhead`.
//! The 2% gate is checked on the fastest of several attempts so a noisy
//! scheduler tick cannot fail the guard spuriously.

use std::sync::Arc;
use ujam_bench::timing::bench;
use ujam_core::pipeline::{AnalysisCtx, ApplyTransform, Pass, SearchSpace, SelectLoops};
use ujam_core::{
    optimize_observed, optimize_traced, optimize_with, CancelToken, CostModel, Optimized,
};
use ujam_kernels::kernel;
use ujam_machine::MachineModel;
use ujam_metrics::{MetricsHandle, MetricsRegistry};
use ujam_trace::CollectingSink;

/// The pipeline exactly as `optimize_with` runs it, but through the
/// plain `Pass::run` entry points — the no-tracing-plumbing baseline.
fn optimize_bare(
    nest: &ujam_ir::LoopNest,
    machine: &MachineModel,
) -> Result<Optimized, ujam_core::OptimizeError> {
    let mut ctx = AnalysisCtx::new(nest, machine)?;
    let space = SelectLoops::default().run(&mut ctx)?;
    let found = SearchSpace {
        space: space.clone(),
        model: CostModel::CacheAware,
        code_budget: None,
    }
    .run(&mut ctx)?;
    let nest_out = ApplyTransform {
        unroll: found.unroll.clone(),
    }
    .run(&mut ctx)?;
    Ok(Optimized {
        nest: nest_out,
        unroll: found.unroll,
        predicted: found.predicted,
        original: found.original,
        space,
    })
}

fn main() {
    let nest = kernel("dmxpy0").expect("known kernel").nest();
    let machine = MachineModel::dec_alpha();

    // Sanity first: all three arms agree on the plan.
    let bare = optimize_bare(&nest, &machine).expect("valid kernel");
    let null = optimize_with(&nest, &machine, CostModel::CacheAware).expect("valid kernel");
    let sink = CollectingSink::new();
    let collected =
        optimize_traced(&nest, &machine, CostModel::CacheAware, &sink).expect("valid kernel");
    let registry = Arc::new(MetricsRegistry::new());
    let handle = MetricsHandle::new(Arc::clone(&registry));
    let metered = optimize_observed(
        &nest,
        &machine,
        CostModel::CacheAware,
        ujam_trace::null_sink(),
        CancelToken::never(),
        handle.clone(),
    )
    .expect("valid kernel");
    assert_eq!(bare.unroll, null.unroll);
    assert_eq!(bare.unroll, collected.unroll);
    assert_eq!(bare.unroll, metered.unroll);
    assert!(!sink.take().records.is_empty(), "collector saw the run");
    assert!(
        registry
            .snapshot()
            .histogram("pass.select-loops.ns")
            .is_some_and(|h| h.count > 0),
        "registry saw the run"
    );

    const MAX_OVERHEAD: f64 = 0.02;
    const ATTEMPTS: usize = 5;
    let mut best_null = f64::INFINITY;
    let mut best_metered = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let base = bench("optimize/bare/dmxpy0", || optimize_bare(&nest, &machine));
        let nulled = bench("optimize/null-sink/dmxpy0", || {
            optimize_with(&nest, &machine, CostModel::CacheAware)
        });
        let metered = bench("optimize/metrics/dmxpy0", || {
            optimize_observed(
                &nest,
                &machine,
                CostModel::CacheAware,
                ujam_trace::null_sink(),
                CancelToken::never(),
                handle.clone(),
            )
        });
        best_null = best_null.min(nulled.min_ns / base.min_ns);
        best_metered = best_metered.min(metered.min_ns / base.min_ns);
        println!(
            "attempt {attempt}: null-sink / bare = {:.4}, metrics / bare = {:.4} (gate {:.2})",
            nulled.min_ns / base.min_ns,
            metered.min_ns / base.min_ns,
            1.0 + MAX_OVERHEAD
        );
        if best_null <= 1.0 + MAX_OVERHEAD && best_metered <= 1.0 + MAX_OVERHEAD {
            break;
        }
    }
    // Informational: what a fully collecting sink costs on the same path.
    bench("optimize/collecting-sink/dmxpy0", || {
        let sink = CollectingSink::new();
        optimize_traced(&nest, &machine, CostModel::CacheAware, &sink)
    });
    assert!(
        best_null <= 1.0 + MAX_OVERHEAD,
        "NullSink overhead {:.2}% exceeds the {:.0}% gate",
        100.0 * (best_null - 1.0),
        100.0 * MAX_OVERHEAD
    );
    assert!(
        best_metered <= 1.0 + MAX_OVERHEAD,
        "live-metrics overhead {:.2}% exceeds the {:.0}% gate",
        100.0 * (best_metered - 1.0),
        100.0 * MAX_OVERHEAD
    );
    println!(
        "PASS: disabled tracing costs {:+.2}%, live metrics {:+.2}% on the tables path (gate {:.0}%)",
        100.0 * (best_null - 1.0),
        100.0 * (best_metered - 1.0),
        100.0 * MAX_OVERHEAD
    );
}
