//! Overhead guard for the observability layers: with the default
//! `NullSink` (and the disabled `MetricsHandle` it implies), the
//! tables-path optimizer must stay within 2% of a pipeline that has no
//! tracing plumbing at all — and so must a pipeline with a *live*
//! metrics registry, whose per-pass histogram observes are relaxed
//! atomics on pre-sized buckets.
//!
//! Four arms over the same kernel:
//! 1. `bare` — the pass sequence invoked via `Pass::run` directly (no
//!    `run_traced` wrapper, no sink anywhere),
//! 2. `null-sink` — `optimize_with`, which routes through
//!    `optimize_traced(.., NullSink)` with metrics disabled: every
//!    emission site is behind one `enabled()` check (2% gate),
//! 3. `metrics` — `optimize_observed` with a null sink but an enabled
//!    `MetricsHandle`, recording `pass.*.ns` histograms (2% gate),
//! 4. `cost-analytic` — `optimize_costed` with the default analytic
//!    cost backend: the profiler plumbing exists but must never run,
//!    so this arm stays within the same 2% gate,
//! 5. `collect` — `optimize_traced` with a `CollectingSink`, to show
//!    what full tracing costs (informational).
//!
//! A second pair of arms gates the serving layer's request-lifecycle
//! tracing: `Server::handle_line` (untimed) against
//! `Server::handle_line_timed` plus a flight-recorder begin/commit per
//! request — the whole per-request timeline cost (`Instant` stamps at
//! each edge, one ring push) must also stay within the 2% gate.
//!
//! Plain-`Instant` harness (`ujam_bench::timing`): the offline registry
//! rules out criterion.  Run with `cargo bench --bench trace_overhead`.
//! The 2% gate is checked on the fastest of several attempts so a noisy
//! scheduler tick cannot fail the guard spuriously.

use std::sync::Arc;
use ujam_bench::timing::bench;
use ujam_core::pipeline::{AnalysisCtx, ApplyTransform, Pass, SearchSpace, SelectLoops};
use ujam_core::{
    optimize_costed, optimize_observed, optimize_traced, optimize_with, BalanceModel, CancelToken,
    CostModelKind, Optimized, SearchConfig,
};
use ujam_kernels::kernel;
use ujam_machine::MachineModel;
use ujam_metrics::{MetricsHandle, MetricsRegistry};
use ujam_serve::{ServeConfig, Server};
use ujam_trace::CollectingSink;

/// The pipeline exactly as `optimize_with` runs it, but through the
/// plain `Pass::run` entry points — the no-tracing-plumbing baseline.
fn optimize_bare(
    nest: &ujam_ir::LoopNest,
    machine: &MachineModel,
) -> Result<Optimized, ujam_core::OptimizeError> {
    let mut ctx = AnalysisCtx::new(nest, machine)?;
    let space = SelectLoops::default().run(&mut ctx)?;
    let found = SearchSpace {
        space: space.clone(),
        model: BalanceModel::CacheAware,
        cost: CostModelKind::Analytic,
        code_budget: None,
    }
    .run(&mut ctx)?;
    let nest_out = ApplyTransform {
        unroll: found.unroll.clone(),
    }
    .run(&mut ctx)?;
    Ok(Optimized {
        nest: nest_out,
        unroll: found.unroll,
        predicted: found.predicted,
        original: found.original,
        space,
    })
}

fn main() {
    let nest = kernel("dmxpy0").expect("known kernel").nest();
    let machine = MachineModel::dec_alpha();

    // Sanity first: all three arms agree on the plan.
    let bare = optimize_bare(&nest, &machine).expect("valid kernel");
    let null = optimize_with(&nest, &machine, BalanceModel::CacheAware).expect("valid kernel");
    let sink = CollectingSink::new();
    let collected =
        optimize_traced(&nest, &machine, BalanceModel::CacheAware, &sink).expect("valid kernel");
    let registry = Arc::new(MetricsRegistry::new());
    let handle = MetricsHandle::new(Arc::clone(&registry));
    let metered = optimize_observed(
        &nest,
        &machine,
        BalanceModel::CacheAware,
        ujam_trace::null_sink(),
        CancelToken::never(),
        handle.clone(),
    )
    .expect("valid kernel");
    let costed = optimize_costed(
        &nest,
        &machine,
        BalanceModel::CacheAware,
        CostModelKind::Analytic,
        ujam_trace::null_sink(),
        CancelToken::never(),
        MetricsHandle::disabled(),
        SearchConfig::default(),
    )
    .expect("valid kernel");
    assert_eq!(bare.unroll, null.unroll);
    assert_eq!(bare.unroll, collected.unroll);
    assert_eq!(bare.unroll, metered.unroll);
    assert_eq!(bare.unroll, costed.unroll);
    assert!(!sink.take().records.is_empty(), "collector saw the run");
    assert!(
        registry
            .snapshot()
            .histogram("pass.select-loops.ns")
            .is_some_and(|h| h.count > 0),
        "registry saw the run"
    );

    // The serving arms: an uncached server so every request runs the
    // full search (the realistic hot path the 2% gate protects), one
    // with plain handling, one with lifecycle timelines.
    let serve_cfg = ServeConfig {
        cache_capacity: 0,
        ..ServeConfig::default()
    };
    let line = "{\"id\":\"t\",\"kernel\":\"dmxpy0\"}";
    let untimed_server = Server::new(serve_cfg, ujam_trace::null_sink());
    let timed_server = Server::new(serve_cfg, ujam_trace::null_sink());
    let untimed_reply = untimed_server.handle_line(line);
    let mut state = timed_server.flight().begin(std::time::Instant::now());
    let timed_reply = timed_server.handle_line_timed(line, &mut state);
    state.stamp_flushed();
    timed_server.flight().commit(state.timeline);
    assert_eq!(
        untimed_reply, timed_reply,
        "lifecycle tracing must not change replies"
    );

    const MAX_OVERHEAD: f64 = 0.02;
    const ATTEMPTS: usize = 5;
    let mut best_null = f64::INFINITY;
    let mut best_metered = f64::INFINITY;
    let mut best_costed = f64::INFINITY;
    let mut best_lifecycle = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let base = bench("optimize/bare/dmxpy0", || optimize_bare(&nest, &machine));
        let nulled = bench("optimize/null-sink/dmxpy0", || {
            optimize_with(&nest, &machine, BalanceModel::CacheAware)
        });
        let metered = bench("optimize/metrics/dmxpy0", || {
            optimize_observed(
                &nest,
                &machine,
                BalanceModel::CacheAware,
                ujam_trace::null_sink(),
                CancelToken::never(),
                handle.clone(),
            )
        });
        let costed = bench("optimize/cost-analytic/dmxpy0", || {
            optimize_costed(
                &nest,
                &machine,
                BalanceModel::CacheAware,
                CostModelKind::Analytic,
                ujam_trace::null_sink(),
                CancelToken::never(),
                MetricsHandle::disabled(),
                SearchConfig::default(),
            )
        });
        let serve_base = bench("serve/untimed/dmxpy0", || untimed_server.handle_line(line));
        let serve_timed = bench("serve/lifecycle/dmxpy0", || {
            let mut state = timed_server.flight().begin(std::time::Instant::now());
            let reply = timed_server.handle_line_timed(line, &mut state);
            state.stamp_flushed();
            timed_server.flight().commit(state.timeline);
            reply
        });
        best_null = best_null.min(nulled.min_ns / base.min_ns);
        best_metered = best_metered.min(metered.min_ns / base.min_ns);
        best_costed = best_costed.min(costed.min_ns / base.min_ns);
        best_lifecycle = best_lifecycle.min(serve_timed.min_ns / serve_base.min_ns);
        println!(
            "attempt {attempt}: null-sink / bare = {:.4}, metrics / bare = {:.4}, cost-analytic / bare = {:.4}, lifecycle / untimed = {:.4} (gate {:.2})",
            nulled.min_ns / base.min_ns,
            metered.min_ns / base.min_ns,
            costed.min_ns / base.min_ns,
            serve_timed.min_ns / serve_base.min_ns,
            1.0 + MAX_OVERHEAD
        );
        if best_null <= 1.0 + MAX_OVERHEAD
            && best_metered <= 1.0 + MAX_OVERHEAD
            && best_costed <= 1.0 + MAX_OVERHEAD
            && best_lifecycle <= 1.0 + MAX_OVERHEAD
        {
            break;
        }
    }
    // Informational: what a fully collecting sink costs on the same path.
    bench("optimize/collecting-sink/dmxpy0", || {
        let sink = CollectingSink::new();
        optimize_traced(&nest, &machine, BalanceModel::CacheAware, &sink)
    });
    assert!(
        best_null <= 1.0 + MAX_OVERHEAD,
        "NullSink overhead {:.2}% exceeds the {:.0}% gate",
        100.0 * (best_null - 1.0),
        100.0 * MAX_OVERHEAD
    );
    assert!(
        best_metered <= 1.0 + MAX_OVERHEAD,
        "live-metrics overhead {:.2}% exceeds the {:.0}% gate",
        100.0 * (best_metered - 1.0),
        100.0 * MAX_OVERHEAD
    );
    assert!(
        best_costed <= 1.0 + MAX_OVERHEAD,
        "analytic cost-backend overhead {:.2}% exceeds the {:.0}% gate \
         (the profiler must cost nothing when it is not selected)",
        100.0 * (best_costed - 1.0),
        100.0 * MAX_OVERHEAD
    );
    assert!(
        best_lifecycle <= 1.0 + MAX_OVERHEAD,
        "request-lifecycle tracing overhead {:.2}% exceeds the {:.0}% gate \
         (timeline stamps must stay O(1) per edge)",
        100.0 * (best_lifecycle - 1.0),
        100.0 * MAX_OVERHEAD
    );
    println!(
        "PASS: disabled tracing costs {:+.2}%, live metrics {:+.2}%, analytic cost backend {:+.2}%, lifecycle tracing {:+.2}% (gate {:.0}%)",
        100.0 * (best_null - 1.0),
        100.0 * (best_metered - 1.0),
        100.0 * (best_costed - 1.0),
        100.0 * (best_lifecycle - 1.0),
        100.0 * MAX_OVERHEAD
    );
}
