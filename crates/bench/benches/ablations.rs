//! Criterion benches for the design choices DESIGN.md §5 calls out:
//!
//! * region algorithm vs Möbius-inversion tabulation for group-spatial
//!   tables (the fallback costs more — measure how much);
//! * signature-based vs greedy stream partitioning in the analytic
//!   evaluator (the register table evaluates it at every offset);
//! * the dependence graph with vs without input-dependence pairs (the
//!   processing-time half of the Table 1 claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ujam_core::{gss_table, streams::replacement_counts_at, UnrollSpace};
use ujam_dep::DepGraph;
use ujam_ir::NestBuilder;
use ujam_kernels::kernel;
use ujam_reuse::UgsSet;

/// jacobi's A set never touches the contiguous row with an unrolled loop:
/// the region algorithm applies.  A row-indexed variant forces the Möbius
/// fallback.
fn bench_gss_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("gss_table_construction");
    let region_nest = kernel("jacobi").expect("known kernel").nest();
    let chain_nest = NestBuilder::new("chain")
        .array("A", &[260, 260])
        .array("B", &[260, 260])
        .loop_("I", 1, 240) // I (contiguous dim) outer: unrolling chains
        .loop_("J", 1, 240)
        .stmt("B(I,J) = A(I,J) + A(I+3,J)")
        .build();
    for bound in [4u32, 8] {
        let region_set = UgsSet::partition(&region_nest)
            .into_iter()
            .find(|s| s.array() == "A")
            .expect("A set");
        let region_space = UnrollSpace::new(region_nest.depth(), &[0], bound);
        group.bench_with_input(
            BenchmarkId::new("region", bound),
            &bound,
            |b, _| b.iter(|| gss_table(&region_set, &region_space, 4)),
        );
        let chain_set = UgsSet::partition(&chain_nest)
            .into_iter()
            .find(|s| s.array() == "A")
            .expect("A set");
        let chain_space = UnrollSpace::new(chain_nest.depth(), &[0], bound);
        group.bench_with_input(
            BenchmarkId::new("mobius_fallback", bound),
            &bound,
            |b, _| b.iter(|| gss_table(&chain_set, &chain_space, 4)),
        );
    }
    group.finish();
}

fn bench_stream_partition(c: &mut Criterion) {
    // A wide body: many copies to partition.
    let nest = kernel("shal").expect("known kernel").nest();
    let space = UnrollSpace::new(2, &[0], 8);
    let mut group = c.benchmark_group("analytic_counts");
    for u in [0u32, 4, 8] {
        group.bench_with_input(BenchmarkId::new("signatures", u), &u, |b, &u| {
            b.iter(|| replacement_counts_at(&nest, &space, &[u]))
        });
    }
    group.finish();
}

fn bench_dep_graph_cost(c: &mut Criterion) {
    // The processing-time half of Table 1: building the graph is
    // quadratic in references, and read-read pairs dominate.
    let mut group = c.benchmark_group("dep_graph_build");
    for reads in [2usize, 6, 10] {
        let mut rhs = String::from("0.0");
        for k in 0..reads {
            rhs.push_str(&format!(" + A(I+{k}, J)"));
        }
        let nest = NestBuilder::new("reads")
            .array("A", &[260, 260])
            .array("B", &[260, 260])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt(&format!("B(I,J) = {rhs}"))
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(reads), &nest, |b, nest| {
            b.iter(|| DepGraph::build(nest))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_gss_construction,
    bench_stream_partition,
    bench_dep_graph_cost

}
criterion_main!(benches);
