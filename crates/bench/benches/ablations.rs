//! Micro-benchmarks for the design choices DESIGN.md §5 calls out:
//!
//! * region algorithm vs the exact per-offset `Sum` tabulation for
//!   group-spatial tables (the fallback costs more — measure how much);
//! * signature-based vs greedy stream partitioning in the analytic
//!   evaluator (the register table evaluates it at every offset);
//! * the dependence graph with vs without input-dependence pairs (the
//!   processing-time half of the Table 1 claim).
//!
//! Plain-`Instant` harness (`ujam_bench::timing`): the offline registry
//! rules out criterion.  Run with `cargo bench --bench ablations`.

use ujam_bench::timing::bench;
use ujam_core::{gss_table, streams::replacement_counts_at, UnrollSpace};
use ujam_dep::DepGraph;
use ujam_ir::NestBuilder;
use ujam_kernels::kernel;
use ujam_reuse::UgsSet;

fn main() {
    gss_construction();
    stream_partition();
    dep_graph_cost();
}

/// jacobi's A set never touches the contiguous row with an unrolled loop:
/// the region algorithm applies.  A row-indexed variant forces the exact
/// per-offset fallback.
fn gss_construction() {
    println!("gss_table_construction");
    let region_nest = kernel("jacobi").expect("known kernel").nest();
    let chain_nest = NestBuilder::new("chain")
        .array("A", &[260, 260])
        .array("B", &[260, 260])
        .loop_("I", 1, 240) // I (contiguous dim) outer: unrolling chains
        .loop_("J", 1, 240)
        .stmt("B(I,J) = A(I,J) + A(I+3,J)")
        .build();
    for bound in [4u32, 8] {
        let region_set = UgsSet::partition(&region_nest)
            .into_iter()
            .find(|s| s.array() == "A")
            .expect("A set");
        let region_space = UnrollSpace::new(region_nest.depth(), &[0], bound);
        bench(&format!("region/{bound}"), || {
            gss_table(&region_set, &region_space, 4)
        });
        let chain_set = UgsSet::partition(&chain_nest)
            .into_iter()
            .find(|s| s.array() == "A")
            .expect("A set");
        let chain_space = UnrollSpace::new(chain_nest.depth(), &[0], bound);
        bench(&format!("exact_fallback/{bound}"), || {
            gss_table(&chain_set, &chain_space, 4)
        });
    }
}

fn stream_partition() {
    // A wide body: many copies to partition.
    println!("analytic_counts");
    let nest = kernel("shal").expect("known kernel").nest();
    let space = UnrollSpace::new(2, &[0], 8);
    for u in [0u32, 4, 8] {
        bench(&format!("signatures/{u}"), || {
            replacement_counts_at(&nest, &space, &[u])
        });
    }
}

fn dep_graph_cost() {
    // The processing-time half of Table 1: building the graph is
    // quadratic in references, and read-read pairs dominate.
    println!("dep_graph_build");
    for reads in [2usize, 6, 10] {
        let mut rhs = String::from("0.0");
        for k in 0..reads {
            rhs.push_str(&format!(" + A(I+{k}, J)"));
        }
        let nest = NestBuilder::new("reads")
            .array("A", &[260, 260])
            .array("B", &[260, 260])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt(&format!("B(I,J) = {rhs}"))
            .build();
        bench(&format!("reads/{reads}"), || DepGraph::build(&nest));
    }
}
