//! Model-vs-measurement divergence over the Table 2 suite: for every
//! kernel, the analytic Eq. 1 cache-line prediction next to the
//! reuse-distance profiler's measured misses, and the unroll winner
//! under the analytic vs the profiled cost backend.
//!
//! This regenerates the EXPERIMENTS divergence table.  Eq. 1 counts
//! lines under an idealized fully-localized cache (no capacity, no
//! conflicts); the profiler replays the real address stream through
//! both a fully-associative LRU stack and the machine's set-associative
//! geometry, so the gap between the columns *is* the modelling error.
//!
//! Run with `cargo bench --bench profile_divergence [-- --quick]`; the
//! quick mode skips the profiled-backend search (the slow column) and
//! only prints the per-iteration miss columns.

use ujam_core::{
    optimize_costed, BalanceModel, CancelToken, CostModelKind, Optimized, SearchConfig,
};
use ujam_kernels::kernels;
use ujam_machine::MachineModel;
use ujam_metrics::MetricsHandle;
use ujam_reuse::{nest_cache_cost, Localized};
use ujam_sim::profile_nest;

fn optimize(
    nest: &ujam_ir::LoopNest,
    machine: &MachineModel,
    cost: CostModelKind,
) -> Result<Optimized, ujam_core::OptimizeError> {
    optimize_costed(
        nest,
        machine,
        BalanceModel::CacheAware,
        cost,
        ujam_trace::null_sink(),
        CancelToken::never(),
        MetricsHandle::disabled(),
        SearchConfig::default(),
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let machine = MachineModel::dec_alpha();
    println!(
        "divergence on {} ({}B cache, {}B lines, {}-way):",
        machine.name(),
        machine.cache_bytes(),
        machine.line_bytes(),
        machine.associativity()
    );
    println!(
        "{:10} {:>8} {:>8} {:>8} {:>12} {:>12}  flip",
        "kernel", "eq1/it", "fa/it", "sa/it", "analytic u", "profiled u"
    );
    let mut flips = 0;
    let mut ran = 0;
    for k in kernels() {
        let nest = k.nest();
        let report = profile_nest(&nest, &machine);
        let iters = nest.iterations().max(1) as f64;
        let eq1 = nest_cache_cost(
            &nest,
            &Localized::innermost(nest.depth()),
            machine.line_elems(),
        );
        let analytic = optimize(&nest, &machine, CostModelKind::Analytic);
        let profiled = (!quick).then(|| optimize(&nest, &machine, CostModelKind::Profiled));
        let (a_u, p_u, flip) = match (&analytic, &profiled) {
            (Ok(a), Some(Ok(p))) => {
                ran += 1;
                let flipped = a.unroll != p.unroll;
                flips += flipped as u32;
                (
                    format!("{:?}", a.unroll),
                    format!("{:?}", p.unroll),
                    if flipped { "FLIP" } else { "" },
                )
            }
            (Ok(a), _) => (format!("{:?}", a.unroll), "-".to_string(), ""),
            _ => ("-".to_string(), "-".to_string(), ""),
        };
        println!(
            "{:10} {:>8.3} {:>8.3} {:>8.3} {:>12} {:>12}  {}",
            k.name,
            eq1,
            report.fa_misses as f64 / iters,
            report.sa_misses as f64 / iters,
            a_u,
            p_u,
            flip
        );
    }
    if !quick {
        println!(
            "\n{flips} of {ran} optimizable kernels flip their winner under the profiled backend"
        );
    }
}
