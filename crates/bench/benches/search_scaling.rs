//! `search_scaling`: how the table-driven unroll search scales with the
//! size of the unroll space, comparing three query engines behind the
//! identical walk (`ujam_core::search_tables`):
//!
//! * `naive` — raw (de-finalized) tables: every `Sum` query
//!   re-enumerates the box below the offset, the seed behaviour —
//!   O(N) per query, O(N²) per search;
//! * `summed_area` — finalized summed-area tables: every `Sum` query
//!   is one dense lookup — O(1) per query, O(N) per search;
//! * `pruned` — finalized tables plus monotone up-set pruning of
//!   over-budget candidates.
//!
//! Emits the measurements as machine-readable JSON (default
//! `BENCH_search.json` at the repository root, override with
//! `-- --out PATH`) alongside the
//! human report; `-- --quick` shrinks the sweep for CI smoke runs,
//! where `examples/validate_search_bench.rs` checks the schema.  In the
//! full sweep the largest space must show the ≥10× naive→summed-area
//! speedup the O(N²)→O(N) rework promises, and all three engines must
//! agree on the winner everywhere — violations abort the run.
//!
//! Run with `cargo bench -p ujam-bench --bench search_scaling`.

use std::fmt::Write as _;
use ujam_bench::timing::bench;
use ujam_core::{search_tables, tables::CostTables, CostModel, UnrollSpace};
use ujam_kernels::kernel;
use ujam_machine::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            // Anchor the default at the repository root (where the file
            // is committed) regardless of the invoking directory.
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json").to_string()
        });

    let machine = MachineModel::dec_alpha();
    let model = CostModel::CacheAware;
    let nest = kernel("mmjki").expect("known kernel").nest();
    // Two unrolled loops: the space grows quadratically in the bound.
    let bounds: &[u32] = if quick { &[2, 4] } else { &[4, 8, 16, 24] };

    println!("search_scaling ({} on {})", nest.name(), machine.name());
    let mut rows = String::new();
    for (i, &bound) in bounds.iter().enumerate() {
        let space = UnrollSpace::new(nest.depth(), &[0, 1], bound);
        let sat = CostTables::build(&nest, &space, machine.line_elems());
        let raw = sat.definalized();

        let naive = bench(&format!("naive/{}", space.len()), || {
            search_tables(&nest, &machine, &space, &raw, model, false)
        });
        let summed = bench(&format!("summed_area/{}", space.len()), || {
            search_tables(&nest, &machine, &space, &sat, model, false)
        });
        let pruned = bench(&format!("pruned/{}", space.len()), || {
            search_tables(&nest, &machine, &space, &sat, model, true)
        });

        let (naive_win, _) = search_tables(&nest, &machine, &space, &raw, model, false);
        let (sat_win, _) = search_tables(&nest, &machine, &space, &sat, model, false);
        let (pruned_win, pruned_upset) = search_tables(&nest, &machine, &space, &sat, model, true);
        let agree = naive_win == sat_win && sat_win == pruned_win;
        assert!(
            agree,
            "engines disagree at bound {bound}: naive {naive_win:?}, \
             summed-area {sat_win:?}, pruned {pruned_win:?}"
        );
        let speedup = naive.median_ns / summed.median_ns.max(1e-9);
        println!(
            "  space {:>4}: naive/summed_area speedup {:.1}x, {} pruned",
            space.len(),
            speedup,
            pruned_upset
        );
        if !quick && i == bounds.len() - 1 {
            assert!(
                speedup >= 10.0,
                "largest space must show the >=10x summed-area speedup, got {speedup:.1}x"
            );
        }

        if i > 0 {
            rows.push(',');
        }
        let winner: Vec<String> = sat_win.iter().map(|x| x.to_string()).collect();
        let _ = write!(
            rows,
            "{{\"space\":{},\"bound\":{bound},\"naive_ns\":{:.1},\
             \"summed_area_ns\":{:.1},\"pruned_ns\":{:.1},\"pruned_upset\":{},\
             \"winner\":[{}],\"winners_agree\":{agree},\
             \"speedup_naive_over_summed\":{:.3}}}",
            space.len(),
            naive.median_ns,
            summed.median_ns,
            pruned.median_ns,
            pruned_upset,
            winner.join(","),
            speedup
        );
    }
    let doc = format!(
        "{{\"bench\":\"search_scaling\",\"kernel\":\"{}\",\"machine\":\"{}\",\
         \"model\":\"cache\",\"quick\":{quick},\"rows\":[{rows}]}}\n",
        nest.name(),
        machine.name()
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
