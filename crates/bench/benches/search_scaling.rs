//! `search_scaling`: how the table-driven unroll search scales with the
//! size of the unroll space, comparing three query engines behind the
//! identical walk (`ujam_core::search_tables`):
//!
//! * `naive` — raw (de-finalized) tables: every `Sum` query
//!   re-enumerates the box below the offset, the seed behaviour —
//!   O(N) per query, O(N²) per search;
//! * `summed_area` — finalized summed-area tables: every `Sum` query
//!   is one dense lookup — O(1) per query, O(N) per search;
//! * `pruned` — finalized tables plus monotone up-set pruning of
//!   over-budget candidates.
//!
//! Every arm is measured twice: once forced to the scalar kernels
//! (`*_scalar_ns`) and once at the runtime-detected SIMD level (the
//! plain column; identical to scalar when the `simd` feature is off or
//! the host lacks the instructions — the `simd_level` field records
//! which).  A `build` arm times `CostTables::build` itself, where the
//! axis scans dominate.  Winners must agree across engines *and*
//! levels, and in the full sweep the SIMD totals must not lose to the
//! scalar totals.
//!
//! Emits the measurements as machine-readable JSON (default
//! `BENCH_search.json` at the repository root, override with
//! `-- --out PATH`) alongside the
//! human report; `-- --quick` shrinks the sweep for CI smoke runs,
//! where `examples/validate_search_bench.rs` checks the schema.  In the
//! full sweep the largest space must show the ≥10× naive→summed-area
//! speedup the O(N²)→O(N) rework promises, and all three engines must
//! agree on the winner everywhere — violations abort the run.
//!
//! Run with `cargo bench -p ujam-bench --bench search_scaling`
//! (add `--features simd` for the vector arms to differ).

use std::fmt::Write as _;
use ujam_bench::timing::bench;
use ujam_core::simd::{active_level, with_forced_level, Level};
use ujam_core::{search_tables, tables::CostTables, BalanceModel, UnrollSpace};
use ujam_kernels::kernel;
use ujam_machine::MachineModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            // Anchor the default at the repository root (where the file
            // is committed) regardless of the invoking directory.
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json").to_string()
        });

    let machine = MachineModel::dec_alpha();
    let model = BalanceModel::CacheAware;
    let nest = kernel("mmjki").expect("known kernel").nest();
    let simd_level = active_level();
    // Σ median ns per level over the summed-area, pruned and build arms
    // (naive stays out: its box re-enumeration is deliberately the
    // seed's scalar behaviour).  The full sweep asserts on the totals —
    // per-row timer noise must not fail a run the aggregate clearly
    // wins.
    let mut scalar_total = 0.0f64;
    let mut simd_total = 0.0f64;
    // Two unrolled loops: the space grows quadratically in the bound.
    let bounds: &[u32] = if quick { &[2, 4] } else { &[4, 8, 16, 24] };

    println!(
        "search_scaling ({} on {}, simd level {})",
        nest.name(),
        machine.name(),
        simd_level.as_str()
    );
    let mut rows = String::new();
    for (i, &bound) in bounds.iter().enumerate() {
        let space = UnrollSpace::new(nest.depth(), &[0, 1], bound);
        let sat = CostTables::build(&nest, &space, machine.line_elems());
        let raw = sat.definalized();

        let build_scalar = with_forced_level(Level::Scalar, || {
            bench(&format!("build/scalar/{}", space.len()), || {
                CostTables::build(&nest, &space, machine.line_elems())
            })
        });
        let build = bench(&format!("build/{}", space.len()), || {
            CostTables::build(&nest, &space, machine.line_elems())
        });
        let naive = bench(&format!("naive/{}", space.len()), || {
            search_tables(&nest, &machine, &space, &raw, model, false, None)
        });
        let summed_scalar = with_forced_level(Level::Scalar, || {
            bench(&format!("summed_area/scalar/{}", space.len()), || {
                search_tables(&nest, &machine, &space, &sat, model, false, None)
            })
        });
        let summed = bench(&format!("summed_area/{}", space.len()), || {
            search_tables(&nest, &machine, &space, &sat, model, false, None)
        });
        let pruned_scalar = with_forced_level(Level::Scalar, || {
            bench(&format!("pruned/scalar/{}", space.len()), || {
                search_tables(&nest, &machine, &space, &sat, model, true, None)
            })
        });
        let pruned = bench(&format!("pruned/{}", space.len()), || {
            search_tables(&nest, &machine, &space, &sat, model, true, None)
        });
        scalar_total += build_scalar.median_ns + summed_scalar.median_ns + pruned_scalar.median_ns;
        simd_total += build.median_ns + summed.median_ns + pruned.median_ns;

        let (naive_win, _) = search_tables(&nest, &machine, &space, &raw, model, false, None);
        let (sat_win, _) = search_tables(&nest, &machine, &space, &sat, model, false, None);
        let (pruned_win, pruned_upset) =
            search_tables(&nest, &machine, &space, &sat, model, true, None);
        // The SIMD kernels may not move the decision: rebuild and
        // re-search everything forced scalar and demand the identical
        // winner (bitwise — these are integer vectors).
        let scalar_win = with_forced_level(Level::Scalar, || {
            let sat = CostTables::build(&nest, &space, machine.line_elems());
            search_tables(&nest, &machine, &space, &sat, model, false, None).0
        });
        let agree = naive_win == sat_win && sat_win == pruned_win && sat_win == scalar_win;
        assert!(
            agree,
            "engines disagree at bound {bound}: naive {naive_win:?}, \
             summed-area {sat_win:?}, pruned {pruned_win:?}, scalar {scalar_win:?}"
        );
        let speedup = naive.median_ns / summed.median_ns.max(1e-9);
        println!(
            "  space {:>4}: naive/summed_area speedup {:.1}x, \
             scalar/simd build {:.2}x search {:.2}x, {} pruned",
            space.len(),
            speedup,
            build_scalar.median_ns / build.median_ns.max(1e-9),
            summed_scalar.median_ns / summed.median_ns.max(1e-9),
            pruned_upset
        );
        if !quick && i == bounds.len() - 1 {
            // Was >=10x when the naive arm still allocated per query;
            // the flat rebuild sped the naive walk itself up ~1.7x
            // (same odometer, no heap traffic), so the *ratio* floor
            // drops even though both absolute times fell.
            assert!(
                speedup >= 7.0,
                "largest space must show the >=7x summed-area speedup, got {speedup:.1}x"
            );
        }

        if i > 0 {
            rows.push(',');
        }
        let winner: Vec<String> = sat_win.iter().map(|x| x.to_string()).collect();
        let _ = write!(
            rows,
            "{{\"space\":{},\"bound\":{bound},\"naive_ns\":{:.1},\
             \"summed_area_ns\":{:.1},\"summed_area_scalar_ns\":{:.1},\
             \"pruned_ns\":{:.1},\"pruned_scalar_ns\":{:.1},\
             \"build_ns\":{:.1},\"build_scalar_ns\":{:.1},\"pruned_upset\":{},\
             \"winner\":[{}],\"winners_agree\":{agree},\
             \"speedup_naive_over_summed\":{:.3}}}",
            space.len(),
            naive.median_ns,
            summed.median_ns,
            summed_scalar.median_ns,
            pruned.median_ns,
            pruned_scalar.median_ns,
            build.median_ns,
            build_scalar.median_ns,
            pruned_upset,
            winner.join(","),
            speedup
        );
    }
    // Depth-scaling arm: the same walk over a deep (4-loop) kernel with
    // k = 1, 2, 3 unrolled loops — the register-tiling mode.  The space
    // grows geometrically in k; pruned and exhaustive walks must agree
    // on the winner at every depth.
    let deep = ujam_kernels::deep_kernel("tensor4")
        .expect("known deep kernel")
        .nest();
    let deep_bound = if quick { 4 } else { 8 };
    println!("depth scaling ({} on {})", deep.name(), machine.name());
    let mut depth_rows = String::new();
    for k in 1..=3usize {
        let loops: Vec<usize> = (0..k).collect();
        let space = UnrollSpace::new(deep.depth(), &loops, deep_bound);
        let sat = CostTables::build(&deep, &space, machine.line_elems());

        let summed_scalar = with_forced_level(Level::Scalar, || {
            bench(
                &format!("depth{k}/summed_area/scalar/{}", space.len()),
                || search_tables(&deep, &machine, &space, &sat, model, false, None),
            )
        });
        let summed = bench(&format!("depth{k}/summed_area/{}", space.len()), || {
            search_tables(&deep, &machine, &space, &sat, model, false, None)
        });
        let pruned_scalar = with_forced_level(Level::Scalar, || {
            bench(&format!("depth{k}/pruned/scalar/{}", space.len()), || {
                search_tables(&deep, &machine, &space, &sat, model, true, None)
            })
        });
        let pruned_t = bench(&format!("depth{k}/pruned/{}", space.len()), || {
            search_tables(&deep, &machine, &space, &sat, model, true, None)
        });
        scalar_total += summed_scalar.median_ns + pruned_scalar.median_ns;
        simd_total += summed.median_ns + pruned_t.median_ns;

        let (sat_win, _) = search_tables(&deep, &machine, &space, &sat, model, false, None);
        let (pruned_win, pruned_upset) =
            search_tables(&deep, &machine, &space, &sat, model, true, None);
        let scalar_win = with_forced_level(Level::Scalar, || {
            let sat = CostTables::build(&deep, &space, machine.line_elems());
            search_tables(&deep, &machine, &space, &sat, model, false, None).0
        });
        let agree = sat_win == pruned_win && sat_win == scalar_win;
        assert!(
            agree,
            "engines disagree at depth {k}: summed-area {sat_win:?}, \
             pruned {pruned_win:?}, scalar {scalar_win:?}"
        );
        println!(
            "  k={k} space {:>4}: winner {:?}, {} pruned",
            space.len(),
            sat_win,
            pruned_upset
        );

        if k > 1 {
            depth_rows.push(',');
        }
        let winner: Vec<String> = sat_win.iter().map(|x| x.to_string()).collect();
        let _ = write!(
            depth_rows,
            "{{\"k\":{k},\"space\":{},\"summed_area_ns\":{:.1},\
             \"summed_area_scalar_ns\":{:.1},\"pruned_ns\":{:.1},\
             \"pruned_scalar_ns\":{:.1},\
             \"pruned_upset\":{},\"winner\":[{}],\"winners_agree\":{agree}}}",
            space.len(),
            summed.median_ns,
            summed_scalar.median_ns,
            pruned_t.median_ns,
            pruned_scalar.median_ns,
            pruned_upset,
            winner.join(",")
        );
    }

    println!(
        "totals (summed_area + pruned + build arms): scalar {:.0} ns, \
         {} {:.0} ns",
        scalar_total,
        simd_level.as_str(),
        simd_total
    );
    // The whole point of the vector kernels: with real SIMD active, the
    // full sweep may not be slower than the forced-scalar sweep.  Quick
    // mode skips the assert (tiny spaces, timer noise), same as the
    // 10x gate above.
    if !quick && simd_level != Level::Scalar {
        // 2% headroom absorbs timer noise on arms where the vector and
        // scalar kernels are equally memory-bound; a real regression
        // shows up far above it.
        assert!(
            simd_total <= scalar_total * 1.02,
            "SIMD arms lost to scalar overall: {simd_total:.0} ns vs {scalar_total:.0} ns"
        );
    }

    let doc = format!(
        "{{\"bench\":\"search_scaling\",\"kernel\":\"{}\",\"machine\":\"{}\",\
         \"model\":\"cache\",\"simd_level\":\"{}\",\"quick\":{quick},\"rows\":[{rows}],\
         \"depth_kernel\":\"{}\",\"depth_rows\":[{depth_rows}]}}\n",
        nest.name(),
        machine.name(),
        simd_level.as_str(),
        deep.name()
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
