//! Micro-benchmarks for the individual analysis passes: dependence-graph
//! construction (with and without the input dependences Table 1 counts),
//! UGS partitioning, table construction, and the simulator.
//!
//! Plain-`Instant` harness (`ujam_bench::timing`): the offline registry
//! rules out criterion.  Run with `cargo bench --bench analysis_passes`.

use ujam_bench::timing::bench;
use ujam_core::{tables::CostTables, UnrollSpace};
use ujam_dep::{DepGraph, DepKind};
use ujam_ir::transform::{scalar_replacement, unroll_and_jam};
use ujam_kernels::{corpus, kernel};
use ujam_machine::MachineModel;
use ujam_reuse::{nest_cache_cost, Localized, UgsSet};
use ujam_sim::simulate;

fn main() {
    let routines = corpus(1997, 64);
    bench("dep_graph/corpus64", || {
        let mut edges = 0usize;
        let mut input = 0usize;
        for nest in &routines {
            let g = DepGraph::build(nest);
            edges += g.len();
            input += g.count(DepKind::Input);
        }
        (edges, input)
    });

    let nest = kernel("jacobi").expect("known kernel").nest();
    bench("ugs_partition/jacobi", || UgsSet::partition(&nest));
    bench("equation1/jacobi", || {
        nest_cache_cost(&nest, &Localized::innermost(nest.depth()), 4)
    });
    let space = UnrollSpace::new(nest.depth(), &[0], 8);
    bench("cost_tables/jacobi", || CostTables::build(&nest, &space, 4));

    let nest = kernel("mmjki").expect("known kernel").nest();
    bench("unroll_and_jam/mmjki_3x3", || {
        unroll_and_jam(&nest, &[3, 3, 0]).expect("legal")
    });
    let unrolled = unroll_and_jam(&nest, &[3, 3, 0]).expect("legal");
    bench("scalar_replacement/mmjki_3x3", || {
        scalar_replacement(&unrolled)
    });

    let machine = MachineModel::dec_alpha();
    let nest = kernel("cond.7").expect("known kernel").nest();
    bench("simulate/cond7_alpha", || simulate(&nest, &machine));
}
