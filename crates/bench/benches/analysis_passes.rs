//! Criterion bench for the individual analysis passes: dependence-graph
//! construction (with and without the input dependences Table 1 counts),
//! UGS partitioning, table construction, and the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use ujam_core::{tables::CostTables, UnrollSpace};
use ujam_dep::{DepGraph, DepKind};
use ujam_ir::transform::{scalar_replacement, unroll_and_jam};
use ujam_kernels::{corpus, kernel};
use ujam_machine::MachineModel;
use ujam_reuse::{nest_cache_cost, Localized, UgsSet};
use ujam_sim::simulate;

fn bench_dependence_graph(c: &mut Criterion) {
    let routines = corpus(1997, 64);
    c.bench_function("dep_graph/corpus64", |b| {
        b.iter(|| {
            let mut edges = 0usize;
            let mut input = 0usize;
            for nest in &routines {
                let g = DepGraph::build(nest);
                edges += g.len();
                input += g.count(DepKind::Input);
            }
            (edges, input)
        })
    });
}

fn bench_reuse_analysis(c: &mut Criterion) {
    let nest = kernel("jacobi").expect("known kernel").nest();
    c.bench_function("ugs_partition/jacobi", |b| {
        b.iter(|| UgsSet::partition(&nest))
    });
    c.bench_function("equation1/jacobi", |b| {
        b.iter(|| nest_cache_cost(&nest, &Localized::innermost(nest.depth()), 4))
    });
    let space = UnrollSpace::new(nest.depth(), &[0], 8);
    c.bench_function("cost_tables/jacobi", |b| {
        b.iter(|| CostTables::build(&nest, &space, 4))
    });
}

fn bench_transforms(c: &mut Criterion) {
    let nest = kernel("mmjki").expect("known kernel").nest();
    c.bench_function("unroll_and_jam/mmjki_3x3", |b| {
        b.iter(|| unroll_and_jam(&nest, &[3, 3, 0]).expect("legal"))
    });
    let unrolled = unroll_and_jam(&nest, &[3, 3, 0]).expect("legal");
    c.bench_function("scalar_replacement/mmjki_3x3", |b| {
        b.iter(|| scalar_replacement(&unrolled))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let machine = MachineModel::dec_alpha();
    let nest = kernel("cond.7").expect("known kernel").nest();
    c.bench_function("simulate/cond7_alpha", |b| {
        b.iter(|| simulate(&nest, &machine))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_dependence_graph,
    bench_reuse_analysis,
    bench_transforms,
    bench_simulator

}
criterion_main!(benches);
