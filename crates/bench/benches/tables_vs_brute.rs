//! Micro-benchmark for the paper's core efficiency claim (§5.3): choosing
//! unroll amounts from precomputed tables versus materialising and
//! re-analysing every candidate body (Wolf, Maydan & Chen).
//!
//! Plain-`Instant` harness (`ujam_bench::timing`): the offline registry
//! rules out criterion.  Run with `cargo bench --bench tables_vs_brute`.

use ujam_bench::timing::bench;
use ujam_core::brute::optimize_brute;
use ujam_core::{optimize_in_space, UnrollSpace};
use ujam_kernels::kernel;
use ujam_machine::MachineModel;

/// Representative kernels: a reduction, a streaming stencil, and dense
/// linear algebra (2-loop unroll space).
const KERNELS: [(&str, &[usize]); 3] = [("dmxpy0", &[0]), ("jacobi", &[0]), ("mmjki", &[0, 1])];

fn main() {
    let machine = MachineModel::dec_alpha();
    println!("unroll_amount_selection");
    for (name, loops) in KERNELS {
        let nest = kernel(name).expect("known kernel").nest();
        for bound in [2u32, 4, 8] {
            let space = UnrollSpace::new(nest.depth(), loops, bound);
            bench(&format!("tables/{name}/{bound}"), || {
                optimize_in_space(&nest, &machine, &space).expect("valid kernel")
            });
            bench(&format!("brute/{name}/{bound}"), || {
                optimize_brute(&nest, &machine, &space).expect("valid kernel")
            });
        }
    }
}
