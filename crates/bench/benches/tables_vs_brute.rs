//! Criterion bench for the paper's core efficiency claim (§5.3): choosing
//! unroll amounts from precomputed tables versus materialising and
//! re-analysing every candidate body (Wolf, Maydan & Chen).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ujam_core::brute::optimize_brute;
use ujam_core::{optimize_in_space, UnrollSpace};
use ujam_kernels::kernel;
use ujam_machine::MachineModel;

/// Representative kernels: a reduction, a streaming stencil, and dense
/// linear algebra (2-loop unroll space).
const KERNELS: [(&str, &[usize]); 3] = [
    ("dmxpy0", &[0]),
    ("jacobi", &[0]),
    ("mmjki", &[0, 1]),
];

fn bench_optimizers(c: &mut Criterion) {
    let machine = MachineModel::dec_alpha();
    let mut group = c.benchmark_group("unroll_amount_selection");
    for (name, loops) in KERNELS {
        let nest = kernel(name).expect("known kernel").nest();
        for bound in [2u32, 4, 8] {
            let space = UnrollSpace::new(nest.depth(), loops, bound);
            group.bench_with_input(
                BenchmarkId::new(format!("tables/{name}"), bound),
                &space,
                |b, space| b.iter(|| optimize_in_space(&nest, &machine, space)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("brute/{name}"), bound),
                &space,
                |b, space| b.iter(|| optimize_brute(&nest, &machine, space)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_optimizers
}
criterion_main!(benches);
