//! `serve_latency`: end-to-end request latency through the serve
//! daemon, measured by the daemon's own metrics registry.
//!
//! A metrics-enabled [`Server`] (one worker, so every counter is
//! replay-deterministic) answers a fixed NDJSON workload fed through
//! the in-memory `run` entry point — the same path the stdin daemon
//! uses, minus the OS pipe.  The `serve.request_ns` histogram then *is*
//! the latency distribution: exact count and sum, log-scale buckets,
//! p50/p90/p99 upper bounds.
//!
//! Two further arms exercise the event-loop TCP front end:
//!
//! - **tcp**: N concurrent clients (64 full, 16 quick) each run a
//!   handshake plus a sequence of request/reply roundtrips against one
//!   daemon; the client-side roundtrip times give p50/p90/p99 *under
//!   load* — the tail a single in-memory replay cannot show.
//! - **shed**: a one-worker daemon with a tiny queue takes a pipelined
//!   burst; the reply stream must interleave `ok` and structured
//!   `overloaded` sheds in request order, and a post-load probe must
//!   still be bitwise-identical to the sequential batch optimizer.
//!
//! Emits `BENCH_serve.json` (override with `-- --out PATH`) holding the
//! workload parameters plus the full versioned metrics snapshot;
//! `examples/validate_metrics.rs` checks the schema and that the
//! counters match the workload's ground truth.  `-- --quick` shrinks
//! the workload for CI smoke runs.
//!
//! Run with `cargo bench -p ujam-bench --bench serve_latency`.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Cursor, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ujam_core::optimize_batch;
use ujam_kernels::kernels;
use ujam_machine::MachineModel;
use ujam_metrics::{MetricsHandle, MetricsRegistry};
use ujam_serve::{ReactorConfig, ServeConfig, Server, Transports, PROTOCOL_VERSION};
use ujam_trace::json::{self, Value};

/// The workload mix: repeated visits to three kernels, so the decision
/// cache sees both cold misses and steady-state hits.
const KERNELS: [&str; 3] = ["dmxpy0", "dmxpy1", "mmjki"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
        });
    let rounds: u64 = if quick { 3 } else { 40 };

    let registry = Arc::new(MetricsRegistry::new());
    let server = Server::with_metrics(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        ujam_trace::null_sink(),
        MetricsHandle::new(Arc::clone(&registry)),
    );

    let mut workload = String::new();
    for round in 0..rounds {
        for kernel in KERNELS {
            let _ = writeln!(
                workload,
                "{{\"id\":\"{round}-{kernel}\",\"kernel\":\"{kernel}\"}}"
            );
        }
    }
    let requests = rounds * KERNELS.len() as u64;

    let mut replies = Vec::new();
    server
        .run(Cursor::new(workload), &mut replies)
        .expect("in-memory serve cannot fail on I/O");
    let reply_text = String::from_utf8(replies).expect("replies are UTF-8");
    assert_eq!(
        reply_text.lines().count() as u64,
        requests,
        "one reply per request"
    );
    assert!(
        reply_text.lines().all(|l| l.contains("\"ok\":true")),
        "every workload request succeeds"
    );

    let snapshot = server.metrics_snapshot();
    // Ground truth: the registry saw exactly the workload.
    assert_eq!(snapshot.counter("serve.requests"), requests);
    assert_eq!(
        snapshot.counter("serve.cache.hits") + snapshot.counter("serve.cache.misses"),
        requests,
        "every request consulted the cache"
    );
    assert_eq!(
        snapshot.counter("serve.cache.misses"),
        KERNELS.len() as u64,
        "one cold miss per kernel with a single worker"
    );
    let latency = snapshot
        .histogram("serve.request_ns")
        .expect("latency histogram recorded");
    assert_eq!(latency.count, requests);

    println!(
        "serve_latency ({requests} requests over {} kernels, 1 worker)",
        KERNELS.len()
    );
    println!(
        "  latency: mean {:.1}us  p50 <= {:.1}us  p90 <= {:.1}us  p99 <= {:.1}us",
        latency.mean() / 1e3,
        latency.p50() as f64 / 1e3,
        latency.p90() as f64 / 1e3,
        latency.p99() as f64 / 1e3
    );
    println!(
        "  cache: {} hits / {} misses",
        snapshot.counter("serve.cache.hits"),
        snapshot.counter("serve.cache.misses")
    );

    let tcp = tcp_arm(quick);
    let shed = shed_arm();

    let kernels: Vec<String> = KERNELS.iter().map(|k| format!("\"{k}\"")).collect();
    let doc = format!(
        "{{\"bench\":\"serve_latency\",\"quick\":{quick},\"workers\":1,\
         \"requests\":{requests},\"kernels\":[{}],\"snapshot\":{},\
         \"tcp\":{tcp},\"shed\":{shed}}}\n",
        kernels.join(","),
        snapshot.render_json()
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}

fn hello_line() -> String {
    format!("{{\"id\":\"hello\",\"cmd\":\"hello\",\"version\":{PROTOCOL_VERSION}}}")
}

/// Connects, pipelining the handshake with `extra` (no trailing
/// newline needed), and returns the connection with its hello ack
/// already consumed.
fn greet(addr: SocketAddr, extra: &str) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect to bench daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut w = stream.try_clone().expect("clone stream");
    let payload = if extra.is_empty() {
        format!("{}\n", hello_line())
    } else {
        format!("{}\n{extra}\n", hello_line())
    };
    w.write_all(payload.as_bytes()).expect("send handshake");
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read hello ack");
    assert!(ack.contains("\"ok\":true"), "handshake failed: {ack}");
    (stream, reader)
}

/// Shuts a bench daemon down over its own protocol.
fn shutdown(addr: SocketAddr) {
    let (_stream, mut reader) = greet(addr, "{\"id\":\"bye\",\"cmd\":\"shutdown\"}");
    let mut rest = String::new();
    let _ = reader.read_to_string(&mut rest);
    assert!(
        rest.contains("\"shutdown\":true"),
        "shutdown not acked: {rest}"
    );
}

/// Upper bound of the q-quantile over a sorted sample.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The multi-connection arm: concurrent clients doing sequential
/// request/reply roundtrips, latency measured client-side (the number a
/// caller actually experiences, queueing and framing included).
fn tcp_arm(quick: bool) -> String {
    let clients: usize = if quick { 16 } else { 64 };
    let per_client: usize = if quick { 4 } else { 12 };

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = Server::with_metrics(
        ServeConfig {
            workers: 4,
            batch_max: 8,
            cache_capacity: 64,
            shards: 8,
            ..ServeConfig::default()
        },
        ujam_trace::null_sink(),
        MetricsHandle::disabled(),
    );

    let mut latencies: Vec<u64> = Vec::with_capacity(clients * per_client);
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| {
            server
                .run_reactor(
                    Transports {
                        tcp: Some(listener),
                        unix: None,
                    },
                    ReactorConfig::default(),
                )
                .expect("reactor runs until shutdown");
        });
        let samples: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let (mut stream, mut reader) = greet(addr, "");
                    let mut times = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let kernel = KERNELS[(c + r) % KERNELS.len()];
                        let line = format!("{{\"id\":\"{c}-{r}\",\"kernel\":\"{kernel}\"}}\n");
                        let start = Instant::now();
                        stream.write_all(line.as_bytes()).expect("send request");
                        let mut reply = String::new();
                        reader.read_line(&mut reply).expect("read reply");
                        times.push(start.elapsed().as_nanos() as u64);
                        assert!(reply.contains("\"ok\":true"), "client {c}: {reply}");
                    }
                    times
                })
            })
            .collect();
        for handle in samples {
            latencies.extend(handle.join().expect("client thread"));
        }
        shutdown(addr);
        daemon.join().expect("daemon thread exits cleanly");
    });

    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let mean = latencies.iter().sum::<u64>() as f64 / requests as f64;
    let (p50, p90, p99) = (
        quantile(&latencies, 0.50),
        quantile(&latencies, 0.90),
        quantile(&latencies, 0.99),
    );
    println!("tcp ({clients} concurrent clients x {per_client} roundtrips)");
    println!(
        "  roundtrip: mean {:.1}us  p50 {:.1}us  p90 {:.1}us  p99 {:.1}us",
        mean / 1e3,
        p50 as f64 / 1e3,
        p90 as f64 / 1e3,
        p99 as f64 / 1e3
    );
    format!(
        "{{\"clients\":{clients},\"per_client\":{per_client},\"requests\":{requests},\
         \"mean_ns\":{mean:.0},\"p50_ns\":{p50},\"p90_ns\":{p90},\"p99_ns\":{p99}}}"
    )
}

/// The admission-control arm: a pipelined burst against a one-worker,
/// cache-off daemon with a two-slot queue must shed structured
/// `overloaded` replies in request order — and afterwards the daemon
/// must still answer bitwise-identically to the batch optimizer.
fn shed_arm() -> String {
    const BURST: usize = 40;
    const MAX_QUEUE: usize = 2;
    const KERNEL: &str = "dmxpy1";

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = Server::with_metrics(
        ServeConfig {
            workers: 1,
            batch_max: 1,
            cache_capacity: 0,
            shards: 1,
            ..ServeConfig::default()
        },
        ujam_trace::null_sink(),
        MetricsHandle::disabled(),
    );

    let mut shed = 0u64;
    let mut served = 0u64;
    let mut bitwise = false;
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| {
            server
                .run_reactor(
                    Transports {
                        tcp: Some(listener),
                        unix: None,
                    },
                    ReactorConfig {
                        max_queue: MAX_QUEUE,
                        ..ReactorConfig::default()
                    },
                )
                .expect("reactor runs until shutdown");
        });

        let mut burst = String::new();
        for i in 0..BURST {
            let _ = writeln!(burst, "{{\"id\":\"burst-{i}\",\"kernel\":\"{KERNEL}\"}}");
        }
        let (_stream, mut reader) = greet(addr, burst.trim_end());
        for i in 0..BURST {
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("read burst reply");
            assert!(
                reply.contains(&format!("\"id\":\"burst-{i}\"")),
                "replies must arrive in request order: wanted burst-{i}, got {reply}"
            );
            if reply.contains("\"ok\":true") {
                served += 1;
            } else {
                assert!(
                    reply.contains("\"overloaded\"") && reply.contains("\"retry_ms\""),
                    "shed replies are structured: {reply}"
                );
                shed += 1;
            }
        }

        // Post-load probe: the shed path must not have corrupted the
        // optimizer — the decision is still bitwise the batch answer.
        let suite = kernels();
        let nests: Vec<_> = suite.iter().map(|k| k.nest()).collect();
        let index = suite
            .iter()
            .position(|k| k.name == KERNEL)
            .expect("burst kernel is in the suite");
        let plans = optimize_batch(&nests, &MachineModel::dec_alpha());
        let plan = plans[index].as_ref().expect("burst kernel optimizes");
        let (_probe, mut reader) = greet(
            addr,
            &format!("{{\"id\":\"probe\",\"kernel\":\"{KERNEL}\"}}"),
        );
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read probe reply");
        let doc = json::parse(reply.trim_end()).expect("probe reply is JSON");
        let balance = doc
            .get("balance")
            .and_then(Value::as_f64)
            .expect("probe balance");
        let original = doc
            .get("original_balance")
            .and_then(Value::as_f64)
            .expect("probe original balance");
        let unroll: Vec<u32> = doc
            .get("unroll")
            .and_then(Value::as_array)
            .expect("probe unroll")
            .iter()
            .map(|v| v.as_f64().expect("unroll component") as u32)
            .collect();
        bitwise = doc.get("ok") == Some(&Value::Bool(true))
            && unroll == plan.unroll
            && balance.to_bits() == plan.predicted.balance.to_bits()
            && original.to_bits() == plan.original.balance.to_bits();
        assert!(
            bitwise,
            "post-load probe diverged from optimize_batch: {reply}"
        );

        shutdown(addr);
        daemon.join().expect("daemon thread exits cleanly");
    });

    assert_eq!(shed + served, BURST as u64, "one reply per burst line");
    assert!(served >= 1, "the queue serves at least its own depth");
    assert!(
        shed >= 1,
        "a {BURST}-line burst against a {MAX_QUEUE}-slot queue must shed"
    );
    println!("shed (burst {BURST}, queue {MAX_QUEUE}): {served} served, {shed} shed");
    format!(
        "{{\"burst\":{BURST},\"max_queue\":{MAX_QUEUE},\"shed\":{shed},\
         \"served\":{served},\"post_load_bitwise\":{bitwise}}}"
    )
}
