//! `serve_latency`: end-to-end request latency through the serve
//! daemon, measured by the daemon's own metrics registry.
//!
//! A metrics-enabled [`Server`] (one worker, so every counter is
//! replay-deterministic) answers a fixed NDJSON workload fed through
//! the in-memory `run` entry point — the same path the stdin daemon
//! uses, minus the OS pipe.  The `serve.request_ns` histogram then *is*
//! the latency distribution: exact count and sum, log-scale buckets,
//! p50/p90/p99 upper bounds.
//!
//! Emits `BENCH_serve.json` (override with `-- --out PATH`) holding the
//! workload parameters plus the full versioned metrics snapshot;
//! `examples/validate_metrics.rs` checks the schema and that the
//! counters match the workload's ground truth.  `-- --quick` shrinks
//! the workload for CI smoke runs.
//!
//! Run with `cargo bench -p ujam-bench --bench serve_latency`.

use std::fmt::Write as _;
use std::io::Cursor;
use std::sync::Arc;
use ujam_metrics::{MetricsHandle, MetricsRegistry};
use ujam_serve::{ServeConfig, Server};

/// The workload mix: repeated visits to three kernels, so the decision
/// cache sees both cold misses and steady-state hits.
const KERNELS: [&str; 3] = ["dmxpy0", "dmxpy1", "mmjki"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
        });
    let rounds: u64 = if quick { 3 } else { 40 };

    let registry = Arc::new(MetricsRegistry::new());
    let server = Server::with_metrics(
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
        ujam_trace::null_sink(),
        MetricsHandle::new(Arc::clone(&registry)),
    );

    let mut workload = String::new();
    for round in 0..rounds {
        for kernel in KERNELS {
            let _ = writeln!(
                workload,
                "{{\"id\":\"{round}-{kernel}\",\"kernel\":\"{kernel}\"}}"
            );
        }
    }
    let requests = rounds * KERNELS.len() as u64;

    let mut replies = Vec::new();
    server
        .run(Cursor::new(workload), &mut replies)
        .expect("in-memory serve cannot fail on I/O");
    let reply_text = String::from_utf8(replies).expect("replies are UTF-8");
    assert_eq!(
        reply_text.lines().count() as u64,
        requests,
        "one reply per request"
    );
    assert!(
        reply_text.lines().all(|l| l.contains("\"ok\":true")),
        "every workload request succeeds"
    );

    let snapshot = server.metrics_snapshot();
    // Ground truth: the registry saw exactly the workload.
    assert_eq!(snapshot.counter("serve.requests"), requests);
    assert_eq!(
        snapshot.counter("serve.cache.hits") + snapshot.counter("serve.cache.misses"),
        requests,
        "every request consulted the cache"
    );
    assert_eq!(
        snapshot.counter("serve.cache.misses"),
        KERNELS.len() as u64,
        "one cold miss per kernel with a single worker"
    );
    let latency = snapshot
        .histogram("serve.request_ns")
        .expect("latency histogram recorded");
    assert_eq!(latency.count, requests);

    println!(
        "serve_latency ({requests} requests over {} kernels, 1 worker)",
        KERNELS.len()
    );
    println!(
        "  latency: mean {:.1}us  p50 <= {:.1}us  p90 <= {:.1}us  p99 <= {:.1}us",
        latency.mean() / 1e3,
        latency.p50() as f64 / 1e3,
        latency.p90() as f64 / 1e3,
        latency.p99() as f64 / 1e3
    );
    println!(
        "  cache: {} hits / {} misses",
        snapshot.counter("serve.cache.hits"),
        snapshot.counter("serve.cache.misses")
    );

    let kernels: Vec<String> = KERNELS.iter().map(|k| format!("\"{k}\"")).collect();
    let doc = format!(
        "{{\"bench\":\"serve_latency\",\"quick\":{quick},\"workers\":1,\
         \"requests\":{requests},\"kernels\":[{}],\"snapshot\":{}}}\n",
        kernels.join(","),
        snapshot.render_json()
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
