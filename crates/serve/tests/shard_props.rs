//! Property tests pinning the sharded cache to the single-shard cache.
//!
//! The contract (documented on `ujam_serve::shard`):
//!
//! 1. **Shard count 1 is bitwise the PR 4 [`DecisionCache`]** — an
//!    arbitrary operation stream produces identical get results, hit /
//!    miss / eviction counters, entry counts, and byte ledgers.
//! 2. **N shards behave as N independent `DecisionCache`s**, each fed
//!    the subsequence of keys hashing to it ([`shard_of`]) with
//!    `capacity.div_ceil(n)` entries — checked per shard.
//! 3. **In the no-eviction regime the shard count is unobservable**:
//!    any shard count yields identical aggregate hits, misses, entry
//!    counts, and byte totals.
//!
//! Streams are seeded (`ujam-rng`'s SplitMix64), so every run replays
//! the same operations.

use ujam_rng::Rng;
use ujam_serve::shard_of;
use ujam_serve::{Decision, DecisionCache, ShardedDecisionCache};

/// A synthetic decision whose owned buffers vary with `tag`, so the
/// byte ledger exercises different entry costs.
fn decision(tag: u64) -> Decision {
    Decision {
        nest: format!("nest-{tag}"),
        unroll: vec![(tag % 7) as u32, (tag % 3) as u32],
        balance: 0.25 + (tag % 10) as f64,
        original_balance: 1.5 + (tag % 4) as f64,
        registers: (tag % 30) as i64,
    }
}

/// One seeded op stream: a mix of gets and inserts over a key pool
/// small enough (relative to `capacity`) to force plenty of hits and,
/// when the pool exceeds capacity, evictions.
#[derive(Clone, Copy)]
struct Stream {
    seed: u64,
    ops: usize,
    keys: usize,
}

impl Stream {
    /// Replays the stream into `get` / `insert` callbacks.
    fn replay(self, mut get: impl FnMut(&str), mut insert: impl FnMut(String, Decision)) {
        let mut rng = Rng::new(self.seed);
        for _ in 0..self.ops {
            let k = rng.index(self.keys);
            let key = format!("decision-key-{k:04}");
            if rng.chance(0.5) {
                get(&key);
            } else {
                insert(key, decision(k as u64));
            }
        }
    }
}

/// The observable state of a cache after a stream, for equality checks.
#[derive(Debug, PartialEq)]
struct Observed {
    hits: u64,
    misses: u64,
    evictions: u64,
    len: usize,
    bytes: usize,
    /// The sequence of get outcomes (`Some(nest)` or `None`), in
    /// stream order — the strongest pin: not just the same counters,
    /// the same *answers*.
    gets: Vec<Option<String>>,
}

fn run_sharded(stream: Stream, capacity: usize, shards: usize) -> Observed {
    let cache = ShardedDecisionCache::new(capacity, shards);
    let mut gets = Vec::new();
    stream.replay(
        |key| gets.push(cache.get(key).1.map(|d| d.nest)),
        |key, d| {
            cache.insert(key, d);
        },
    );
    let stats = cache.stats();
    Observed {
        hits: stats.hits,
        misses: stats.misses,
        evictions: stats.evictions,
        len: cache.len(),
        bytes: cache.approx_bytes(),
        gets,
    }
}

fn run_unsharded(stream: Stream, capacity: usize) -> Observed {
    let cache = std::cell::RefCell::new(DecisionCache::new(capacity));
    let mut gets = Vec::new();
    stream.replay(
        |key| gets.push(cache.borrow_mut().get(key).map(|d| d.nest)),
        |key, d| cache.borrow_mut().insert(key, d),
    );
    let cache = cache.into_inner();
    let stats = cache.stats();
    Observed {
        hits: stats.hits,
        misses: stats.misses,
        evictions: stats.evictions,
        len: cache.len(),
        bytes: cache.approx_bytes(),
        gets,
    }
}

#[test]
fn one_shard_is_exactly_the_single_lock_cache() {
    // Capacity below the key-pool size, so LRU eviction is exercised
    // hard — the regime where a sharding bug would diverge.
    for seed in 0..24 {
        let stream = Stream {
            seed: 0xC0FFEE ^ seed,
            ops: 600,
            keys: 48,
        };
        for capacity in [0, 1, 7, 16, 64] {
            let sharded = run_sharded(stream, capacity, 1);
            let single = run_unsharded(stream, capacity);
            assert_eq!(
                sharded, single,
                "seed {seed} capacity {capacity}: shard count 1 must reproduce \
                 the PR 4 cache exactly"
            );
        }
    }
}

#[test]
fn n_shards_are_n_independent_caches_partitioned_by_content_hash() {
    for &shards in &[1usize, 2, 8] {
        for seed in 0..12 {
            let stream = Stream {
                seed: 0xBEEF ^ seed,
                ops: 500,
                keys: 40,
            };
            let capacity = 24; // forces eviction in at least some shards
            let cache = ShardedDecisionCache::new(capacity, shards);

            // The model: one DecisionCache per shard, each fed only the
            // keys that hash to it, each with the per-shard capacity.
            let per_shard = capacity.div_ceil(shards);
            let mut model: Vec<DecisionCache> =
                (0..shards).map(|_| DecisionCache::new(per_shard)).collect();

            // Replayed inline (not via `Stream::replay`) because both
            // arms need mutable access to the model caches.
            let mut rng = Rng::new(stream.seed);
            for _ in 0..stream.ops {
                let k = rng.index(stream.keys);
                let key = format!("decision-key-{k:04}");
                if rng.chance(0.5) {
                    let (shard, got) = cache.get(&key);
                    assert_eq!(shard, shard_of(&key, shards), "routing is the content hash");
                    let want = model[shard].get(&key);
                    assert_eq!(
                        got.map(|d| d.nest),
                        want.map(|d| d.nest),
                        "shards {shards} seed {seed}: shard {shard} answered differently"
                    );
                } else {
                    let d = decision(k as u64);
                    let shard = shard_of(&key, shards);
                    model[shard].insert(key.clone(), d.clone());
                    let outcome = cache.insert(key, d);
                    assert_eq!(outcome.shard, shard);
                }
            }

            for (i, m) in model.iter().enumerate() {
                assert_eq!(
                    cache.shard_stats(i),
                    m.stats(),
                    "shards {shards} seed {seed}: shard {i} counters diverged"
                );
            }
            let total_bytes: usize = model.iter().map(DecisionCache::approx_bytes).sum();
            assert_eq!(
                cache.approx_bytes(),
                total_bytes,
                "byte ledger is the shard sum"
            );
            let total_len: usize = model.iter().map(DecisionCache::len).sum();
            assert_eq!(cache.len(), total_len);
        }
    }
}

#[test]
fn shard_count_is_unobservable_without_eviction_pressure() {
    for seed in 0..12 {
        let stream = Stream {
            seed: 0xF00D ^ seed,
            ops: 400,
            keys: 32,
        };
        // Capacity comfortably above the key pool: nothing ever evicts,
        // so hit/miss accounting must be independent of the shard map.
        let reference = run_sharded(stream, 256, 1);
        assert_eq!(reference.evictions, 0, "regime sanity: no evictions");
        for shards in [2, 3, 8, 16] {
            let observed = run_sharded(stream, 256, shards);
            assert_eq!(
                observed, reference,
                "seed {seed}: {shards} shards changed observable behavior \
                 despite zero evictions"
            );
        }
    }
}

#[test]
fn per_shard_capacity_never_shrinks_the_aggregate() {
    // 10 entries over 4 shards → ceil(10/4) = 3 per shard = 12 total:
    // an N-shard cache never holds fewer entries than the capacity it
    // was asked for (it may hold slightly more).
    let cache = ShardedDecisionCache::new(10, 4);
    for i in 0..200 {
        cache.insert(format!("k{i}"), decision(i));
    }
    assert!(
        (10..=12).contains(&cache.len()),
        "aggregate capacity should be 10..=ceil-rounded 12, got {}",
        cache.len()
    );
}
