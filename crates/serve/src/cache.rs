//! A content-addressed, LRU-evicting decision cache.
//!
//! The key is the *content* of the problem, not the request: the nest's
//! canonical rendering plus the machine model and cost model
//! ([`decision_key`]).  Two clients submitting the same loop under
//! different names or ids therefore share one entry, and an inline
//! `source` request hits the entry a `kernel` request warmed.
//!
//! Only successful decisions are stored.  Errors — parse failures,
//! invalid nests, and especially [`DeadlineExceeded`] — are never
//! inserted, so a request that was cancelled halfway cannot poison the
//! cache for a later caller with a looser deadline.
//!
//! [`DeadlineExceeded`]: ujam_core::OptimizeError::DeadlineExceeded

use std::collections::{BTreeMap, HashMap};
use ujam_core::{BalanceModel, CostModelKind, Optimized, SearchConfig};
use ujam_ir::LoopNest;
use ujam_machine::MachineModel;

/// The cached part of a successful optimization: everything an
/// [`OkReply`](crate::proto::OkReply) needs except the request id.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// The nest's name.
    pub nest: String,
    /// The chosen unroll vector.
    pub unroll: Vec<u32>,
    /// Predicted balance at the chosen vector.
    pub balance: f64,
    /// Predicted balance of the untransformed nest.
    pub original_balance: f64,
    /// Registers consumed by scalar replacement.
    pub registers: i64,
}

impl Decision {
    /// Extracts the cacheable decision from an optimizer result.
    pub fn from_plan(plan: &Optimized) -> Decision {
        Decision {
            nest: plan.nest.name().to_string(),
            unroll: plan.unroll.clone(),
            balance: plan.predicted.balance,
            original_balance: plan.original.balance,
            registers: plan.predicted.registers,
        }
    }
}

/// Builds the content-addressed key for a problem instance.
///
/// The nest's `Display` rendering is canonical (loop order, bounds, and
/// statement text all appear), and the machine/model/cost-backend/
/// search-config `Debug` renderings pin every parameter that can change
/// the decision — including the register-tiling knobs
/// (`max_unroll_loops`, `code_budget`) and the cache-cost backend
/// (`cost_model`), since the same nest scored by a different backend
/// can pick a different vector.  Deadlines are deliberately *not* part
/// of the key: a decision is a pure function of the problem, so a cached
/// answer is valid however little time the next caller has.
pub fn decision_key(
    nest: &LoopNest,
    machine: &MachineModel,
    model: BalanceModel,
    cost: CostModelKind,
    config: SearchConfig,
) -> String {
    format!("{nest}\u{0}{machine:?}\u{0}{model:?}\u{0}{cost:?}\u{0}{config:?}")
}

/// Hit/miss/eviction counters, readable at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
}

/// A bounded LRU map from [`decision_key`] to [`Decision`].
///
/// Recency is a monotonic tick per entry; the eviction side keeps a
/// `BTreeMap<tick, key>` mirror so both lookup and eviction are
/// `O(log n)`.
#[derive(Debug)]
pub struct DecisionCache {
    capacity: usize,
    entries: HashMap<String, (u64, Decision)>,
    recency: BTreeMap<u64, String>,
    tick: u64,
    stats: CacheStats,
    bytes: usize,
}

/// The approximate heap footprint one entry adds: the key text, the
/// decision struct, and its owned buffers.  Maintained incrementally on
/// insert/evict so [`DecisionCache::approx_bytes`] is O(1).
fn entry_cost(key: &str, d: &Decision) -> usize {
    key.len()
        + std::mem::size_of::<Decision>()
        + d.nest.len()
        + d.unroll.len() * std::mem::size_of::<u32>()
}

impl DecisionCache {
    /// An empty cache holding at most `capacity` decisions.  A zero
    /// capacity disables storage (every lookup misses, inserts are
    /// dropped) without disabling the counters.
    pub fn new(capacity: usize) -> DecisionCache {
        DecisionCache {
            capacity,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            bytes: 0,
        }
    }

    /// Looks up a decision, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<Decision> {
        match self.entries.get_mut(key) {
            Some((tick, decision)) => {
                self.stats.hits += 1;
                self.recency.remove(tick);
                self.tick += 1;
                *tick = self.tick;
                self.recency.insert(self.tick, key.to_string());
                Some(decision.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a decision, evicting the least recently used entry when
    /// full.  Re-inserting an existing key refreshes it in place.
    pub fn insert(&mut self, key: String, decision: Decision) {
        if self.capacity == 0 {
            return;
        }
        if let Some((old_tick, old)) = self.entries.get(&key) {
            self.bytes = self.bytes.saturating_sub(entry_cost(&key, old));
            self.recency.remove(old_tick);
        } else if self.entries.len() >= self.capacity {
            if let Some((&oldest, _)) = self.recency.iter().next() {
                let victim = self.recency.remove(&oldest).expect("tick present");
                if let Some((_, evicted)) = self.entries.remove(&victim) {
                    self.bytes = self.bytes.saturating_sub(entry_cost(&victim, &evicted));
                }
                self.stats.evictions += 1;
            }
        }
        self.tick += 1;
        self.bytes += entry_cost(&key, &decision);
        self.recency.insert(self.tick, key.clone());
        self.entries.insert(key, (self.tick, decision));
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap bytes held by live entries (keys, decision
    /// structs, and their owned buffers), maintained incrementally.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(name: &str) -> Decision {
        Decision {
            nest: name.into(),
            unroll: vec![1, 0],
            balance: 0.5,
            original_balance: 1.0,
            registers: 4,
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = DecisionCache::new(4);
        assert_eq!(c.get("k"), None);
        c.insert("k".into(), d("k"));
        assert_eq!(c.get("k").expect("hit").nest, "k");
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut c = DecisionCache::new(2);
        c.insert("a".into(), d("a"));
        c.insert("b".into(), d("b"));
        assert!(c.get("a").is_some()); // refresh a → b is now LRU
        c.insert("c".into(), d("c"));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "b should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut c = DecisionCache::new(2);
        c.insert("a".into(), d("a"));
        c.insert("b".into(), d("b"));
        c.insert("a".into(), d("a2"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get("a").expect("a lives").nest, "a2");
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = DecisionCache::new(0);
        c.insert("a".into(), d("a"));
        assert!(c.is_empty());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.approx_bytes(), 0);
    }

    #[test]
    fn byte_accounting_tracks_inserts_replacements_and_evictions() {
        let mut c = DecisionCache::new(2);
        assert_eq!(c.approx_bytes(), 0);
        c.insert("a".into(), d("a"));
        let one = c.approx_bytes();
        assert!(one > 0);
        // Replacing a key swaps its cost, it doesn't accumulate.
        c.insert("a".into(), d("a"));
        assert_eq!(c.approx_bytes(), one);
        c.insert("b".into(), d("b"));
        let two = c.approx_bytes();
        assert!(two > one);
        // Eviction releases the victim's bytes: still two entries' worth.
        c.insert("c".into(), d("c"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.approx_bytes(), two);
        // Lookups never move the ledger.
        c.get("c");
        c.get("missing");
        assert_eq!(c.approx_bytes(), two);
    }

    #[test]
    fn keys_are_content_addressed() {
        use ujam_ir::NestBuilder;
        let build = |name: &str| {
            NestBuilder::new(name)
                .array("A", &[32])
                .array("B", &[32])
                .loop_("J", 1, 8)
                .loop_("I", 1, 8)
                .stmt("A(J) = A(J) + B(I)")
                .build()
        };
        let alpha = MachineModel::dec_alpha();
        let dflt = SearchConfig::default();
        let analytic = CostModelKind::Analytic;
        // Same content, same name → same key; different machine, model,
        // cost backend, or search config → different key.
        assert_eq!(
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                dflt
            ),
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                dflt
            )
        );
        assert_ne!(
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                dflt
            ),
            decision_key(&build("n"), &alpha, BalanceModel::AllHits, analytic, dflt)
        );
        assert_ne!(
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                dflt
            ),
            decision_key(
                &build("n"),
                &MachineModel::hp_parisc(),
                BalanceModel::CacheAware,
                analytic,
                dflt
            )
        );
        // The cache-cost backend is part of the problem content: an
        // analytic and a profiled decision must never share an entry.
        assert_ne!(
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                dflt
            ),
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                CostModelKind::Profiled,
                dflt
            )
        );
        // The register-tiling knobs are part of the problem content.
        assert_ne!(
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                dflt
            ),
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                SearchConfig {
                    max_unroll_loops: 3,
                    ..dflt
                }
            )
        );
        assert_ne!(
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                dflt
            ),
            decision_key(
                &build("n"),
                &alpha,
                BalanceModel::CacheAware,
                analytic,
                SearchConfig {
                    code_budget: Some(128),
                    ..dflt
                }
            )
        );
    }
}
