//! Incremental NDJSON framing for nonblocking transports.
//!
//! The reactor reads whatever bytes the kernel has and feeds them to a
//! [`LineDecoder`]; the decoder buffers until a `\n` completes a frame
//! and then yields it.  Framing never assumes anything about chunk
//! boundaries: a frame may arrive one byte at a time, a multi-byte
//! UTF-8 character may be split across reads, and both are reassembled
//! before decoding.
//!
//! Three malformations are handled *as protocol errors*, not
//! disconnects, mirroring the depth guard in `ujam-trace`'s JSON parser
//! (`MAX_DEPTH`): a line longer than [`MAX_LINE_BYTES`] is discarded as
//! it streams in (the buffer never grows past the limit) and reported
//! once as [`Frame::Oversized`] when its terminating newline finally
//! arrives; a completed line that is not valid UTF-8 is reported as
//! [`Frame::InvalidUtf8`]; and blank lines (including bare `\r\n`)
//! come out as [`Frame::Empty`] for the caller to skip.  A trailing
//! `\r` before the `\n` is stripped, so CRLF clients interoperate.

use std::collections::VecDeque;

/// The documented hard cap on one NDJSON frame, in bytes (1 MiB).
///
/// Nothing the protocol carries comes close: the largest inline Fortran
/// sources are a few KiB.  The cap is the slow-loris/memory guard — a
/// client streaming an endless line costs the server a bounded buffer,
/// and the line is answered with a structured `frame_too_long` error
/// instead of an allocation.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete, non-empty, UTF-8 line (newline and any trailing
    /// `\r` stripped).
    Line(String),
    /// A blank line (empty, or CRLF only).  Callers skip these.
    Empty,
    /// A line that exceeded the decoder's limit; `len` is the size of
    /// the discarded line in bytes (terminator excluded).
    Oversized {
        /// Bytes the oversized line held, newline excluded.
        len: usize,
    },
    /// A complete line that was not valid UTF-8.
    InvalidUtf8,
}

/// An incremental, bounded NDJSON line decoder.
///
/// Feed raw bytes with [`push`](LineDecoder::push) (any chunking), pull
/// completed frames with [`next_frame`](LineDecoder::next_frame).  On
/// EOF call [`finish`](LineDecoder::finish) so a final unterminated
/// line is still delivered — matching the stdin loop, where
/// `BufRead::lines` also yields a last line with no newline.
#[derive(Debug)]
pub struct LineDecoder {
    buf: Vec<u8>,
    ready: VecDeque<Frame>,
    max: usize,
    /// Inside an oversized line: bytes are counted and dropped until
    /// the newline, then one `Oversized` frame is emitted.
    discarding: bool,
    discarded: usize,
}

impl Default for LineDecoder {
    fn default() -> LineDecoder {
        LineDecoder::new()
    }
}

impl LineDecoder {
    /// A decoder with the protocol's [`MAX_LINE_BYTES`] limit.
    pub fn new() -> LineDecoder {
        LineDecoder::with_max(MAX_LINE_BYTES)
    }

    /// A decoder with a custom line limit (tests use small ones).
    pub fn with_max(max: usize) -> LineDecoder {
        LineDecoder {
            buf: Vec::new(),
            ready: VecDeque::new(),
            max: max.max(1),
            discarding: false,
            discarded: 0,
        }
    }

    /// Feeds a chunk of raw bytes, completing any number of frames.
    pub fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            if self.discarding {
                if b == b'\n' {
                    self.ready.push_back(Frame::Oversized {
                        len: self.discarded,
                    });
                    self.discarding = false;
                    self.discarded = 0;
                } else {
                    self.discarded += 1;
                }
                continue;
            }
            if b == b'\n' {
                let frame = Self::complete(&mut self.buf);
                self.ready.push_back(frame);
            } else {
                self.buf.push(b);
                if self.buf.len() > self.max {
                    self.discarding = true;
                    self.discarded = self.buf.len();
                    self.buf.clear();
                    self.buf.shrink_to(4096);
                }
            }
        }
    }

    /// Flushes a final unterminated line at EOF (no-op when the tail is
    /// empty).  An oversized tail is still reported as oversized.
    pub fn finish(&mut self) {
        if self.discarding {
            self.ready.push_back(Frame::Oversized {
                len: self.discarded,
            });
            self.discarding = false;
            self.discarded = 0;
        } else if !self.buf.is_empty() {
            let frame = Self::complete(&mut self.buf);
            self.ready.push_back(frame);
        }
    }

    /// The next completed frame, if any.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.ready.pop_front()
    }

    /// Whether an incomplete line is sitting in the buffer (a
    /// half-written frame a slow-loris client never terminates).
    pub fn has_partial(&self) -> bool {
        self.discarding || !self.buf.is_empty()
    }

    /// Whether everything fed in has been pulled out: no completed
    /// frames waiting and no partial tail.
    pub fn is_drained(&self) -> bool {
        self.ready.is_empty() && !self.has_partial()
    }

    fn complete(buf: &mut Vec<u8>) -> Frame {
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        let frame = if buf.is_empty() {
            Frame::Empty
        } else {
            match std::str::from_utf8(buf) {
                Ok(s) => Frame::Line(s.to_string()),
                Err(_) => Frame::InvalidUtf8,
            }
        };
        buf.clear();
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(d: &mut LineDecoder) -> Vec<Frame> {
        std::iter::from_fn(|| d.next_frame()).collect()
    }

    #[test]
    fn whole_lines_round_trip() {
        let mut d = LineDecoder::new();
        d.push(b"{\"id\":\"a\"}\n{\"id\":\"b\"}\n");
        assert_eq!(
            drain(&mut d),
            vec![
                Frame::Line("{\"id\":\"a\"}".into()),
                Frame::Line("{\"id\":\"b\"}".into()),
            ]
        );
        assert!(d.is_drained());
    }

    #[test]
    fn byte_at_a_time_reassembles_exactly() {
        let input = "{\"id\":\"r1\",\"kernel\":\"dmxpy1\"}\n{\"id\":\"r2\"}\n";
        let mut d = LineDecoder::new();
        let mut got = Vec::new();
        for &b in input.as_bytes() {
            d.push(std::slice::from_ref(&b));
            got.extend(drain(&mut d));
        }
        assert_eq!(
            got,
            vec![
                Frame::Line("{\"id\":\"r1\",\"kernel\":\"dmxpy1\"}".into()),
                Frame::Line("{\"id\":\"r2\"}".into()),
            ]
        );
    }

    #[test]
    fn split_utf8_across_pushes_decodes() {
        // '∑' is three bytes; split it across three pushes.
        let line = "{\"id\":\"∑\"}\n".as_bytes();
        let mut d = LineDecoder::new();
        let (a, rest) = line.split_at(8); // splits inside the multi-byte char
        let (b, c) = rest.split_at(1);
        d.push(a);
        assert!(d.next_frame().is_none(), "incomplete line yields nothing");
        d.push(b);
        d.push(c);
        assert_eq!(drain(&mut d), vec![Frame::Line("{\"id\":\"∑\"}".into())]);
    }

    #[test]
    fn crlf_is_stripped_and_blank_lines_are_empty_frames() {
        let mut d = LineDecoder::new();
        d.push(b"{\"id\":\"a\"}\r\n\r\n\n{\"id\":\"b\"}\r\n");
        assert_eq!(
            drain(&mut d),
            vec![
                Frame::Line("{\"id\":\"a\"}".into()),
                Frame::Empty,
                Frame::Empty,
                Frame::Line("{\"id\":\"b\"}".into()),
            ]
        );
    }

    #[test]
    fn oversized_lines_are_discarded_not_buffered() {
        let mut d = LineDecoder::with_max(8);
        d.push(b"0123456789abcdef");
        // Already over the limit: the buffer must not be growing.
        assert!(d.has_partial());
        d.push(b"more\n{\"ok\":1}\n");
        assert_eq!(
            drain(&mut d),
            vec![
                Frame::Oversized { len: 20 },
                Frame::Line("{\"ok\":1}".into()),
            ]
        );
        assert!(d.is_drained(), "the stream recovers after the bad frame");
    }

    #[test]
    fn oversized_exact_boundary_is_still_a_line() {
        let mut d = LineDecoder::with_max(4);
        d.push(b"abcd\nabcde\n");
        assert_eq!(
            drain(&mut d),
            vec![Frame::Line("abcd".into()), Frame::Oversized { len: 5 }]
        );
    }

    #[test]
    fn invalid_utf8_is_a_frame_not_a_poisoned_stream() {
        let mut d = LineDecoder::new();
        d.push(b"\xff\xfe\xfd\n{\"id\":\"ok\"}\n");
        assert_eq!(
            drain(&mut d),
            vec![Frame::InvalidUtf8, Frame::Line("{\"id\":\"ok\"}".into())]
        );
    }

    #[test]
    fn finish_flushes_an_unterminated_tail() {
        let mut d = LineDecoder::new();
        d.push(b"{\"id\":\"last\"}");
        assert!(d.next_frame().is_none());
        d.finish();
        assert_eq!(drain(&mut d), vec![Frame::Line("{\"id\":\"last\"}".into())]);
        assert!(d.is_drained());

        // An oversized tail reports as oversized at EOF too.
        let mut d = LineDecoder::with_max(4);
        d.push(b"abcdefgh");
        d.finish();
        assert_eq!(drain(&mut d), vec![Frame::Oversized { len: 8 }]);
    }

    #[test]
    fn carriage_return_only_stripped_at_line_end() {
        let mut d = LineDecoder::new();
        d.push(b"a\rb\r\n");
        assert_eq!(drain(&mut d), vec![Frame::Line("a\rb".into())]);
    }
}
