//! The in-daemon flight recorder: bounded rings of completed
//! [`RequestTimeline`]s.
//!
//! Two rings, both capped at `--flight-capacity`:
//!
//! * **recent** — the last N committed requests, whatever their fate;
//!   under steady traffic this is a rolling window of normal behaviour.
//! * **anomalies** — only requests with a structured [`Anomaly`]
//!   (slow, deadline, shed, frame error).  Kept separately so a burst
//!   of healthy traffic cannot churn the interesting entries out of
//!   the recorder before an operator looks.
//!
//! The hot path touches the recorder exactly twice per request: once
//! to allocate a trace id ([`FlightRecorder::begin`], one relaxed
//! atomic increment) and once to commit the finished timeline
//! ([`FlightRecorder::commit`], one short mutex push per ring).  All
//! edge stamping happens on a thread-local [`TimelineState`] with no
//! shared state at all.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use ujam_trace::{Anomaly, AnomalyReason, RequestTimeline};

/// The flight-snapshot wire-format version — bump when a field is
/// renamed, removed, or changes meaning (additions are fine).
pub const FLIGHT_VERSION: u32 = 1;

/// Default `--flight-capacity`: entries retained per ring.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Default `--slow-ms`: total latency above which a request is
/// classified slow.
pub const DEFAULT_SLOW_MS: u64 = 100;

/// A request timeline being built: the accepted-edge [`Instant`] plus
/// the record its stamps land in.  Owned by whichever thread currently
/// holds the request (reactor, then worker, then reactor again), so
/// stamping is a plain monotonic-clock read and a field store.
#[derive(Debug)]
pub struct TimelineState {
    base: Instant,
    /// The record under construction.
    pub timeline: RequestTimeline,
}

impl TimelineState {
    /// A fresh state whose accepted edge is `accepted` (the socket
    /// read that produced the frame).
    pub fn new(trace_id: u64, accepted: Instant) -> TimelineState {
        TimelineState {
            base: accepted,
            timeline: RequestTimeline::new(trace_id),
        }
    }

    /// The daemon-assigned trace id.
    pub fn trace_id(&self) -> u64 {
        self.timeline.trace_id
    }

    fn now(&self) -> u64 {
        self.base.elapsed().as_nanos() as u64
    }

    /// Stamps the frame-decoded edge.
    pub fn stamp_framed(&mut self) {
        self.timeline.framed = Some(self.now());
    }

    /// Stamps the queue-push edge.
    pub fn stamp_enqueued(&mut self) {
        self.timeline.enqueued = Some(self.now());
    }

    /// Stamps the worker-pickup edge.
    pub fn stamp_dequeued(&mut self) {
        self.timeline.dequeued = Some(self.now());
    }

    /// Stamps the cache-probe-start edge.
    pub fn stamp_cache_probe(&mut self) {
        self.timeline.cache_probe = Some(self.now());
    }

    /// Stamps the cache-probe-end edge.
    pub fn stamp_cache_done(&mut self) {
        self.timeline.cache_done = Some(self.now());
    }

    /// Stamps the analysis-start edge (cache miss only).
    pub fn stamp_analysis_start(&mut self) {
        self.timeline.analysis_start = Some(self.now());
    }

    /// Stamps the analysis-end edge.
    pub fn stamp_analysis_end(&mut self) {
        self.timeline.analysis_end = Some(self.now());
    }

    /// Stamps the reply-flushed edge.
    pub fn stamp_flushed(&mut self) {
        self.timeline.flushed = Some(self.now());
    }
}

/// Bounded rings of committed request timelines plus the trace-id
/// allocator.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    slow_ms: u64,
    next_id: AtomicU64,
    recent: Mutex<VecDeque<RequestTimeline>>,
    anomalies: Mutex<VecDeque<RequestTimeline>>,
}

impl FlightRecorder {
    /// A recorder retaining `capacity` entries per ring (clamped ≥ 1)
    /// and classifying requests over `slow_ms` total as slow.
    pub fn new(capacity: usize, slow_ms: u64) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            slow_ms,
            next_id: AtomicU64::new(1),
            recent: Mutex::new(VecDeque::new()),
            anomalies: Mutex::new(VecDeque::new()),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The slow-classification threshold in milliseconds.
    pub fn slow_ms(&self) -> u64 {
        self.slow_ms
    }

    /// Allocates the next trace id (ids start at 1) and opens a
    /// timeline whose accepted edge is `accepted`.
    pub fn begin(&self, accepted: Instant) -> TimelineState {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        TimelineState::new(id, accepted)
    }

    /// The next trace id that [`FlightRecorder::begin`] would hand out.
    pub fn next_trace_id(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Commits a finished timeline: classifies it slow when its total
    /// exceeds the threshold (unless an anomaly is already attached),
    /// then pushes it into the recent ring and — if anomalous — the
    /// anomaly ring, evicting oldest-first at capacity.
    pub fn commit(&self, mut timeline: RequestTimeline) {
        if timeline.anomaly.is_none()
            && timeline.total_ns() > self.slow_ms.saturating_mul(1_000_000)
        {
            let detail = match &timeline.unroll {
                Some(u) => {
                    let parts: Vec<String> = u.iter().map(u32::to_string).collect();
                    format!("slow_ms={} won=[{}]", self.slow_ms, parts.join(","))
                }
                None => format!("slow_ms={}", self.slow_ms),
            };
            timeline.anomaly = Some(Anomaly::new(AnomalyReason::Slow, detail));
        }
        let anomalous = timeline.anomaly.is_some();
        if anomalous {
            Self::push(
                &mut self.lock(&self.anomalies),
                timeline.clone(),
                self.capacity,
            );
        }
        Self::push(&mut self.lock(&self.recent), timeline, self.capacity);
    }

    fn push(ring: &mut VecDeque<RequestTimeline>, t: RequestTimeline, capacity: usize) {
        if ring.len() == capacity {
            ring.pop_front();
        }
        ring.push_back(t);
    }

    fn lock<'a>(
        &self,
        ring: &'a Mutex<VecDeque<RequestTimeline>>,
    ) -> MutexGuard<'a, VecDeque<RequestTimeline>> {
        ring.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The recent ring, oldest first.
    pub fn recent(&self) -> Vec<RequestTimeline> {
        self.lock(&self.recent).iter().cloned().collect()
    }

    /// The anomaly ring, oldest first.
    pub fn anomalies(&self) -> Vec<RequestTimeline> {
        self.lock(&self.anomalies).iter().cloned().collect()
    }

    /// Every retained timeline, anomalies deduplicated against the
    /// recent ring by trace id — the set `--trace-chrome` exports.
    pub fn all_timelines(&self) -> Vec<RequestTimeline> {
        let mut out = self.recent();
        let seen: std::collections::BTreeSet<u64> = out.iter().map(|t| t.trace_id).collect();
        for t in self.anomalies() {
            if !seen.contains(&t.trace_id) {
                out.push(t);
            }
        }
        out.sort_by_key(|t| t.trace_id);
        out
    }

    /// Renders the recorder as one strict-JSON object, byte-stable for
    /// equal contents:
    ///
    /// ```json
    /// {"version":1,"capacity":1024,"slow_ms":100,"next_trace_id":4,
    ///  "recent":[...],"anomalies":[...]}
    /// ```
    ///
    /// With `slow_only`, `recent` renders as an empty array (the shape
    /// stays identical) and only the anomaly ring is carried.
    pub fn snapshot_json(&self, slow_only: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"version\":{},\"capacity\":{},\"slow_ms\":{},\"next_trace_id\":{}",
            FLIGHT_VERSION,
            self.capacity,
            self.slow_ms,
            self.next_trace_id(),
        );
        out.push_str(",\"recent\":[");
        if !slow_only {
            for (i, t) in self.lock(&self.recent).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.render_json());
            }
        }
        out.push_str("],\"anomalies\":[");
        for (i, t) in self.lock(&self.anomalies).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.render_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_trace::json;

    fn committed(rec: &FlightRecorder, total_ns: u64) -> u64 {
        let mut state = rec.begin(Instant::now());
        state.timeline.id = format!("r{}", state.trace_id());
        state.timeline.outcome = "ok".to_string();
        state.timeline.framed = Some(0);
        state.timeline.enqueued = Some(0);
        state.timeline.dequeued = Some(total_ns / 2);
        state.timeline.flushed = Some(total_ns);
        let id = state.trace_id();
        rec.commit(state.timeline);
        id
    }

    #[test]
    fn trace_ids_start_at_one_and_increment() {
        let rec = FlightRecorder::new(4, 100);
        assert_eq!(rec.next_trace_id(), 1);
        assert_eq!(committed(&rec, 1_000), 1);
        assert_eq!(committed(&rec, 1_000), 2);
        assert_eq!(rec.next_trace_id(), 3);
    }

    #[test]
    fn recent_ring_evicts_oldest_at_capacity() {
        let rec = FlightRecorder::new(3, 100);
        for _ in 0..5 {
            committed(&rec, 1_000);
        }
        let ids: Vec<u64> = rec.recent().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![3, 4, 5], "oldest first, oldest evicted");
    }

    #[test]
    fn slow_requests_are_classified_and_survive_churn() {
        let rec = FlightRecorder::new(3, 1); // slow over 1ms
        let slow_id = committed(&rec, 50_000_000); // 50ms — slow
        for _ in 0..10 {
            committed(&rec, 1_000); // healthy churn
        }
        let recent_ids: Vec<u64> = rec.recent().iter().map(|t| t.trace_id).collect();
        assert!(
            !recent_ids.contains(&slow_id),
            "churned out of the recent ring"
        );
        let anomalies = rec.anomalies();
        assert_eq!(anomalies.len(), 1, "but retained in the anomaly ring");
        assert_eq!(anomalies[0].trace_id, slow_id);
        let anomaly = anomalies[0].anomaly.as_ref().expect("classified");
        assert_eq!(anomaly.reason, AnomalyReason::Slow);
        assert!(anomaly.detail.contains("slow_ms=1"));
    }

    #[test]
    fn preclassified_anomalies_keep_their_reason() {
        let rec = FlightRecorder::new(4, 100);
        let mut state = rec.begin(Instant::now());
        state.timeline.outcome = "error:deadline_exceeded".to_string();
        state.timeline.anomaly = Some(Anomaly::new(AnomalyReason::Deadline, "deadline_ms=1"));
        rec.commit(state.timeline);
        assert_eq!(
            rec.anomalies()[0].anomaly.as_ref().map(|a| a.reason),
            Some(AnomalyReason::Deadline)
        );
    }

    #[test]
    fn all_timelines_dedup_anomalies_still_in_recent() {
        let rec = FlightRecorder::new(8, 1);
        committed(&rec, 50_000_000); // slow, still in both rings
        committed(&rec, 1_000);
        assert_eq!(rec.recent().len(), 2);
        assert_eq!(rec.anomalies().len(), 1);
        assert_eq!(
            rec.all_timelines().len(),
            2,
            "no duplicate for the slow one"
        );
    }

    #[test]
    fn snapshot_json_is_pinned_and_slow_only_keeps_the_shape() {
        let build = || {
            let rec = FlightRecorder::new(2, 100);
            let mut a = rec.begin(Instant::now());
            a.timeline.id = "r1".to_string();
            a.timeline.nest = "mm".to_string();
            a.timeline.outcome = "ok".to_string();
            a.timeline.framed = Some(100);
            a.timeline.enqueued = Some(200);
            a.timeline.dequeued = Some(300);
            a.timeline.cache_probe = Some(310);
            a.timeline.cache_done = Some(320);
            a.timeline.flushed = Some(400);
            a.timeline.cached = true;
            rec.commit(a.timeline);
            let mut b = rec.begin(Instant::now());
            b.timeline.id = "r2".to_string();
            b.timeline.outcome = "shed".to_string();
            b.timeline.framed = Some(50);
            b.timeline.anomaly = Some(Anomaly::new(AnomalyReason::Shed, "queue full"));
            rec.commit(b.timeline);
            rec.snapshot_json(false)
        };
        let doc = build();
        assert_eq!(doc, build(), "equal contents render identically");
        let expected = concat!(
            "{\"version\":1,\"capacity\":2,\"slow_ms\":100,\"next_trace_id\":3,",
            "\"recent\":[",
            "{\"trace_id\":1,\"id\":\"r1\",\"nest\":\"mm\",\"outcome\":\"ok\",",
            "\"cached\":true,\"unroll\":null,",
            "\"edges\":{\"framed\":100,\"enqueued\":200,\"dequeued\":300,",
            "\"cache_probe\":310,\"cache_done\":320,\"analysis_start\":null,",
            "\"analysis_end\":null,\"flushed\":400},",
            "\"durations\":{\"queue_ns\":100,\"cache_ns\":10,\"analysis_ns\":null,",
            "\"flush_ns\":80,\"total_ns\":400},\"anomaly\":null},",
            "{\"trace_id\":2,\"id\":\"r2\",\"nest\":\"\",\"outcome\":\"shed\",",
            "\"cached\":false,\"unroll\":null,",
            "\"edges\":{\"framed\":50,\"enqueued\":null,\"dequeued\":null,",
            "\"cache_probe\":null,\"cache_done\":null,\"analysis_start\":null,",
            "\"analysis_end\":null,\"flushed\":null},",
            "\"durations\":{\"queue_ns\":null,\"cache_ns\":null,\"analysis_ns\":null,",
            "\"flush_ns\":null,\"total_ns\":50},",
            "\"anomaly\":{\"reason\":\"shed\",\"detail\":\"queue full\"}}",
            "],\"anomalies\":[",
            "{\"trace_id\":2,\"id\":\"r2\",\"nest\":\"\",\"outcome\":\"shed\",",
            "\"cached\":false,\"unroll\":null,",
            "\"edges\":{\"framed\":50,\"enqueued\":null,\"dequeued\":null,",
            "\"cache_probe\":null,\"cache_done\":null,\"analysis_start\":null,",
            "\"analysis_end\":null,\"flushed\":null},",
            "\"durations\":{\"queue_ns\":null,\"cache_ns\":null,\"analysis_ns\":null,",
            "\"flush_ns\":null,\"total_ns\":50},",
            "\"anomaly\":{\"reason\":\"shed\",\"detail\":\"queue full\"}}",
            "]}"
        );
        assert_eq!(doc, expected, "pinned wire bytes");
        json::parse(&doc).expect("strict JSON");
        // slow_only: recent empties, shape and anomalies unchanged.
        let rec = FlightRecorder::new(2, 100);
        committed(&rec, 1_000);
        let slim = rec.snapshot_json(true);
        assert!(slim.contains("\"recent\":[],\"anomalies\":[]"));
        json::parse(&slim).expect("strict JSON");
    }
}
