//! The event-loop front end: one `poll(2)` thread multiplexing every
//! connection, a fixed worker pool behind a bounded queue.
//!
//! The PR 4 daemon spawned a thread per connection, each running the
//! blocking [`Server::run`] loop.  That shape has two failure modes the
//! paper's serving story cannot afford: an idle or half-writing client
//! parks a whole thread forever (the blocking reader never times out),
//! and a burst of connections multiplies threads without bound.  The
//! reactor inverts it: **connections are state, not threads.**
//!
//! * One reactor thread owns every socket (nonblocking), a
//!   [`LineDecoder`] and an output buffer per connection, and a
//!   `poll(2)` set rebuilt each iteration ([`crate::sys`]).
//! * `cfg.workers` worker threads block on a bounded job queue; each
//!   job is one request line, answered by [`Server::handle_line`] — so
//!   replies are bitwise identical to the stdin/batch paths.
//! * Completed replies come back over a results list plus a self-wake
//!   pipe, and are re-sequenced per connection: a client that writes
//!   `n` lines reads exactly `n` replies **in order**, no matter how
//!   the pool interleaves them.
//!
//! Admission control is layered where each limit is cheapest to
//! enforce:
//!
//! * `max_conns` — a connection over the cap is answered with one
//!   `overloaded` line and closed at accept time;
//! * `max_queue` — a request arriving while the queue is full is shed
//!   inline with a structured `overloaded` reply carrying `retry_ms`
//!   (the connection stays up; well-behaved clients back off);
//! * `max_inflight` — a pipelining connection with that many requests
//!   already queued stops being polled for reads (backpressure through
//!   the kernel socket buffer, not memory growth);
//! * `read_timeout` — a connection that sends no byte for this long is
//!   reaped and counted under `serve.conn.timeout`; this is the
//!   slow-loris guard and the fix for the blocking reader's
//!   park-forever EOF edge.
//!
//! TCP connections must open with the versioned handshake
//! `{"id":"h","cmd":"hello","version":1}` before anything else; Unix
//! socket clients are grandfathered (the PR 4 protocol had no
//! handshake) but may greet too.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::net::TcpListener;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ujam_metrics::{Counter, Gauge};
use ujam_trace::{Anomaly, AnomalyReason};

use crate::flight::TimelineState;
use crate::frame::{Frame, LineDecoder, MAX_LINE_BYTES};
use crate::proto::{
    overloaded_reply, recover_id, AdminCmd, AdminRequest, ErrorKind, ErrorReply, Incoming, Reply,
    PROTOCOL_VERSION,
};
use crate::server::Server;

/// Tunables for the event loop, orthogonal to [`crate::ServeConfig`]
/// (which sizes the worker pool and the cache).
#[derive(Clone, Copy, Debug)]
pub struct ReactorConfig {
    /// Most jobs waiting in the worker queue before new requests are
    /// shed with `overloaded` replies.
    pub max_queue: usize,
    /// Most open connections; one over the cap is told `overloaded`
    /// and closed at accept.
    pub max_conns: usize,
    /// Most in-flight (queued, unanswered) requests per connection
    /// before the reactor stops reading from it.
    pub max_inflight: usize,
    /// A connection that sends no byte for this long is closed and
    /// counted under `serve.conn.timeout`.
    pub read_timeout: Duration,
    /// The backoff suggested in `overloaded` replies.
    pub retry_ms: u64,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            max_queue: 256,
            max_conns: 1024,
            max_inflight: 32,
            read_timeout: Duration::from_secs(30),
            retry_ms: 50,
        }
    }
}

/// The listeners a reactor serves; either or both.
#[derive(Debug, Default)]
pub struct Transports {
    /// A bound TCP listener (clients must handshake).
    pub tcp: Option<TcpListener>,
    /// A bound Unix-socket listener (handshake optional).
    pub unix: Option<UnixListener>,
}

/// One queued request: which connection, which slot in its reply
/// order, the raw line, and its lifecycle timeline (opened at accept,
/// carried along so the worker can stamp its edges without any shared
/// state).
struct Job {
    conn: u64,
    seq: u64,
    line: String,
    timeline: TimelineState,
}

/// The bounded worker queue.  `push` never blocks (admission control
/// sheds *before* pushing); `pop` blocks until a job or close.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut st = self.state.lock().expect("queue lock");
        st.jobs.push_back(job);
        drop(st);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// A finished reply on its way back to the reactor thread, with its
/// timeline (when the request is lifecycle-traced) still awaiting the
/// reply-flushed stamp.
struct Done {
    conn: u64,
    seq: u64,
    reply: String,
    timeline: Option<TimelineState>,
}

/// Either kind of accepted socket, unified behind `Read`/`Write`/fd.
enum ConnStream {
    Tcp(std::net::TcpStream),
    Unix(UnixStream),
}

impl ConnStream {
    fn fd(&self) -> RawFd {
        match self {
            ConnStream::Tcp(s) => s.as_raw_fd(),
            ConnStream::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.read(buf),
            ConnStream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.write(buf),
            ConnStream::Unix(s) => s.write(buf),
        }
    }
}

/// Per-connection reactor state: the framing buffer in, the reply
/// buffer out, and the bookkeeping that keeps replies ordered.
struct Conn {
    stream: ConnStream,
    decoder: LineDecoder,
    /// Bytes waiting to go out (already-ordered reply lines).
    out: Vec<u8>,
    out_pos: usize,
    /// Next sequence number to assign to an arriving frame.
    next_seq: u64,
    /// Next sequence number the client is owed.
    next_emit: u64,
    /// Replies that finished out of order, waiting for their turn,
    /// each with its timeline (if the request was lifecycle-traced).
    done: BTreeMap<u64, (String, Option<TimelineState>)>,
    /// Timelines whose reply bytes sit in `out`: they get their
    /// reply-flushed stamp when the buffer fully drains.
    awaiting_flush: Vec<TimelineState>,
    /// Frames handed to the worker queue and not yet answered.
    inflight: usize,
    /// TCP connections must greet before anything else.
    needs_hello: bool,
    greeted: bool,
    read_closed: bool,
    last_read: Instant,
    /// Set after a fatal protocol error: flush what's owed, then close.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: ConnStream, needs_hello: bool, now: Instant) -> Conn {
        Conn {
            stream,
            decoder: LineDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_emit: 0,
            done: BTreeMap::new(),
            awaiting_flush: Vec::new(),
            inflight: 0,
            needs_hello,
            greeted: false,
            read_closed: false,
            last_read: now,
            close_after_flush: false,
        }
    }

    /// Records `reply` for slot `seq` and moves every now-contiguous
    /// reply into the output buffer (parking its timeline until the
    /// buffer drains).
    fn complete(&mut self, seq: u64, reply: String, timeline: Option<TimelineState>) {
        self.done.insert(seq, (reply, timeline));
        while let Some((reply, timeline)) = self.done.remove(&self.next_emit) {
            self.out.extend_from_slice(reply.as_bytes());
            self.out.push(b'\n');
            if let Some(t) = timeline {
                self.awaiting_flush.push(t);
            }
            self.next_emit += 1;
        }
    }

    fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Everything owed has been answered and flushed.
    fn is_settled(&self) -> bool {
        self.inflight == 0 && self.done.is_empty() && !self.has_pending_out()
    }

    /// Writes as much of the output buffer as the socket accepts.
    /// `Ok(false)` means the peer is gone.
    fn flush(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Ok(false),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => return Ok(false),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(true)
    }
}

/// Reactor-level metrics, resolved once (all `None` when the server
/// has no registry).
struct ReactorMetrics {
    accepted: Arc<Counter>,
    open: Arc<Gauge>,
    timeouts: Arc<Counter>,
    shed: Arc<Counter>,
    oversized: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_peak: Arc<Gauge>,
}

impl ReactorMetrics {
    fn resolve(server: &Server<'_>) -> Option<ReactorMetrics> {
        let handle = server.metrics_handle();
        let reg = handle.registry()?;
        Some(ReactorMetrics {
            accepted: reg.counter("serve.conn.accepted"),
            open: reg.gauge("serve.conn.open"),
            timeouts: reg.counter("serve.conn.timeout"),
            shed: reg.counter("serve.shed"),
            oversized: reg.counter("serve.frame.oversized"),
            queue_depth: reg.gauge("serve.queue_depth"),
            queue_peak: reg.gauge("serve.queue_depth.peak"),
        })
    }
}

/// Stamps and commits every timeline whose reply bytes have fully
/// reached the socket.  A no-op while output is still pending — the
/// flushed edge means the kernel accepted the last byte of the reply.
fn commit_flushed(conn: &mut Conn, server: &Server<'_>) {
    if conn.has_pending_out() {
        return;
    }
    for mut t in conn.awaiting_flush.drain(..) {
        t.stamp_flushed();
        server.flight().commit(t.timeline);
    }
}

fn protocol_error(id: Option<&str>, kind: ErrorKind, message: String) -> String {
    Reply::Error(ErrorReply {
        id: id.map(str::to_owned),
        kind,
        message,
        line: None,
        retry_ms: None,
        trace_id: None,
    })
    .render()
}

/// What [`Reactor::pump`] decided to do with one frame.
enum Routed {
    /// Answered inline; reply already completed on the connection.
    Inline,
    /// Queued to the worker pool.  Boxed: a [`Job`] carries a full
    /// [`TimelineState`], hundreds of bytes wider than the other arms.
    Queued(Box<Job>),
    /// Answered inline *and* the daemon should begin shutting down.
    InlineShutdown,
}

/// The event loop.  Borrows the server; worker threads are scoped
/// inside [`run`](Reactor::run), so the reactor cannot outlive it.
pub(crate) struct Reactor<'a, 's> {
    server: &'a Server<'s>,
    rcfg: ReactorConfig,
    metrics: Option<ReactorMetrics>,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    /// Jobs pushed and not yet drained from the results list —
    /// the admission-control queue depth.
    depth: usize,
    stopping: bool,
    stop_deadline: Option<Instant>,
}

impl<'a, 's> Reactor<'a, 's> {
    pub(crate) fn new(server: &'a Server<'s>, rcfg: ReactorConfig) -> Reactor<'a, 's> {
        Reactor {
            server,
            rcfg,
            metrics: ReactorMetrics::resolve(server),
            conns: HashMap::new(),
            next_conn_id: 0,
            depth: 0,
            stopping: false,
            stop_deadline: None,
        }
    }

    /// Serves until a `{"cmd":"shutdown"}` line (or a listener error).
    pub(crate) fn run(mut self, transports: Transports) -> std::io::Result<()> {
        let queue = JobQueue::new();
        let results: Mutex<Vec<Done>> = Mutex::new(Vec::new());
        let (wake_tx, mut wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        if let Some(l) = &transports.tcp {
            l.set_nonblocking(true)?;
        }
        if let Some(l) = &transports.unix {
            l.set_nonblocking(true)?;
        }
        let workers = self.server.config().workers.max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let results = &results;
                let server = self.server;
                let wake = &wake_tx;
                scope.spawn(move || {
                    while let Some(mut job) = queue.pop() {
                        job.timeline.stamp_dequeued();
                        let reply = server.handle_line_timed(&job.line, &mut job.timeline);
                        results.lock().expect("results lock").push(Done {
                            conn: job.conn,
                            seq: job.seq,
                            reply,
                            timeline: Some(job.timeline),
                        });
                        // A full pipe already guarantees a wake-up.
                        let mut w: &UnixStream = wake;
                        let _ = w.write(&[1u8]);
                    }
                });
            }

            let run = self.event_loop(&transports, &queue, &results, &mut wake_rx);
            queue.close();
            run
        })
    }

    fn event_loop(
        &mut self,
        transports: &Transports,
        queue: &JobQueue,
        results: &Mutex<Vec<Done>>,
        wake_rx: &mut UnixStream,
    ) -> std::io::Result<()> {
        use crate::sys::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};

        let tick_ms = (self.rcfg.read_timeout.as_millis() / 2)
            .clamp(10, 100)
            .try_into()
            .unwrap_or(100i32);
        let series_period = Duration::from_secs(1);
        let mut next_series = Instant::now() + series_period;

        loop {
            // 1. Build this iteration's poll set.  Slot 0 is the wake
            //    pipe; listeners follow (only while accepting); then one
            //    slot per connection with interest derived from state.
            let mut fds = vec![PollFd::new(wake_rx.as_raw_fd(), POLLIN)];
            let mut tcp_slot = None;
            let mut unix_slot = None;
            if !self.stopping {
                if let Some(l) = &transports.tcp {
                    tcp_slot = Some(fds.len());
                    fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                }
                if let Some(l) = &transports.unix {
                    unix_slot = Some(fds.len());
                    fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
                }
            }
            let mut conn_slots: Vec<(usize, u64)> = Vec::with_capacity(self.conns.len());
            for (&id, conn) in &self.conns {
                let mut events = 0;
                let paused = self.stopping || conn.close_after_flush;
                if !conn.read_closed && conn.inflight < self.rcfg.max_inflight && !paused {
                    events |= POLLIN;
                }
                if conn.has_pending_out() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    conn_slots.push((fds.len(), id));
                    fds.push(PollFd::new(conn.stream.fd(), events));
                }
            }

            poll_fds(&mut fds, tick_ms)?;
            let now = Instant::now();

            // Close one time-series window roughly every second (the
            // poll tick is ≤ 100 ms, so the cadence holds even when the
            // daemon is idle).  No-op without a metrics registry.
            if now >= next_series {
                self.server.collect_series_window();
                next_series = now + series_period;
            }

            // 2. Drain the wake pipe and the results list; completed
            //    replies free queue slots and may unblock reads.
            if fds[0].revents != 0 {
                let mut sink = [0u8; 256];
                while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            }
            let done: Vec<Done> = std::mem::take(&mut *results.lock().expect("results lock"));
            for d in done {
                self.depth = self.depth.saturating_sub(1);
                match self.conns.get_mut(&d.conn) {
                    Some(conn) => {
                        conn.inflight = conn.inflight.saturating_sub(1);
                        conn.complete(d.seq, d.reply, d.timeline);
                    }
                    // A reply for a connection that died mid-request is
                    // dropped (the slot it held is already freed), but
                    // its timeline is still flight history — committed
                    // without a flushed stamp.
                    None => {
                        if let Some(t) = d.timeline {
                            self.server.flight().commit(t.timeline);
                        }
                    }
                }
            }
            if let Some(m) = &self.metrics {
                m.queue_depth.set(self.depth as i64);
            }

            // 3. Accept.
            if let (Some(slot), Some(l)) = (tcp_slot, &transports.tcp) {
                if fds[slot].revents != 0 {
                    self.accept_tcp(l, now);
                }
            }
            if let (Some(slot), Some(l)) = (unix_slot, &transports.unix) {
                if fds[slot].revents != 0 {
                    self.accept_unix(l, now);
                }
            }

            // 4. Read / pump / flush every connection that polled ready.
            for &(slot, id) in &conn_slots {
                let revents = fds[slot].revents;
                if revents == 0 {
                    continue;
                }
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                let mut dead = revents & POLLNVAL != 0;
                if !dead && revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                    dead = !Self::read_into(conn, now);
                }
                if !dead {
                    self.pump(id, queue);
                    if let Some(conn) = self.conns.get_mut(&id) {
                        dead = !conn.flush().unwrap_or(false);
                        if !dead {
                            commit_flushed(conn, self.server);
                        }
                    }
                }
                if dead {
                    self.drop_conn(id);
                }
            }

            // 5. Pump connections whose reads are paused but whose
            //    queue slots just freed, then flush everyone with
            //    pending output (completions arrive via the wake pipe,
            //    not via socket readiness).
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                self.pump(id, queue);
                let Some(conn) = self.conns.get_mut(&id) else {
                    continue;
                };
                if conn.has_pending_out() && !conn.flush().unwrap_or(false) {
                    self.drop_conn(id);
                } else if let Some(conn) = self.conns.get_mut(&id) {
                    commit_flushed(conn, self.server);
                }
            }

            // 6. Reap: settled EOF/erroring connections, protocol
            //    offenders once flushed, and idle timeouts.
            self.reap(now);

            // 7. Shutdown: stop accepting, let in-flight work drain,
            //    give flushes a grace period, then leave.
            if self.server.shutdown_requested() && !self.stopping {
                self.stopping = true;
                self.stop_deadline = Some(now + Duration::from_millis(500));
            }
            if self.stopping {
                let drained = self.depth == 0 && self.conns.values().all(Conn::is_settled);
                let expired = self.stop_deadline.is_some_and(|d| now >= d);
                if drained || expired {
                    return Ok(());
                }
            }
        }
    }

    fn accept_tcp(&mut self, listener: &TcpListener, now: Instant) {
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.admit(ConnStream::Tcp(stream), true, now);
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn accept_unix(&mut self, listener: &UnixListener, now: Instant) {
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.admit(ConnStream::Unix(stream), false, now);
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, mut stream: ConnStream, needs_hello: bool, now: Instant) {
        if self.conns.len() >= self.rcfg.max_conns {
            // Over the connection cap: one structured line, then close.
            // The socket buffer of a fresh connection always has room
            // for it, so a best-effort nonblocking write suffices.
            let mut line = overloaded_reply(None, self.rcfg.retry_ms).render();
            line.push('\n');
            let _ = stream.write(line.as_bytes());
            self.count_shed(1);
            return;
        }
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        self.conns.insert(id, Conn::new(stream, needs_hello, now));
        self.server.count("serve.conn.accepted", 1);
        if let Some(m) = &self.metrics {
            m.accepted.inc();
            m.open.set(self.conns.len() as i64);
        }
    }

    /// Reads everything the kernel has for `conn`.  Returns `false`
    /// when the connection is dead (read error).
    fn read_into(conn: &mut Conn, now: Instant) -> bool {
        let mut buf = [0u8; 4096];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    conn.decoder.finish();
                    return true;
                }
                Ok(n) => {
                    conn.last_read = now;
                    conn.decoder.push(&buf[..n]);
                }
                Err(e) if e.kind() == IoErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == IoErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Processes decoded frames for one connection until its in-flight
    /// cap or an empty decoder stops it.
    fn pump(&mut self, id: u64, queue: &JobQueue) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.close_after_flush || conn.inflight >= self.rcfg.max_inflight {
                return;
            }
            let Some(frame) = conn.decoder.next_frame() else {
                return;
            };
            let mut shed = 0;
            let mut oversized = 0;
            match self.route(id, frame, &mut shed, &mut oversized) {
                Routed::Inline => {}
                Routed::Queued(job) => {
                    self.depth += 1;
                    if let Some(m) = &self.metrics {
                        m.queue_depth.set(self.depth as i64);
                        m.queue_peak.set_max(self.depth as i64);
                    }
                    queue.push(*job);
                }
                Routed::InlineShutdown => {
                    self.stopping = true;
                    self.stop_deadline = Some(Instant::now() + Duration::from_millis(500));
                }
            }
            self.count_shed(shed);
            if oversized > 0 {
                self.server.count("serve.frame.oversized", oversized);
                if let Some(m) = &self.metrics {
                    m.oversized.add(oversized);
                }
            }
        }
    }

    /// Decides one frame's fate: an inline reply (handshake, admin,
    /// framing errors, shed) or a queued job.
    fn route(&mut self, id: u64, frame: Frame, shed: &mut u64, oversized: &mut u64) -> Routed {
        let rcfg = self.rcfg;
        let at_capacity = self.depth >= rcfg.max_queue;
        let conn = self.conns.get_mut(&id).expect("routed conn exists");
        // Blank lines get no reply and no reply slot, matching the
        // stdin loop.
        if frame == Frame::Empty {
            return Routed::Inline;
        }
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let line = match frame {
            Frame::Empty => unreachable!("handled above"),
            Frame::Oversized { len } => {
                *oversized += 1;
                let message =
                    format!("line of {len} bytes exceeds the {MAX_LINE_BYTES}-byte frame limit");
                let mut state = self.server.flight().begin(conn.last_read);
                state.stamp_framed();
                state.timeline.outcome = "error:frame_too_long".to_string();
                state.timeline.anomaly =
                    Some(Anomaly::new(AnomalyReason::FrameError, message.clone()));
                let reply = protocol_error(None, ErrorKind::FrameTooLong, message);
                conn.complete(seq, reply, Some(state));
                return Routed::Inline;
            }
            Frame::InvalidUtf8 => {
                let message = "line is not valid UTF-8".to_string();
                let mut state = self.server.flight().begin(conn.last_read);
                state.stamp_framed();
                state.timeline.outcome = "error:bad_request".to_string();
                state.timeline.anomaly =
                    Some(Anomaly::new(AnomalyReason::FrameError, message.clone()));
                let reply = protocol_error(None, ErrorKind::BadRequest, message);
                conn.complete(seq, reply, Some(state));
                return Routed::Inline;
            }
            Frame::Line(line) => line,
        };

        // The handshake gate: a TCP connection's first line must be a
        // well-formed hello at the daemon's protocol version.
        if conn.needs_hello && !conn.greeted {
            match Incoming::parse(&line) {
                Ok(Incoming::Admin(AdminRequest {
                    cmd: AdminCmd::Hello { version },
                    ..
                })) => {
                    let reply = self.server.handle_line(&line);
                    let conn = self.conns.get_mut(&id).expect("routed conn exists");
                    conn.complete(seq, reply, None);
                    if version == Some(PROTOCOL_VERSION) {
                        conn.greeted = true;
                    } else {
                        conn.close_after_flush = true;
                    }
                }
                _ => {
                    let reply = protocol_error(
                        recover_id(&line).as_deref(),
                        ErrorKind::HandshakeRequired,
                        format!(
                            "expected {{\"cmd\":\"hello\",\"version\":{PROTOCOL_VERSION}}} \
                             as the first line"
                        ),
                    );
                    conn.complete(seq, reply, None);
                    conn.close_after_flush = true;
                }
            }
            return Routed::Inline;
        }

        // Admin lines are answered on the reactor thread: they must
        // work even when the queue is saturated (that is when you most
        // need `stats`), and `shutdown` must flip the flag before more
        // work is admitted.
        if let Ok(Incoming::Admin(req)) = Incoming::parse(&line) {
            let reply = self.server.handle_line(&line);
            let is_shutdown = req.cmd == AdminCmd::Shutdown;
            let conn = self.conns.get_mut(&id).expect("routed conn exists");
            conn.complete(seq, reply, None);
            return if is_shutdown {
                Routed::InlineShutdown
            } else {
                Routed::Inline
            };
        }

        // Optimization work: shed at the queue cap, otherwise enqueue.
        if at_capacity {
            *shed += 1;
            let mut state = self.server.flight().begin(conn.last_read);
            state.stamp_framed();
            if let Some(req_id) = recover_id(&line) {
                state.timeline.id = req_id;
            }
            state.timeline.outcome = "error:overloaded".to_string();
            state.timeline.anomaly = Some(Anomaly::new(
                AnomalyReason::Shed,
                format!(
                    "queue full ({} jobs), retry_ms={}",
                    rcfg.max_queue, rcfg.retry_ms
                ),
            ));
            let reply = overloaded_reply(recover_id(&line).as_deref(), rcfg.retry_ms).render();
            conn.complete(seq, reply, Some(state));
            return Routed::Inline;
        }
        conn.inflight += 1;
        let mut timeline = self.server.flight().begin(conn.last_read);
        timeline.stamp_framed();
        timeline.stamp_enqueued();
        Routed::Queued(Box::new(Job {
            conn: id,
            seq,
            line,
            timeline,
        }))
    }

    fn count_shed(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.server.count("serve.shed", n);
        if let Some(m) = &self.metrics {
            m.shed.add(n);
        }
    }

    fn drop_conn(&mut self, id: u64) {
        if let Some(mut conn) = self.conns.remove(&id) {
            // Peer gone before its replies drained: the timelines are
            // still flight history, committed without a flushed stamp.
            for t in conn.awaiting_flush.drain(..) {
                self.server.flight().commit(t.timeline);
            }
            for (_, (_, timeline)) in std::mem::take(&mut conn.done) {
                if let Some(t) = timeline {
                    self.server.flight().commit(t.timeline);
                }
            }
            if let Some(m) = &self.metrics {
                m.open.set(self.conns.len() as i64);
            }
        }
    }

    fn reap(&mut self, now: Instant) {
        let timeout = self.rcfg.read_timeout;
        let mut timed_out = 0u64;
        let reapable: Vec<u64> = self
            .conns
            .iter()
            .filter_map(|(&id, conn)| {
                let finished = conn.read_closed && conn.decoder.is_drained() && conn.is_settled();
                let offender = conn.close_after_flush && conn.is_settled();
                let idle = !conn.read_closed
                    && conn.is_settled()
                    && conn.decoder.is_drained()
                    && now.duration_since(conn.last_read) >= timeout;
                // A half-written line counts as idle too: that is the
                // slow-loris shape (bytes trickled in, never a frame).
                let loris = !conn.read_closed
                    && conn.is_settled()
                    && conn.decoder.has_partial()
                    && now.duration_since(conn.last_read) >= timeout;
                if finished || offender || idle || loris {
                    if idle || loris {
                        timed_out += 1;
                    }
                    Some(id)
                } else {
                    None
                }
            })
            .collect();
        // Count before closing: a reaped client observes EOF the moment
        // its fd drops, and may read the stats counter immediately.
        if timed_out > 0 {
            self.server.count("serve.conn.timeout", timed_out);
            if let Some(m) = &self.metrics {
                m.timeouts.add(timed_out);
            }
        }
        for id in reapable {
            self.drop_conn(id);
        }
    }
}

impl<'s> Server<'s> {
    /// Runs the event-loop daemon over the given transports until a
    /// `{"cmd":"shutdown"}` admin line arrives (or a listener error).
    ///
    /// Worker threads (`ServeConfig::workers`) are scoped inside the
    /// call; replies are produced by [`Server::handle_line`], so they
    /// are bitwise identical to the stdin loop and `optimize_batch`.
    pub fn run_reactor(&self, transports: Transports, rcfg: ReactorConfig) -> std::io::Result<()> {
        Reactor::new(self, rcfg).run(transports)
    }
}
