//! The one OS call the reactor needs: `poll(2)`.
//!
//! The workspace builds against an offline registry, so the usual
//! `libc`/`mio` route is unavailable; this module declares the single
//! foreign function and the `pollfd` layout itself.  It is the only
//! place in the crate allowed to use `unsafe` (the crate is otherwise
//! `deny(unsafe_code)`), and the surface is one safe function:
//! [`poll_fds`].
//!
//! Level-triggered readiness is all the reactor wants: it rebuilds the
//! fd set each iteration anyway (connections come and go, interest
//! flips with backpressure), which makes `poll`'s "pass the whole set
//! every time" model a feature rather than a cost at daemon scale
//! (hundreds of connections, not hundreds of thousands).

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_short, c_ulong};
use std::os::unix::io::RawFd;

/// Readable data (or a listener with a pending accept).
pub const POLLIN: c_short = 0x001;
/// Writable without blocking.
pub const POLLOUT: c_short = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: c_short = 0x010;
/// Invalid fd (always reported, never requested).
pub const POLLNVAL: c_short = 0x020;

/// One entry of a `poll(2)` set, matching the C `struct pollfd` layout.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: c_short,
    /// Returned events, filled in by the kernel.
    pub revents: c_short,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: c_short) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one fd is ready or `timeout_ms` elapses
/// (negative waits forever), returning how many entries have non-zero
/// `revents`.  `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel reads `fd` /
        // `events` and writes `revents` for exactly `fds.len()`
        // entries, which is the allocation we hand it.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_reports_readability_and_timeouts() {
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        // Nothing written yet: a short poll times out with 0 ready.
        assert_eq!(poll_fds(&mut fds, 10).expect("poll"), 0);
        a.write_all(b"x").expect("write");
        let ready = poll_fds(&mut fds, 1000).expect("poll");
        assert_eq!(ready, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn poll_reports_hangup_on_peer_drop() {
        let (a, b) = UnixStream::pair().expect("socketpair");
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let ready = poll_fds(&mut fds, 1000).expect("poll");
        assert_eq!(ready, 1);
        assert_ne!(fds[0].revents & (POLLIN | POLLHUP), 0);
    }
}
