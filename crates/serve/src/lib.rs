//! `ujam-serve` — a batched, deadline-aware optimization service over
//! the `ujam-core` pipeline.
//!
//! The optimizer is fast, but real users ask for the same decisions over
//! and over: build systems re-optimizing an unchanged kernel, sweeps
//! re-visiting a nest under the same machine model.  This crate wraps
//! the pipeline in a long-running daemon that answers newline-delimited
//! JSON requests (see [`proto`]) and makes repeated work free:
//!
//! * **content-addressed decision cache** ([`cache`]) — keyed by the
//!   nest's canonical text plus the machine and cost model, so identical
//!   problems share one entry no matter how they were submitted; LRU
//!   eviction, hit/miss/evict counters through `ujam-trace`;
//! * **micro-batching worker pool** ([`Server::run`]) — pipelined
//!   requests are drained into batches and fanned across the same
//!   deterministic `parallel_map_indexed` pool the batch optimizer
//!   uses, replies always in request order;
//! * **per-request deadlines** — `deadline_ms` arms a
//!   [`CancelToken`](ujam_core::CancelToken) that the search passes poll
//!   at candidate granularity; an elapsed deadline answers with a
//!   structured `deadline_exceeded` error and caches nothing;
//! * **total error discipline** — malformed JSON, unknown kernels,
//!   unparsable Fortran, invalid nests, and even optimizer panics each
//!   produce a structured error reply; the daemon never dies on input;
//! * **runtime metrics and an admin channel** — a server built with
//!   [`Server::with_metrics`] records request/latency/cache metrics
//!   into a `ujam-metrics` registry and answers `{"cmd":"stats"}` admin
//!   lines (the `ujam stats` subcommand) with a versioned JSON
//!   snapshot;
//! * **an event-loop front end** ([`reactor`]) — TCP and Unix-socket
//!   listeners multiplexed by one `poll(2)` thread over nonblocking
//!   sockets with incremental NDJSON framing ([`frame`]), a fixed
//!   worker pool fed by a bounded queue, an N-way content-hash-sharded
//!   decision cache ([`shard`]), and admission control (load-shedding
//!   `overloaded` replies, per-connection in-flight caps, idle/slow-
//!   loris read timeouts).  TCP clients open with a versioned
//!   `{"cmd":"hello"}` handshake ([`proto::PROTOCOL_VERSION`]).
//!
//! # Example
//!
//! ```
//! use ujam_serve::{ServeConfig, Server};
//!
//! let server = Server::new(ServeConfig::default(), ujam_trace::null_sink());
//! let mut out = Vec::new();
//! let requests = "{\"id\":\"1\",\"kernel\":\"dmxpy1\"}\n{\"id\":\"2\",\"kernel\":\"dmxpy1\"}\n";
//! server.run(std::io::Cursor::new(requests), &mut out).unwrap();
//! let text = String::from_utf8(out).unwrap();
//! assert_eq!(text.lines().count(), 2); // one reply per request, in order
//! assert!(text.lines().all(|l| l.contains("\"ok\":true")));
//! assert!(text.lines().nth(1).unwrap().contains("\"cached\":true")); // duplicate
//! ```

// `unsafe` is denied crate-wide and allowed in exactly one module:
// `sys`, the hand-rolled poll(2) binding (the offline registry has no
// `libc`).  Everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod flight;
pub mod frame;
pub mod proto;
#[cfg(unix)]
pub mod reactor;
mod server;
pub mod shard;
#[cfg(unix)]
mod sys;

pub use cache::{decision_key, CacheStats, Decision, DecisionCache};
pub use flight::{
    FlightRecorder, TimelineState, DEFAULT_FLIGHT_CAPACITY, DEFAULT_SLOW_MS, FLIGHT_VERSION,
};
pub use frame::{Frame, LineDecoder, MAX_LINE_BYTES};
pub use proto::{
    stats_reply, AdminCmd, AdminRequest, ErrorKind, ErrorReply, Incoming, OkReply, Reply, Request,
    Source, PROTOCOL_VERSION,
};
#[cfg(unix)]
pub use reactor::{ReactorConfig, Transports};
pub use server::{ServeConfig, Server};
pub use shard::{shard_of, InsertOutcome, ShardedDecisionCache};
