//! An N-way sharded wrapper over the content-addressed decision cache.
//!
//! A single global LRU behind one mutex is exactly the contention point
//! a multi-connection daemon cannot afford: every worker serializes on
//! every lookup.  Sharding splits the key space by a stable content
//! hash ([`shard_of`]) so lookups for different shards never touch the
//! same lock, while lookups for the *same* content still always land on
//! the same shard — the cache stays content-addressed.
//!
//! Semantics are pinned to the single-shard cache (`shard_props.rs`):
//!
//! * **Shard count 1 is bitwise the PR 4 cache** — same hits, same
//!   misses, same evictions, same byte ledger, for any operation
//!   stream.
//! * **N shards behave as N independent [`DecisionCache`]s** fed the
//!   subsequence of operations whose keys hash to them, each with
//!   `capacity.div_ceil(n)` entries.  Hit/miss accounting is therefore
//!   identical to the single cache whenever nothing evicts; under
//!   eviction pressure each shard runs its own LRU (global recency is
//!   the one thing sharding gives up — by design, it is what the lock
//!   was serializing).
//! * **The byte ledger is preserved**: [`approx_bytes`] is the exact
//!   sum of the per-shard ledgers.
//!
//! [`approx_bytes`]: ShardedDecisionCache::approx_bytes

use std::sync::Mutex;

use crate::cache::{CacheStats, Decision, DecisionCache};

/// FNV-1a, the same stable 64-bit content hash everywhere: no
/// per-process seed, so a key maps to one shard for the daemon's whole
/// life (and across daemons — the future shared cache tier relies on
/// this).
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard index a key belongs to, for a cache of `shards` shards.
pub fn shard_of(key: &str, shards: usize) -> usize {
    (fnv1a(key) % shards.max(1) as u64) as usize
}

/// What an insert did: which shard took the entry and how many entries
/// that shard evicted to make room.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The shard the key hashed to.
    pub shard: usize,
    /// Entries evicted by this insert (0 or 1).
    pub evicted: u64,
}

/// A content-hash-sharded [`DecisionCache`]: per-shard locks, per-shard
/// counters, one byte ledger summed across shards.
#[derive(Debug)]
pub struct ShardedDecisionCache {
    shards: Vec<Mutex<DecisionCache>>,
}

impl ShardedDecisionCache {
    /// A cache of `capacity` total entries split over `shards` shards
    /// (clamped to at least 1).  Each shard holds up to
    /// `capacity.div_ceil(shards)` entries, so a one-shard cache is
    /// exactly the unsharded cache and an N-shard cache never holds
    /// fewer than `capacity` entries in aggregate.  Capacity 0 disables
    /// storage in every shard.
    pub fn new(capacity: usize, shards: usize) -> ShardedDecisionCache {
        let n = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(n)
        };
        ShardedDecisionCache {
            shards: (0..n)
                .map(|_| Mutex::new(DecisionCache::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` belongs to.
    pub fn shard_of(&self, key: &str) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Looks up a decision, returning the shard consulted alongside the
    /// result.  Only that shard's lock is taken.
    pub fn get(&self, key: &str) -> (usize, Option<Decision>) {
        let shard = self.shard_of(key);
        let hit = self.shards[shard].lock().expect("shard lock").get(key);
        (shard, hit)
    }

    /// Stores a decision in its key's shard, reporting the shard and
    /// any eviction it caused.
    pub fn insert(&self, key: String, decision: Decision) -> InsertOutcome {
        let shard = self.shard_of(&key);
        let mut cache = self.shards[shard].lock().expect("shard lock");
        let before = cache.stats().evictions;
        cache.insert(key, decision);
        InsertOutcome {
            shard,
            evicted: cache.stats().evictions - before,
        }
    }

    /// One shard's counters.
    pub fn shard_stats(&self, shard: usize) -> CacheStats {
        self.shards[shard].lock().expect("shard lock").stats()
    }

    /// Aggregate counters summed over every shard.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().expect("shard lock").stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").len())
            .sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte ledger: exact sum of every shard's incremental ledger.
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").approx_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(name: &str) -> Decision {
        Decision {
            nest: name.into(),
            unroll: vec![2, 0],
            balance: 0.5,
            original_balance: 1.0,
            registers: 4,
        }
    }

    #[test]
    fn same_key_always_lands_on_the_same_shard() {
        let c = ShardedDecisionCache::new(64, 8);
        let shard = c.shard_of("some-content-key");
        for _ in 0..10 {
            assert_eq!(c.shard_of("some-content-key"), shard);
        }
        let (s, miss) = c.get("some-content-key");
        assert_eq!(s, shard);
        assert!(miss.is_none());
        let outcome = c.insert("some-content-key".into(), d("n"));
        assert_eq!(outcome.shard, shard);
        let (s, hit) = c.get("some-content-key");
        assert_eq!(s, shard);
        assert!(hit.is_some());
    }

    #[test]
    fn aggregate_stats_sum_the_shards() {
        let c = ShardedDecisionCache::new(64, 4);
        for i in 0..16 {
            let key = format!("key-{i}");
            c.get(&key); // miss
            c.insert(key.clone(), d("n"));
            c.get(&key); // hit
        }
        let total = c.stats();
        assert_eq!((total.hits, total.misses), (16, 16));
        let summed: u64 = (0..4).map(|s| c.shard_stats(s).hits).sum();
        assert_eq!(summed, 16);
        assert_eq!(c.len(), 16);
        assert!(c.approx_bytes() > 0);
    }

    #[test]
    fn zero_capacity_disables_every_shard() {
        let c = ShardedDecisionCache::new(0, 4);
        c.insert("k".into(), d("n"));
        assert!(c.is_empty());
        assert_eq!(c.approx_bytes(), 0);
    }

    #[test]
    fn shard_count_is_clamped_to_one() {
        let c = ShardedDecisionCache::new(8, 0);
        assert_eq!(c.shards(), 1);
        c.insert("k".into(), d("n"));
        assert_eq!(c.get("k").1.expect("hit").nest, "n");
    }
}
