//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one reply per line, always in request order.
//! Requests:
//!
//! ```json
//! {"id":"r1","kernel":"dmxpy1"}
//! {"id":"r2","source":"      DO 10 J = 1, 240\n...","deadline_ms":50}
//! ```
//!
//! Exactly one of `kernel` (a Table 2 name) or `source` (inline Fortran)
//! selects the nest; `machine` (`alpha`/`parisc`/`prefetch`), `model`
//! (`cache`/`allhits`), and `deadline_ms` are optional.  Replies are
//! either
//!
//! ```json
//! {"id":"r1","ok":true,"nest":"dmxpy1","unroll":[15,0],"balance":0.533,
//!  "original_balance":1.0,"registers":16,"cached":false}
//! ```
//!
//! or a structured error that names what went wrong without ever taking
//! the daemon down:
//!
//! ```json
//! {"id":"r2","ok":false,"error":{"kind":"parse","message":"...","line":3}}
//! ```
//!
//! Malformed lines (bad JSON, missing `id`, unknown fields) still get a
//! reply — with `"id":null` when no id could be recovered — so a client
//! that pipelines `n` lines always reads exactly `n` replies.

use ujam_core::{BalanceModel, CostModelKind};
use ujam_machine::MachineModel;
use ujam_trace::json::{self, Value};

/// The wire-protocol version the TCP handshake negotiates.
///
/// A TCP connection's first line must be
/// `{"id":"...","cmd":"hello","version":1}`; the daemon answers
/// `{"id":"...","ok":true,"protocol":1}` and only then accepts
/// requests.  Unknown versions get a structured `bad_version` error and
/// the connection closes.  Unix-socket and stdin clients are local and
/// version-locked to their binary, so the handshake is optional there
/// (but answered identically when sent).
pub const PROTOCOL_VERSION: u64 = 1;

/// Which nest a request wants optimized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// A kernel name from the Table 2 suite (`ujam list`).
    Kernel(String),
    /// Inline Fortran-77 source holding one DO nest.
    Inline(String),
}

/// A parsed, validated optimization request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen request id, echoed verbatim in the reply.
    pub id: String,
    /// The nest to optimize.
    pub source: Source,
    /// Target machine (default DEC Alpha).
    pub machine: MachineModel,
    /// Balance model (default cache-aware).
    pub model: BalanceModel,
    /// Cache-cost backend for the search (default analytic; `profiled`
    /// and `blended` run the reuse-distance profiler per candidate).
    pub cost_model: CostModelKind,
    /// Optional deadline in milliseconds; `Some(0)` is already expired.
    pub deadline_ms: Option<u64>,
    /// Most loops the unroll vector may span (`0` = unbounded); `None`
    /// keeps the paper's default of 2.
    pub max_unroll_loops: Option<usize>,
    /// Code-size budget: most statements the unrolled body may hold.
    pub code_budget: Option<usize>,
    /// Whether to echo the daemon-assigned flight-recorder trace id in
    /// the reply (`"trace":true`).  Off by default so replies stay
    /// byte-identical with non-daemon `optimize_batch` output.
    pub trace: bool,
}

/// Machine-readable failure categories for error replies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not a well-formed request object.
    BadRequest,
    /// Inline Fortran source failed to parse.
    Parse,
    /// The named kernel is not in the suite.
    UnknownKernel,
    /// The nest failed structural validation or could not be transformed.
    InvalidNest,
    /// The request's deadline elapsed before a plan was found.
    DeadlineExceeded,
    /// The optimizer failed unexpectedly; the daemon kept running.
    Internal,
    /// The daemon shed this request under load; retry after
    /// `error.retry_ms` milliseconds.
    Overloaded,
    /// A frame exceeded the protocol's maximum line length and was
    /// discarded (see `MAX_LINE_BYTES`).
    FrameTooLong,
    /// A TCP connection sent a request before the versioned hello.
    HandshakeRequired,
    /// The hello named a protocol version this daemon does not speak.
    BadVersion,
}

impl ErrorKind {
    /// The `error.kind` string on the wire.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Parse => "parse",
            ErrorKind::UnknownKernel => "unknown_kernel",
            ErrorKind::InvalidNest => "invalid_nest",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Internal => "internal",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::FrameTooLong => "frame_too_long",
            ErrorKind::HandshakeRequired => "handshake_required",
            ErrorKind::BadVersion => "bad_version",
        }
    }
}

/// A structured error reply.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorReply {
    /// The request id, when one could be recovered from the line.
    pub id: Option<String>,
    /// Failure category.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// 1-based source line for [`ErrorKind::Parse`] errors.
    pub line: Option<usize>,
    /// Suggested client backoff for [`ErrorKind::Overloaded`] replies.
    pub retry_ms: Option<u64>,
    /// Flight-recorder trace id, echoed only when the request opted in
    /// with `"trace":true`.
    pub trace_id: Option<u64>,
}

/// A successful reply: the decision, not the transformed body — clients
/// that want the rewritten nest re-run `ujam optimize` locally with the
/// reported vector.
#[derive(Clone, Debug, PartialEq)]
pub struct OkReply {
    /// The request id, echoed.
    pub id: String,
    /// The nest's name.
    pub nest: String,
    /// The chosen unroll vector, one entry per loop.
    pub unroll: Vec<u32>,
    /// Predicted balance at the chosen vector.
    pub balance: f64,
    /// Predicted balance of the untransformed nest.
    pub original_balance: f64,
    /// Registers consumed by scalar replacement at the chosen vector.
    pub registers: i64,
    /// Whether the decision was served from the cache.
    pub cached: bool,
    /// Flight-recorder trace id, echoed only when the request opted in
    /// with `"trace":true`.
    pub trace_id: Option<u64>,
}

/// One reply line, success or failure.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The optimization succeeded.
    Ok(OkReply),
    /// The request failed in a structured way.
    Error(ErrorReply),
}

impl Reply {
    /// Renders the reply as a single JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self {
            Reply::Ok(r) => {
                out.push_str("{\"id\":");
                json::write_escaped(&mut out, &r.id);
                out.push_str(",\"ok\":true,\"nest\":");
                json::write_escaped(&mut out, &r.nest);
                out.push_str(",\"unroll\":[");
                for (i, u) in r.unroll.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&u.to_string());
                }
                out.push_str("],\"balance\":");
                json::write_f64(&mut out, r.balance);
                out.push_str(",\"original_balance\":");
                json::write_f64(&mut out, r.original_balance);
                out.push_str(",\"registers\":");
                out.push_str(&r.registers.to_string());
                out.push_str(",\"cached\":");
                out.push_str(if r.cached { "true" } else { "false" });
                if let Some(t) = r.trace_id {
                    out.push_str(",\"trace_id\":");
                    out.push_str(&t.to_string());
                }
                out.push('}');
            }
            Reply::Error(e) => {
                out.push_str("{\"id\":");
                match &e.id {
                    Some(id) => json::write_escaped(&mut out, id),
                    None => out.push_str("null"),
                }
                out.push_str(",\"ok\":false,\"error\":{\"kind\":");
                json::write_escaped(&mut out, e.kind.as_str());
                out.push_str(",\"message\":");
                json::write_escaped(&mut out, &e.message);
                if let Some(line) = e.line {
                    out.push_str(",\"line\":");
                    out.push_str(&line.to_string());
                }
                if let Some(ms) = e.retry_ms {
                    out.push_str(",\"retry_ms\":");
                    out.push_str(&ms.to_string());
                }
                out.push('}');
                if let Some(t) = e.trace_id {
                    out.push_str(",\"trace_id\":");
                    out.push_str(&t.to_string());
                }
                out.push('}');
            }
        }
        out
    }

    /// The reply with its `trace_id` echo set (a no-op for `None`).
    pub fn with_trace_id(mut self, trace_id: Option<u64>) -> Reply {
        match &mut self {
            Reply::Ok(r) => r.trace_id = trace_id,
            Reply::Error(e) => e.trace_id = trace_id,
        }
        self
    }
}

/// Admin commands addressed to the daemon itself rather than the
/// optimizer, carried on the same NDJSON channel via a `cmd` field:
///
/// ```json
/// {"id":"s1","cmd":"stats"}
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdminCmd {
    /// Return a versioned metrics snapshot (`ujam stats`), optionally
    /// with the time-series window ring (`"series":true`).
    Stats {
        /// Whether to include the series ring in the reply.
        series: bool,
    },
    /// Return the flight-recorder snapshot (`ujam flight`): recent
    /// request timelines plus the anomaly ring.
    Flight {
        /// Whether to drop the recent ring and carry only anomalies.
        slow_only: bool,
    },
    /// The versioned transport handshake; `version` is the client's
    /// claimed [`PROTOCOL_VERSION`] (`None` when the field was absent).
    Hello {
        /// The protocol version the client offered.
        version: Option<u64>,
    },
    /// Ask the daemon to stop accepting work and exit its serve loop
    /// cleanly after answering this line.
    Shutdown,
}

/// A parsed admin request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdminRequest {
    /// Client-chosen request id, echoed verbatim in the reply.
    pub id: String,
    /// What the client asked the daemon to do.
    pub cmd: AdminCmd,
}

/// One incoming line, dispatched by shape: any well-formed object
/// carrying a `cmd` field is an admin request; everything else goes
/// down the optimization path (including its error handling).
#[derive(Clone, Debug)]
pub enum Incoming {
    /// An optimization request ([`Request`]).
    Optimize(Request),
    /// An admin request ([`AdminRequest`]).
    Admin(AdminRequest),
}

impl Incoming {
    /// Parses one line, dispatching on the presence of `cmd`.  Every
    /// failure is a structured [`Reply::Error`] carrying whatever id
    /// could be recovered.
    pub fn parse(line: &str) -> Result<Incoming, Reply> {
        if let Ok(Value::Object(obj)) = json::parse(line) {
            if obj.contains_key("cmd") {
                return AdminRequest::from_object(&obj).map(Incoming::Admin);
            }
        }
        Request::parse(line).map(Incoming::Optimize)
    }
}

impl AdminRequest {
    fn from_object(obj: &std::collections::BTreeMap<String, Value>) -> Result<AdminRequest, Reply> {
        let id = match obj.get("id") {
            Some(Value::String(s)) => s.clone(),
            Some(_) => {
                return Err(error_reply(
                    None,
                    ErrorKind::BadRequest,
                    "\"id\" must be a string",
                ))
            }
            None => {
                return Err(error_reply(
                    None,
                    ErrorKind::BadRequest,
                    "missing \"id\" field",
                ))
            }
        };
        let is_hello = obj.get("cmd") == Some(&Value::String("hello".into()));
        let is_stats = obj.get("cmd") == Some(&Value::String("stats".into()));
        let is_flight = obj.get("cmd") == Some(&Value::String("flight".into()));
        for key in obj.keys() {
            let known = matches!(key.as_str(), "id" | "cmd")
                || (is_hello && key == "version")
                || (is_stats && key == "series")
                || (is_flight && key == "slow_only");
            if !known {
                return Err(error_reply(
                    Some(&id),
                    ErrorKind::BadRequest,
                    format!("unknown field {key:?}"),
                ));
            }
        }
        let flag = |name: &str| -> Result<bool, Reply> {
            match obj.get(name) {
                None => Ok(false),
                Some(Value::Bool(b)) => Ok(*b),
                Some(_) => Err(error_reply(
                    Some(&id),
                    ErrorKind::BadRequest,
                    format!("{name:?} must be a boolean"),
                )),
            }
        };
        let cmd = match obj.get("cmd") {
            Some(Value::String(s)) if s == "stats" => AdminCmd::Stats {
                series: flag("series")?,
            },
            Some(Value::String(s)) if s == "flight" => AdminCmd::Flight {
                slow_only: flag("slow_only")?,
            },
            Some(Value::String(s)) if s == "shutdown" => AdminCmd::Shutdown,
            Some(Value::String(s)) if s == "hello" => {
                let version = match obj.get("version") {
                    None => None,
                    Some(Value::Number(n))
                        if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 =>
                    {
                        Some(*n as u64)
                    }
                    Some(_) => {
                        return Err(error_reply(
                            Some(&id),
                            ErrorKind::BadRequest,
                            "\"version\" must be a non-negative integer",
                        ))
                    }
                };
                AdminCmd::Hello { version }
            }
            Some(Value::String(other)) => {
                return Err(error_reply(
                    Some(&id),
                    ErrorKind::BadRequest,
                    format!(
                    "unknown cmd {other:?} (try \"stats\", \"flight\", \"hello\", or \"shutdown\")"
                ),
                ))
            }
            _ => {
                return Err(error_reply(
                    Some(&id),
                    ErrorKind::BadRequest,
                    "\"cmd\" must be a string",
                ))
            }
        };
        Ok(AdminRequest { id, cmd })
    }
}

/// Renders a `stats` admin reply: the echoed id plus the snapshot
/// object produced by `MetricsSnapshot::render_json` embedded verbatim
/// under `"stats"`.
pub fn stats_reply(id: &str, snapshot_json: &str) -> String {
    let mut out = String::from("{\"id\":");
    json::write_escaped(&mut out, id);
    out.push_str(",\"ok\":true,\"stats\":");
    out.push_str(snapshot_json);
    out.push('}');
    out
}

/// Renders a `stats` reply that also carries the time-series ring:
/// `series` is embedded *before* `stats` so clients extracting the
/// trailing snapshot object keep working unchanged.
pub fn stats_series_reply(id: &str, series_json: &str, snapshot_json: &str) -> String {
    let mut out = String::from("{\"id\":");
    json::write_escaped(&mut out, id);
    out.push_str(",\"ok\":true,\"series\":");
    out.push_str(series_json);
    out.push_str(",\"stats\":");
    out.push_str(snapshot_json);
    out.push('}');
    out
}

/// Renders a `flight` admin reply: the echoed id plus the recorder
/// snapshot produced by `FlightRecorder::snapshot_json` embedded
/// verbatim under `"flight"`.
pub fn flight_reply(id: &str, flight_json: &str) -> String {
    let mut out = String::from("{\"id\":");
    json::write_escaped(&mut out, id);
    out.push_str(",\"ok\":true,\"flight\":");
    out.push_str(flight_json);
    out.push('}');
    out
}

/// Renders a successful `hello` handshake acknowledgment.
pub fn hello_reply(id: &str) -> String {
    let mut out = String::from("{\"id\":");
    json::write_escaped(&mut out, id);
    out.push_str(",\"ok\":true,\"protocol\":");
    out.push_str(&PROTOCOL_VERSION.to_string());
    out.push('}');
    out
}

/// Renders a `shutdown` acknowledgment (the daemon exits after
/// flushing it).
pub fn shutdown_reply(id: &str) -> String {
    let mut out = String::from("{\"id\":");
    json::write_escaped(&mut out, id);
    out.push_str(",\"ok\":true,\"shutdown\":true}");
    out
}

/// Shorthand for a [`Reply::Error`] with no source line.
pub(crate) fn error_reply(id: Option<&str>, kind: ErrorKind, message: impl Into<String>) -> Reply {
    Reply::Error(ErrorReply {
        id: id.map(str::to_owned),
        kind,
        message: message.into(),
        line: None,
        retry_ms: None,
        trace_id: None,
    })
}

/// The structured load-shed reply: `overloaded`, with the suggested
/// client backoff embedded as `error.retry_ms`.
pub fn overloaded_reply(id: Option<&str>, retry_ms: u64) -> Reply {
    Reply::Error(ErrorReply {
        id: id.map(str::to_owned),
        kind: ErrorKind::Overloaded,
        message: format!("daemon overloaded; retry in {retry_ms} ms"),
        line: None,
        retry_ms: Some(retry_ms),
        trace_id: None,
    })
}

/// Recovers the `id` of a line without fully validating it, so shed
/// and framing errors can still echo the client's id when one is
/// present.
pub fn recover_id(line: &str) -> Option<String> {
    match json::parse(line) {
        Ok(Value::Object(obj)) => match obj.get("id") {
            Some(Value::String(s)) => Some(s.clone()),
            _ => None,
        },
        _ => None,
    }
}

impl Request {
    /// Parses one request line.  Every failure is a structured
    /// [`Reply::Error`] carrying whatever id could be recovered, so the
    /// caller can always answer the line.
    pub fn parse(line: &str) -> Result<Request, Reply> {
        let doc = json::parse(line)
            .map_err(|e| error_reply(None, ErrorKind::BadRequest, format!("invalid JSON: {e}")))?;
        let obj = match &doc {
            Value::Object(m) => m,
            _ => {
                return Err(error_reply(
                    None,
                    ErrorKind::BadRequest,
                    "request must be a JSON object",
                ))
            }
        };
        // Recover the id first so later errors can echo it.
        let id = match obj.get("id") {
            Some(Value::String(s)) => s.clone(),
            Some(_) => {
                return Err(error_reply(
                    None,
                    ErrorKind::BadRequest,
                    "\"id\" must be a string",
                ))
            }
            None => {
                return Err(error_reply(
                    None,
                    ErrorKind::BadRequest,
                    "missing \"id\" field",
                ))
            }
        };
        let fail = |msg: String| error_reply(Some(&id), ErrorKind::BadRequest, msg);
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "id" | "kernel"
                    | "source"
                    | "machine"
                    | "model"
                    | "cost_model"
                    | "deadline_ms"
                    | "max_unroll_loops"
                    | "code_budget"
                    | "trace"
            ) {
                return Err(fail(format!("unknown field {key:?}")));
            }
        }
        let source = match (obj.get("kernel"), obj.get("source")) {
            (Some(Value::String(k)), None) => Source::Kernel(k.clone()),
            (None, Some(Value::String(s))) => Source::Inline(s.clone()),
            (Some(_), Some(_)) => {
                return Err(fail(
                    "give either \"kernel\" or \"source\", not both".into(),
                ))
            }
            (None, None) => return Err(fail("missing \"kernel\" or \"source\"".into())),
            _ => return Err(fail("\"kernel\" and \"source\" must be strings".into())),
        };
        let machine = match obj.get("machine") {
            None => MachineModel::dec_alpha(),
            Some(Value::String(s)) => match s.as_str() {
                "alpha" => MachineModel::dec_alpha(),
                "parisc" => MachineModel::hp_parisc(),
                "prefetch" => MachineModel::prefetching_risc(),
                other => return Err(fail(format!("unknown machine {other:?}"))),
            },
            Some(_) => return Err(fail("\"machine\" must be a string".into())),
        };
        let model = match obj.get("model") {
            None => BalanceModel::CacheAware,
            Some(Value::String(s)) => match s.as_str() {
                "cache" => BalanceModel::CacheAware,
                "allhits" => BalanceModel::AllHits,
                other => return Err(fail(format!("unknown model {other:?}"))),
            },
            Some(_) => return Err(fail("\"model\" must be a string".into())),
        };
        let cost_model = match obj.get("cost_model") {
            None => CostModelKind::Analytic,
            Some(Value::String(s)) => match CostModelKind::parse(s) {
                Some(kind) => kind,
                None => return Err(fail(format!("unknown cost_model {s:?}"))),
            },
            Some(_) => return Err(fail("\"cost_model\" must be a string".into())),
        };
        let deadline_ms = match obj.get("deadline_ms") {
            None => None,
            Some(Value::Number(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            Some(_) => {
                return Err(fail(
                    "\"deadline_ms\" must be a non-negative integer".into(),
                ))
            }
        };
        let max_unroll_loops = match obj.get("max_unroll_loops") {
            None => None,
            Some(Value::Number(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            Some(_) => {
                return Err(fail(
                    "\"max_unroll_loops\" must be a non-negative integer".into(),
                ))
            }
        };
        let code_budget = match obj.get("code_budget") {
            None => None,
            Some(Value::Number(n)) if *n >= 1.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            Some(_) => return Err(fail("\"code_budget\" must be a positive integer".into())),
        };
        let trace = match obj.get("trace") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(fail("\"trace\" must be a boolean".into())),
        };
        Ok(Request {
            id,
            source,
            machine,
            model,
            cost_model,
            deadline_ms,
            max_unroll_loops,
            code_budget,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_kernel_request() {
        let r = Request::parse(r#"{"id":"a","kernel":"dmxpy1"}"#).expect("parses");
        assert_eq!(r.id, "a");
        assert_eq!(r.source, Source::Kernel("dmxpy1".into()));
        assert_eq!(r.machine.name(), MachineModel::dec_alpha().name());
        assert_eq!(r.model, BalanceModel::CacheAware);
        assert_eq!(r.cost_model, CostModelKind::Analytic);
        assert_eq!(r.deadline_ms, None);
        assert_eq!(r.max_unroll_loops, None);
        assert_eq!(r.code_budget, None);
        assert!(!r.trace, "trace echo is opt-in");
    }

    #[test]
    fn parses_every_optional_field() {
        let r = Request::parse(
            r#"{"id":"b","source":"x","machine":"parisc","model":"allhits","cost_model":"profiled","deadline_ms":250,"max_unroll_loops":3,"code_budget":128,"trace":true}"#,
        )
        .expect("parses");
        assert_eq!(r.source, Source::Inline("x".into()));
        assert_eq!(r.machine.name(), MachineModel::hp_parisc().name());
        assert_eq!(r.model, BalanceModel::AllHits);
        assert_eq!(r.cost_model, CostModelKind::Profiled);
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!(r.max_unroll_loops, Some(3));
        assert_eq!(r.code_budget, Some(128));
        assert!(r.trace);
    }

    #[test]
    fn cost_model_parses_strictly() {
        for (wire, want) in [
            ("analytic", CostModelKind::Analytic),
            ("profiled", CostModelKind::Profiled),
            ("blended", CostModelKind::Blended),
        ] {
            let r = Request::parse(&format!(
                r#"{{"id":"a","kernel":"mmjki","cost_model":"{wire}"}}"#
            ))
            .expect("parses");
            assert_eq!(r.cost_model, want);
        }
        for line in [
            r#"{"id":"x","kernel":"a","cost_model":"exact"}"#,
            r#"{"id":"x","kernel":"a","cost_model":7}"#,
        ] {
            match Request::parse(line) {
                Err(Reply::Error(e)) => {
                    assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
                    assert_eq!(e.id.as_deref(), Some("x"), "{line}");
                }
                other => panic!("{line}: expected bad_request, got {other:?}"),
            }
        }
    }

    #[test]
    fn register_tile_knobs_parse_strictly() {
        // 0 unrolled loops means "unbounded", so it is accepted; a
        // 0-statement code budget is meaningless and rejected.
        let r =
            Request::parse(r#"{"id":"a","kernel":"mmjki","max_unroll_loops":0}"#).expect("parses");
        assert_eq!(r.max_unroll_loops, Some(0));
        for line in [
            r#"{"id":"x","kernel":"a","max_unroll_loops":-1}"#,
            r#"{"id":"x","kernel":"a","max_unroll_loops":1.5}"#,
            r#"{"id":"x","kernel":"a","max_unroll_loops":"two"}"#,
            r#"{"id":"x","kernel":"a","code_budget":0}"#,
            r#"{"id":"x","kernel":"a","code_budget":-8}"#,
            r#"{"id":"x","kernel":"a","code_budget":true}"#,
        ] {
            match Request::parse(line) {
                Err(Reply::Error(e)) => {
                    assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
                    assert_eq!(e.id.as_deref(), Some("x"), "{line}");
                }
                other => panic!("{line}: expected bad_request, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_lines_yield_bad_request_with_recovered_id() {
        for (line, want_id) in [
            ("not json", None),
            ("[1,2]", None),
            (r#"{"kernel":"dmxpy1"}"#, None),
            (r#"{"id":7,"kernel":"dmxpy1"}"#, None),
            (r#"{"id":"x"}"#, Some("x")),
            (r#"{"id":"x","kernel":"a","source":"b"}"#, Some("x")),
            (r#"{"id":"x","kernel":"a","bogus":1}"#, Some("x")),
            (r#"{"id":"x","kernel":"a","machine":"cray"}"#, Some("x")),
            (r#"{"id":"x","kernel":"a","model":"magic"}"#, Some("x")),
            (r#"{"id":"x","kernel":"a","deadline_ms":-1}"#, Some("x")),
            (r#"{"id":"x","kernel":"a","deadline_ms":1.5}"#, Some("x")),
        ] {
            match Request::parse(line) {
                Err(Reply::Error(e)) => {
                    assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
                    assert_eq!(e.id.as_deref(), want_id, "{line}");
                }
                other => panic!("{line}: expected bad_request, got {other:?}"),
            }
        }
    }

    #[test]
    fn admin_lines_dispatch_on_cmd() {
        match Incoming::parse(r#"{"id":"s1","cmd":"stats"}"#) {
            Ok(Incoming::Admin(a)) => {
                assert_eq!(a.id, "s1");
                assert_eq!(a.cmd, AdminCmd::Stats { series: false });
            }
            other => panic!("expected admin request, got {other:?}"),
        }
        match Incoming::parse(r#"{"id":"s2","cmd":"stats","series":true}"#) {
            Ok(Incoming::Admin(a)) => assert_eq!(a.cmd, AdminCmd::Stats { series: true }),
            other => panic!("expected admin request, got {other:?}"),
        }
        match Incoming::parse(r#"{"id":"f1","cmd":"flight"}"#) {
            Ok(Incoming::Admin(a)) => assert_eq!(a.cmd, AdminCmd::Flight { slow_only: false }),
            other => panic!("expected admin request, got {other:?}"),
        }
        match Incoming::parse(r#"{"id":"f2","cmd":"flight","slow_only":true}"#) {
            Ok(Incoming::Admin(a)) => assert_eq!(a.cmd, AdminCmd::Flight { slow_only: true }),
            other => panic!("expected admin request, got {other:?}"),
        }
        // No `cmd` → the ordinary optimization path.
        assert!(matches!(
            Incoming::parse(r#"{"id":"a","kernel":"dmxpy1"}"#),
            Ok(Incoming::Optimize(_))
        ));
        // Bad admin lines are structured errors with the recovered id.
        for (line, want_id) in [
            (r#"{"cmd":"stats"}"#, None),
            (r#"{"id":"x","cmd":"reboot"}"#, Some("x")),
            (r#"{"id":"x","cmd":7}"#, Some("x")),
            (r#"{"id":"x","cmd":"stats","kernel":"k"}"#, Some("x")),
            (r#"{"id":"x","cmd":"stats","slow_only":true}"#, Some("x")),
            (r#"{"id":"x","cmd":"flight","series":true}"#, Some("x")),
            (r#"{"id":"x","cmd":"flight","slow_only":1}"#, Some("x")),
            (r#"{"id":"x","cmd":"stats","series":"yes"}"#, Some("x")),
        ] {
            match Incoming::parse(line) {
                Err(Reply::Error(e)) => {
                    assert_eq!(e.kind, ErrorKind::BadRequest, "{line}");
                    assert_eq!(e.id.as_deref(), want_id, "{line}");
                }
                other => panic!("{line}: expected bad_request, got {other:?}"),
            }
        }
    }

    #[test]
    fn stats_replies_embed_the_snapshot_verbatim() {
        let line = stats_reply(
            "s1",
            r#"{"version":1,"counters":{},"gauges":{},"histograms":{}}"#,
        );
        let doc = json::parse(&line).expect("valid JSON");
        assert_eq!(doc.get("id").and_then(Value::as_str), Some("s1"));
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(
            doc.get("stats")
                .and_then(|s| s.get("version"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn replies_render_as_valid_json() {
        let ok = Reply::Ok(OkReply {
            id: "q\"uote".into(),
            nest: "dmxpy1".into(),
            unroll: vec![15, 0],
            balance: 0.533,
            original_balance: 1.0,
            registers: 16,
            cached: true,
            trace_id: None,
        });
        let doc = json::parse(&ok.render()).expect("ok reply is valid JSON");
        assert_eq!(doc.get("id").and_then(Value::as_str), Some("q\"uote"));
        assert_eq!(doc.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(
            doc.get("unroll").and_then(Value::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("trace_id").is_none(), "absent unless opted in");

        // Opting in appends trace_id as the final field on both reply
        // shapes; everything before it is byte-identical.
        let bare = ok.render();
        let traced = ok.clone().with_trace_id(Some(42)).render();
        assert_eq!(
            traced,
            format!("{},\"trace_id\":42}}", &bare[..bare.len() - 1])
        );
        let err_bare = error_reply(Some("x"), ErrorKind::DeadlineExceeded, "late").render();
        let err_traced = error_reply(Some("x"), ErrorKind::DeadlineExceeded, "late")
            .with_trace_id(Some(7))
            .render();
        assert_eq!(
            err_traced,
            format!("{},\"trace_id\":7}}", &err_bare[..err_bare.len() - 1])
        );
        let doc = json::parse(&err_traced).expect("traced error reply is valid JSON");
        assert_eq!(doc.get("trace_id").and_then(Value::as_f64), Some(7.0));

        let err = error_reply(None, ErrorKind::BadRequest, "line\nbreak");
        let doc = json::parse(&err.render()).expect("error reply is valid JSON");
        assert_eq!(doc.get("id"), Some(&Value::Null));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("bad_request")
        );
    }
}
