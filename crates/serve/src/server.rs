//! The request handler and I/O loops.
//!
//! [`Server`] is the transport-independent core: `handle_line` answers
//! one request string, `handle_batch` fans a slice of lines across the
//! same deterministic worker pool the batch optimizer uses
//! ([`parallel_map_indexed`]), and `run` is the newline-delimited
//! stdin/stdout daemon loop with micro-batching — it blocks for the
//! first pending line, then drains whatever else has already arrived
//! (up to `batch_max`) into one batch, so a pipelining client gets
//! parallelism and an interactive client gets per-line latency.
//!
//! Every failure mode is a structured reply: the daemon never panics on
//! a request, and a client that writes `n` lines always reads exactly
//! `n` replies (blank lines excepted), in order.  On EOF the loop drains
//! everything already queued before returning, so shutdown never drops
//! an accepted request.

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use ujam_core::{optimize_cancellable, parallel_map_indexed, CancelToken, OptimizeError};
use ujam_ir::LoopNest;
use ujam_trace::{null_sink, TraceRecord, TraceSink};

use crate::cache::{decision_key, CacheStats, Decision, DecisionCache};
use crate::proto::{ErrorKind, ErrorReply, OkReply, Reply, Request, Source};

/// Tunables for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads for batch handling (clamped to at least 1).
    pub workers: usize,
    /// Most lines folded into one micro-batch.
    pub batch_max: usize,
    /// Decision-cache capacity in entries (0 disables storage).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_max: 32,
            cache_capacity: 256,
        }
    }
}

/// The optimization service: request parsing, the decision cache, the
/// worker pool, and the I/O loops.
///
/// # Example
///
/// ```
/// use ujam_serve::{ServeConfig, Server};
/// let server = Server::new(ServeConfig::default(), ujam_trace::null_sink());
/// let reply = server.handle_line(r#"{"id":"r1","kernel":"dmxpy1"}"#);
/// assert!(reply.contains("\"ok\":true"));
/// // The same content served again comes from the cache.
/// let again = server.handle_line(r#"{"id":"r2","kernel":"dmxpy1"}"#);
/// assert!(again.contains("\"cached\":true"));
/// ```
pub struct Server<'s> {
    cfg: ServeConfig,
    cache: Mutex<DecisionCache>,
    sink: &'s dyn TraceSink,
}

impl<'s> Server<'s> {
    /// A server with the given tunables, reporting its counters
    /// (`serve.request`, `serve.cache.hit`/`miss`/`evict`,
    /// `serve.deadline_exceeded`, ...) to `sink`.
    pub fn new(cfg: ServeConfig, sink: &'s dyn TraceSink) -> Server<'s> {
        Server {
            cfg,
            cache: Mutex::new(DecisionCache::new(cfg.cache_capacity)),
            sink,
        }
    }

    fn count(&self, name: &str, value: u64) {
        if self.sink.enabled() && value > 0 {
            self.sink.record(TraceRecord::counter("serve", name, value));
        }
    }

    /// Current decision-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Answers one request line with one reply line (no newline).
    pub fn handle_line(&self, line: &str) -> String {
        self.count("serve.request", 1);
        let reply = match Request::parse(line) {
            Ok(req) => self.process(req),
            Err(reply) => reply,
        };
        match &reply {
            Reply::Ok(_) => self.count("serve.ok", 1),
            Reply::Error(e) => {
                self.count("serve.error", 1);
                if e.kind == ErrorKind::DeadlineExceeded {
                    self.count("serve.deadline_exceeded", 1);
                }
            }
        }
        reply.render()
    }

    /// Answers a batch of request lines, in order, using up to
    /// `cfg.workers` threads.  The output is bitwise-identical to
    /// calling [`Server::handle_line`] on each line sequentially —
    /// scheduling changes *when* a line is answered, never the answer —
    /// except for the `cached` flags of duplicates racing within one
    /// batch.
    pub fn handle_batch(&self, lines: &[String]) -> Vec<String> {
        parallel_map_indexed(lines.len(), self.cfg.workers.max(1), |i| {
            self.handle_line(&lines[i])
        })
    }

    /// Resolves the request's nest, or the structured error reply.
    fn resolve(&self, req: &Request) -> Result<LoopNest, Reply> {
        match &req.source {
            Source::Kernel(name) => ujam_kernels::kernel(name).map(|k| k.nest()).ok_or_else(|| {
                Reply::Error(ErrorReply {
                    id: Some(req.id.clone()),
                    kind: ErrorKind::UnknownKernel,
                    message: format!("unknown kernel {name:?} (try `ujam list`)"),
                    line: None,
                })
            }),
            Source::Inline(src) => ujam_fortran::parse(src).map_err(|e| {
                Reply::Error(ErrorReply {
                    id: Some(req.id.clone()),
                    kind: ErrorKind::Parse,
                    message: e.message.clone(),
                    line: Some(e.line),
                })
            }),
        }
    }

    fn process(&self, req: Request) -> Reply {
        let nest = match self.resolve(&req) {
            Ok(nest) => nest,
            Err(reply) => return reply,
        };
        let key = decision_key(&nest, &req.machine, req.model);
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            self.count("serve.cache.hit", 1);
            return ok_reply(&req.id, hit, true);
        }
        self.count("serve.cache.miss", 1);

        let cancel = match req.deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::never(),
        };
        // The optimizer returns structured errors for every malformed
        // input; `catch_unwind` is the last line of defence so that even
        // a bug in the pipeline answers this one request with an
        // `internal` error instead of killing the daemon.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            optimize_cancellable(&nest, &req.machine, req.model, null_sink(), cancel)
        }));
        let decision = match outcome {
            Ok(Ok(plan)) => Decision::from_plan(&plan),
            Ok(Err(e)) => {
                let kind = match e {
                    OptimizeError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
                    _ => ErrorKind::InvalidNest,
                };
                return Reply::Error(ErrorReply {
                    id: Some(req.id),
                    kind,
                    message: e.to_string(),
                    line: None,
                });
            }
            Err(_) => {
                return Reply::Error(ErrorReply {
                    id: Some(req.id),
                    kind: ErrorKind::Internal,
                    message: "optimizer panicked; the request was dropped".into(),
                    line: None,
                });
            }
        };
        // Only successful decisions are cached — an error (above) has
        // already returned, so a cancelled attempt can never poison the
        // cache for a caller with a looser deadline.
        {
            let mut cache = self.cache.lock().expect("cache lock");
            let before = cache.stats().evictions;
            cache.insert(key, decision.clone());
            let evicted = cache.stats().evictions - before;
            drop(cache);
            self.count("serve.cache.evict", evicted);
        }
        ok_reply(&req.id, decision, false)
    }

    /// The newline-delimited JSON daemon loop.
    ///
    /// A reader thread feeds lines into a queue; the main loop blocks
    /// for the first line, drains up to `batch_max - 1` more that are
    /// already pending, answers the batch in parallel, and writes the
    /// replies in input order.  Blank lines are ignored.  On EOF every
    /// line already read is still answered before the loop returns.
    pub fn run<R, W>(&self, input: R, output: &mut W) -> std::io::Result<()>
    where
        R: BufRead + Send,
        W: Write,
    {
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for line in input.lines() {
                    let Ok(line) = line else { break };
                    if tx.send(line).is_err() {
                        break;
                    }
                }
                // Dropping `tx` is the EOF signal: `recv` below keeps
                // returning queued lines, then disconnects.
            });
            loop {
                let Ok(first) = rx.recv() else { return Ok(()) };
                let mut batch = vec![first];
                while batch.len() < self.cfg.batch_max.max(1) {
                    let Ok(line) = rx.try_recv() else { break };
                    batch.push(line);
                }
                batch.retain(|l| !l.trim().is_empty());
                if batch.is_empty() {
                    continue;
                }
                self.count("serve.batch", 1);
                for reply in self.handle_batch(&batch) {
                    writeln!(output, "{reply}")?;
                }
                output.flush()?;
            }
        })
    }

    /// Serves connections on a Unix domain socket at `path`, one
    /// [`Server::run`] loop per connection on its own scoped thread.
    /// Pre-existing sockets at `path` are replaced.  Runs until the
    /// listener fails (i.e. for the life of the daemon).
    #[cfg(unix)]
    pub fn run_unix(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        std::thread::scope(|scope| {
            for stream in listener.incoming() {
                let stream = stream?;
                scope.spawn(move || {
                    if let Ok(clone) = stream.try_clone() {
                        let mut writer = stream;
                        // A failed connection only ends that connection.
                        let _ = self.run(std::io::BufReader::new(clone), &mut writer);
                    }
                });
            }
            Ok(())
        })
    }
}

fn ok_reply(id: &str, d: Decision, cached: bool) -> Reply {
    Reply::Ok(OkReply {
        id: id.to_string(),
        nest: d.nest,
        unroll: d.unroll,
        balance: d.balance,
        original_balance: d.original_balance,
        registers: d.registers,
        cached,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_trace::{json, CollectingSink};

    fn server(sink: &dyn TraceSink) -> Server<'_> {
        Server::new(
            ServeConfig {
                workers: 2,
                batch_max: 8,
                cache_capacity: 16,
            },
            sink,
        )
    }

    #[test]
    fn kernel_request_round_trips_and_caches() {
        let sink = CollectingSink::new();
        let s = server(&sink);
        let first = s.handle_line(r#"{"id":"a","kernel":"dmxpy1"}"#);
        let doc = json::parse(&first).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(true)));
        assert_eq!(doc.get("cached"), Some(&json::Value::Bool(false)));
        let second = s.handle_line(r#"{"id":"b","kernel":"dmxpy1"}"#);
        let doc = json::parse(&second).expect("valid JSON");
        assert_eq!(doc.get("cached"), Some(&json::Value::Bool(true)));
        let stats = s.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let totals = sink.trace().counter_totals();
        let total = |name: &str| {
            totals
                .iter()
                .find(|(_, n, _)| n == name)
                .map(|(_, _, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(total("serve.request"), 2);
        assert_eq!(total("serve.cache.hit"), 1);
        assert_eq!(total("serve.cache.miss"), 1);
        assert_eq!(total("serve.ok"), 2);
    }

    #[test]
    fn unknown_kernel_and_parse_errors_are_structured() {
        let s = server(null_sink());
        let reply = s.handle_line(r#"{"id":"a","kernel":"nope"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(false)));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(json::Value::as_str),
            Some("unknown_kernel")
        );
        let reply = s.handle_line(r#"{"id":"b","source":"not fortran"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        let err = doc.get("error").expect("error object");
        assert_eq!(err.get("kind").and_then(json::Value::as_str), Some("parse"));
        assert!(err.get("line").and_then(json::Value::as_f64).is_some());
        assert!(s.cache_stats().misses == 0, "errors never touch the cache");
    }

    #[test]
    fn zero_deadline_is_rejected_and_not_cached() {
        let sink = CollectingSink::new();
        let s = server(&sink);
        let reply = s.handle_line(r#"{"id":"a","kernel":"dmxpy1","deadline_ms":0}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(json::Value::as_str),
            Some("deadline_exceeded")
        );
        // The failed attempt must not have poisoned the cache: the same
        // content with no deadline computes fresh (a miss, not a hit).
        let reply = s.handle_line(r#"{"id":"b","kernel":"dmxpy1"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(true)));
        assert_eq!(doc.get("cached"), Some(&json::Value::Bool(false)));
        let totals = sink.trace().counter_totals();
        assert!(totals
            .iter()
            .any(|(_, n, v)| n == "serve.deadline_exceeded" && *v == 1));
    }

    #[test]
    fn inline_source_shares_cache_with_kernel_requests() {
        let s = server(null_sink());
        let emitted = ujam_fortran::emit(&ujam_kernels::kernel("dmxpy1").expect("exists").nest());
        let mut line = String::from(r#"{"id":"a","source":"#);
        ujam_trace::json::write_escaped(&mut line, &emitted);
        line.push('}');
        let first = s.handle_line(&line);
        assert!(first.contains("\"ok\":true"), "{first}");
        // The kernel request hits the entry the inline request warmed iff
        // the emitted source parses back to the identical nest.
        let roundtrip = ujam_fortran::parse(&emitted).expect("emitted source parses");
        let direct = ujam_kernels::kernel("dmxpy1").expect("exists").nest();
        if format!("{roundtrip}") == format!("{direct}") {
            let second = s.handle_line(r#"{"id":"b","kernel":"dmxpy1"}"#);
            assert!(second.contains("\"cached\":true"), "{second}");
        }
    }

    #[test]
    fn run_answers_every_line_and_drains_on_eof() {
        let s = server(null_sink());
        let input = b"{\"id\":\"1\",\"kernel\":\"dmxpy\"}\n\n{\"id\":\"2\",\"kernel\":\"nope\"}\nnot json\n"
            .to_vec();
        let mut out = Vec::new();
        s.run(std::io::Cursor::new(input), &mut out).expect("io ok");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "blank line skipped, three replies:\n{text}");
        for line in &lines {
            json::parse(line).expect("every reply is valid JSON");
        }
        assert!(lines[0].contains("\"id\":\"1\""));
        assert!(lines[1].contains("unknown_kernel"));
        assert!(lines[2].contains("\"id\":null"));
    }
}
