//! The request handler and I/O loops.
//!
//! [`Server`] is the transport-independent core: `handle_line` answers
//! one request string, `handle_batch` fans a slice of lines across the
//! same deterministic worker pool the batch optimizer uses
//! ([`parallel_map_indexed`]), and `run` is the newline-delimited
//! stdin/stdout daemon loop with micro-batching — it blocks for the
//! first pending line, then drains whatever else has already arrived
//! (up to `batch_max`) into one batch, so a pipelining client gets
//! parallelism and an interactive client gets per-line latency.
//!
//! Every failure mode is a structured reply: the daemon never panics on
//! a request, and a client that writes `n` lines always reads exactly
//! `n` replies (blank lines excepted), in order.  On EOF the loop drains
//! everything already queued before returning, so shutdown never drops
//! an accepted request.

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use ujam_core::{optimize_costed, parallel_map_indexed, CancelToken, OptimizeError, SearchConfig};
use ujam_ir::LoopNest;
use ujam_metrics::{Counter, Gauge, Histogram, MetricsHandle, MetricsSnapshot, SeriesCollector};
use ujam_trace::{null_sink, Anomaly, AnomalyReason, TraceRecord, TraceSink};

use crate::cache::{decision_key, CacheStats, Decision};
use crate::flight::{FlightRecorder, TimelineState, DEFAULT_FLIGHT_CAPACITY, DEFAULT_SLOW_MS};
use crate::proto::{
    flight_reply, hello_reply, shutdown_reply, stats_reply, stats_series_reply, AdminCmd,
    AdminRequest, ErrorKind, ErrorReply, Incoming, OkReply, Reply, Request, Source,
    PROTOCOL_VERSION,
};
use crate::shard::ShardedDecisionCache;

/// Tunables for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads for batch handling (clamped to at least 1).
    pub workers: usize,
    /// Most lines folded into one micro-batch.
    pub batch_max: usize,
    /// Decision-cache capacity in entries (0 disables storage).
    pub cache_capacity: usize,
    /// Decision-cache shard count (clamped to at least 1).  One shard
    /// is exactly the PR 4 single-lock cache; N shards split the key
    /// space by content hash so concurrent lookups stop contending.
    pub shards: usize,
    /// Flight-recorder ring capacity in timelines per ring
    /// (`--flight-capacity`).
    pub flight_capacity: usize,
    /// Total latency in milliseconds above which a request is
    /// classified slow and retained in the anomaly ring (`--slow-ms`).
    pub slow_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            batch_max: 32,
            cache_capacity: 256,
            shards: 1,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            slow_ms: DEFAULT_SLOW_MS,
        }
    }
}

/// The optimization service: request parsing, the decision cache, the
/// worker pool, and the I/O loops.
///
/// # Example
///
/// ```
/// use ujam_serve::{ServeConfig, Server};
/// let server = Server::new(ServeConfig::default(), ujam_trace::null_sink());
/// let reply = server.handle_line(r#"{"id":"r1","kernel":"dmxpy1"}"#);
/// assert!(reply.contains("\"ok\":true"));
/// // The same content served again comes from the cache.
/// let again = server.handle_line(r#"{"id":"r2","kernel":"dmxpy1"}"#);
/// assert!(again.contains("\"cached\":true"));
/// ```
pub struct Server<'s> {
    cfg: ServeConfig,
    cache: ShardedDecisionCache,
    sink: &'s dyn TraceSink,
    metrics: Option<ServeMetrics>,
    metrics_handle: MetricsHandle,
    shutdown: AtomicBool,
    flight: FlightRecorder,
    series: Mutex<SeriesCollector>,
    started: Instant,
}

/// The server's metric set, resolved once at construction so the hot
/// path never touches the registry lock — and so every snapshot carries
/// the same metric names (zeros included) no matter how little traffic
/// the daemon has seen.
///
/// Admin lines (`{"cmd":"stats"}`) are counted under
/// `serve.admin_requests`, *not* `serve.requests`, which is what keeps
/// the request counter a stats query returns exactly equal to the
/// replayed batch's ground truth.
struct ServeMetrics {
    handle: MetricsHandle,
    requests: Arc<Counter>,
    admin_requests: Arc<Counter>,
    replies_ok: Arc<Counter>,
    replies_error: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    batches: Arc<Counter>,
    inflight: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    cache_bytes: Arc<Gauge>,
    request_ns: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    cache_lookup_ns: Arc<Histogram>,
    /// Per-shard cache counters (`serve.cache.shard{i}.hits` / `.misses`
    /// / `.evictions`), indexed by shard.  The aggregate `serve.cache.*`
    /// counters above stay authoritative; these expose the shard map so
    /// skew (one hot shard) is visible in a snapshot.
    shard_hits: Vec<Arc<Counter>>,
    shard_misses: Vec<Arc<Counter>>,
    shard_evictions: Vec<Arc<Counter>>,
}

impl ServeMetrics {
    /// Resolves the serve metric set, or `None` for a disabled handle.
    /// Pass-duration histograms are touched eagerly too, so they appear
    /// (empty) in snapshots taken before the first uncached request.
    fn resolve(handle: &MetricsHandle, shards: usize) -> Option<ServeMetrics> {
        let reg = handle.registry()?;
        for pass in [
            "select-loops",
            "build-tables",
            "search-space",
            "apply-transform",
        ] {
            reg.histogram(&format!("pass.{pass}.ns"));
        }
        Some(ServeMetrics {
            handle: handle.clone(),
            requests: reg.counter("serve.requests"),
            admin_requests: reg.counter("serve.admin_requests"),
            replies_ok: reg.counter("serve.replies_ok"),
            replies_error: reg.counter("serve.replies_error"),
            deadline_exceeded: reg.counter("serve.deadline_exceeded"),
            cache_hits: reg.counter("serve.cache.hits"),
            cache_misses: reg.counter("serve.cache.misses"),
            cache_evictions: reg.counter("serve.cache.evictions"),
            batches: reg.counter("serve.batches"),
            inflight: reg.gauge("serve.inflight"),
            queue_depth: reg.gauge("serve.queue_depth"),
            cache_entries: reg.gauge("serve.cache.entries"),
            cache_bytes: reg.gauge("serve.cache.bytes"),
            request_ns: reg.histogram("serve.request_ns"),
            batch_size: reg.histogram("serve.batch_size"),
            cache_lookup_ns: reg.histogram("serve.cache.lookup_ns"),
            shard_hits: (0..shards.max(1))
                .map(|i| reg.counter(&format!("serve.cache.shard{i}.hits")))
                .collect(),
            shard_misses: (0..shards.max(1))
                .map(|i| reg.counter(&format!("serve.cache.shard{i}.misses")))
                .collect(),
            shard_evictions: (0..shards.max(1))
                .map(|i| reg.counter(&format!("serve.cache.shard{i}.evictions")))
                .collect(),
        })
    }
}

impl<'s> Server<'s> {
    /// A server with the given tunables, reporting its counters
    /// (`serve.request`, `serve.cache.hit`/`miss`/`evict`,
    /// `serve.deadline_exceeded`, ...) to `sink`, with metrics
    /// disabled (`{"cmd":"stats"}` answers with an empty snapshot).
    pub fn new(cfg: ServeConfig, sink: &'s dyn TraceSink) -> Server<'s> {
        Server::with_metrics(cfg, sink, MetricsHandle::disabled())
    }

    /// [`Server::new`] with a [`MetricsHandle`]: request/reply counters,
    /// latency and batch-size histograms, cache and in-flight gauges,
    /// and per-pass duration histograms all record into its registry,
    /// and `{"cmd":"stats"}` (the `ujam stats` subcommand) answers with
    /// a versioned snapshot of it.
    pub fn with_metrics(
        cfg: ServeConfig,
        sink: &'s dyn TraceSink,
        metrics: MetricsHandle,
    ) -> Server<'s> {
        Server {
            cfg,
            cache: ShardedDecisionCache::new(cfg.cache_capacity, cfg.shards),
            sink,
            metrics: ServeMetrics::resolve(&metrics, cfg.shards),
            metrics_handle: metrics,
            shutdown: AtomicBool::new(false),
            flight: FlightRecorder::new(cfg.flight_capacity, cfg.slow_ms),
            series: Mutex::new(SeriesCollector::with_default_capacity()),
            started: Instant::now(),
        }
    }

    /// The server's tunables (the reactor reads the worker count).
    pub(crate) fn config(&self) -> ServeConfig {
        self.cfg
    }

    /// The handle the server records into (disabled when built without
    /// metrics); the reactor resolves its connection/queue metrics from
    /// the same registry.
    pub(crate) fn metrics_handle(&self) -> MetricsHandle {
        self.metrics_handle.clone()
    }

    /// Whether a `{"cmd":"shutdown"}` admin line has been answered.
    /// The serve loops poll this and exit cleanly once set.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The flight recorder: the reactor opens timelines against it and
    /// commits them as requests retire; `--trace-chrome` exports it on
    /// shutdown.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Closes one time-series window now (the reactor's ~1 s tick calls
    /// this, and a `{"cmd":"stats","series":true}` line calls it
    /// on-demand so the reply always carries at least one window).
    /// A no-op when the server has no metrics registry.
    pub fn collect_series_window(&self) {
        let Some(reg) = self.metrics_handle.registry() else {
            return;
        };
        let at_ms = self.started.elapsed().as_millis() as u64;
        self.series_lock().collect(reg, at_ms);
    }

    /// The series ring rendered as versioned JSON.
    pub fn series_json(&self) -> String {
        self.series_lock().render_json()
    }

    fn series_lock(&self) -> std::sync::MutexGuard<'_, SeriesCollector> {
        self.series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A point-in-time snapshot of the server's metrics registry (empty
    /// when the server was built without one).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.metrics {
            Some(m) => m.handle.snapshot(),
            None => MetricsHandle::disabled().snapshot(),
        }
    }

    pub(crate) fn count(&self, name: &str, value: u64) {
        if self.sink.enabled() && value > 0 {
            self.sink.record(TraceRecord::counter("serve", name, value));
        }
    }

    /// Current decision-cache counters, summed over every shard.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// One shard's decision-cache counters (`shard < cfg.shards`).
    pub fn cache_shard_stats(&self, shard: usize) -> CacheStats {
        self.cache.shard_stats(shard)
    }

    /// Answers one request line with one reply line (no newline).
    ///
    /// Admin lines (`{"cmd":"stats"}`) are answered from the metrics
    /// registry and counted under `serve.admin_requests`; everything
    /// else — including malformed lines — counts as a request.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_inner(line, None)
    }

    /// [`Server::handle_line`] with lifecycle tracing: stamps the
    /// cache-probe and analysis edges into `state` and captures the
    /// request's identity and outcome as it resolves.  The reply is
    /// byte-identical to the untimed path unless the request opted in
    /// with `"trace":true`, in which case the daemon-assigned trace id
    /// is appended as a final `trace_id` field.
    pub fn handle_line_timed(&self, line: &str, state: &mut TimelineState) -> String {
        self.handle_line_inner(line, Some(state))
    }

    fn handle_line_inner(&self, line: &str, state: Option<&mut TimelineState>) -> String {
        match Incoming::parse(line) {
            Ok(Incoming::Admin(admin)) => self.handle_admin(&admin),
            Ok(Incoming::Optimize(req)) => self.answer(Ok(req), state),
            Err(reply) => self.answer(Err(reply), state),
        }
    }

    /// Answers an admin request (never counted as an optimize request,
    /// so stats snapshots match replay ground truth exactly).
    fn handle_admin(&self, admin: &AdminRequest) -> String {
        if let Some(m) = &self.metrics {
            m.admin_requests.inc();
        }
        match admin.cmd {
            AdminCmd::Stats { series } => {
                let snapshot = self.metrics_snapshot().render_json();
                if series {
                    self.collect_series_window();
                    stats_series_reply(&admin.id, &self.series_json(), &snapshot)
                } else {
                    stats_reply(&admin.id, &snapshot)
                }
            }
            AdminCmd::Flight { slow_only } => {
                flight_reply(&admin.id, &self.flight.snapshot_json(slow_only))
            }
            AdminCmd::Hello { version } => match version {
                Some(v) if v == PROTOCOL_VERSION => hello_reply(&admin.id),
                offered => Reply::Error(ErrorReply {
                    id: Some(admin.id.clone()),
                    kind: ErrorKind::BadVersion,
                    message: match offered {
                        Some(v) => {
                            format!("unsupported protocol version {v} (server speaks {PROTOCOL_VERSION})")
                        }
                        None => format!(
                            "hello requires \"version\" (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                    line: None,
                    retry_ms: None,
                    trace_id: None,
                })
                .render(),
            },
            AdminCmd::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                shutdown_reply(&admin.id)
            }
        }
    }

    /// Answers one parsed (or unparsable) optimize line, with request
    /// accounting: end-to-end latency, in-flight gauge, and ok/error/
    /// deadline counters on both the trace and metrics channels.
    fn answer(
        &self,
        parsed: Result<Request, Reply>,
        mut state: Option<&mut TimelineState>,
    ) -> String {
        self.count("serve.request", 1);
        let t0 = self.metrics.as_ref().map(|m| {
            m.requests.inc();
            m.inflight.add(1);
            Instant::now()
        });
        let trace_echo = matches!(&parsed, Ok(req) if req.trace);
        let deadline_ms = parsed.as_ref().ok().and_then(|r| r.deadline_ms);
        let reply = match parsed {
            Ok(req) => self.process(req, state.as_deref_mut()),
            Err(reply) => reply,
        };
        if let Some(st) = state.as_deref_mut() {
            let t = &mut st.timeline;
            match &reply {
                Reply::Ok(r) => {
                    t.id.clone_from(&r.id);
                    t.nest.clone_from(&r.nest);
                    t.outcome = "ok".to_string();
                    t.cached = r.cached;
                    t.unroll = Some(r.unroll.clone());
                }
                Reply::Error(e) => {
                    if let Some(id) = &e.id {
                        t.id.clone_from(id);
                    }
                    t.outcome = format!("error:{}", e.kind.as_str());
                    if e.kind == ErrorKind::DeadlineExceeded {
                        let detail = match deadline_ms {
                            Some(ms) => format!("deadline_ms={ms}"),
                            None => "deadline elapsed".to_string(),
                        };
                        t.anomaly = Some(Anomaly::new(AnomalyReason::Deadline, detail));
                    }
                }
            }
        }
        match &reply {
            Reply::Ok(_) => self.count("serve.ok", 1),
            Reply::Error(e) => {
                self.count("serve.error", 1);
                if e.kind == ErrorKind::DeadlineExceeded {
                    self.count("serve.deadline_exceeded", 1);
                }
            }
        }
        if let Some(m) = &self.metrics {
            match &reply {
                Reply::Ok(_) => m.replies_ok.inc(),
                Reply::Error(e) => {
                    m.replies_error.inc();
                    if e.kind == ErrorKind::DeadlineExceeded {
                        m.deadline_exceeded.inc();
                    }
                }
            }
            m.inflight.add(-1);
            let elapsed = t0.expect("set with metrics").elapsed().as_nanos() as u64;
            // Tag the latency observation with the trace id so series
            // windows can carry an exemplar pointing back into the
            // flight recorder.
            match state.as_deref() {
                Some(st) => m.request_ns.observe_tagged(elapsed, st.trace_id()),
                None => m.request_ns.observe(elapsed),
            }
        }
        if trace_echo {
            if let Some(st) = state.as_deref() {
                return reply.with_trace_id(Some(st.trace_id())).render();
            }
        }
        reply.render()
    }

    /// Answers a batch of request lines, in order, using up to
    /// `cfg.workers` threads.  The output is bitwise-identical to
    /// calling [`Server::handle_line`] on each line sequentially —
    /// scheduling changes *when* a line is answered, never the answer —
    /// except for the `cached` flags of duplicates racing within one
    /// batch.
    pub fn handle_batch(&self, lines: &[String]) -> Vec<String> {
        if let Some(m) = &self.metrics {
            m.batches.inc();
            m.batch_size.observe(lines.len() as u64);
            m.queue_depth.set(lines.len() as i64);
        }
        let replies = parallel_map_indexed(lines.len(), self.cfg.workers.max(1), |i| {
            self.handle_line(&lines[i])
        });
        if let Some(m) = &self.metrics {
            m.queue_depth.set(0);
        }
        replies
    }

    /// Resolves the request's nest, or the structured error reply.
    fn resolve(&self, req: &Request) -> Result<LoopNest, Reply> {
        match &req.source {
            Source::Kernel(name) => ujam_kernels::kernel(name)
                .map(|k| k.nest())
                .or_else(|| ujam_kernels::deep_kernel(name).map(|k| k.nest()))
                .ok_or_else(|| {
                    Reply::Error(ErrorReply {
                        id: Some(req.id.clone()),
                        kind: ErrorKind::UnknownKernel,
                        message: format!("unknown kernel {name:?} (try `ujam list`)"),
                        line: None,
                        retry_ms: None,
                        trace_id: None,
                    })
                }),
            Source::Inline(src) => ujam_fortran::parse(src).map_err(|e| {
                Reply::Error(ErrorReply {
                    id: Some(req.id.clone()),
                    kind: ErrorKind::Parse,
                    message: e.message.clone(),
                    line: Some(e.line),
                    retry_ms: None,
                    trace_id: None,
                })
            }),
        }
    }

    fn process(&self, req: Request, mut state: Option<&mut TimelineState>) -> Reply {
        let nest = match self.resolve(&req) {
            Ok(nest) => nest,
            Err(reply) => return reply,
        };
        let config = SearchConfig {
            max_unroll_loops: req
                .max_unroll_loops
                .unwrap_or(SearchConfig::default().max_unroll_loops),
            code_budget: req.code_budget,
        };
        let key = decision_key(&nest, &req.machine, req.model, req.cost_model, config);
        let lookup_t0 = self.metrics.as_ref().map(|_| Instant::now());
        if let Some(st) = state.as_deref_mut() {
            st.stamp_cache_probe();
        }
        let (shard, hit) = self.cache.get(&key);
        if let Some(st) = state.as_deref_mut() {
            st.stamp_cache_done();
        }
        if let (Some(m), Some(t0)) = (&self.metrics, lookup_t0) {
            m.cache_lookup_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        if let Some(hit) = hit {
            self.count("serve.cache.hit", 1);
            if let Some(m) = &self.metrics {
                m.cache_hits.inc();
                m.shard_hits[shard].inc();
            }
            return ok_reply(&req.id, hit, true);
        }
        self.count("serve.cache.miss", 1);
        if let Some(m) = &self.metrics {
            m.cache_misses.inc();
            m.shard_misses[shard].inc();
        }

        let cancel = match req.deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::never(),
        };
        // The optimizer returns structured errors for every malformed
        // input; `catch_unwind` is the last line of defence so that even
        // a bug in the pipeline answers this one request with an
        // `internal` error instead of killing the daemon.
        let pass_metrics = self
            .metrics
            .as_ref()
            .map(|m| m.handle.clone())
            .unwrap_or_default();
        if let Some(st) = state.as_deref_mut() {
            st.stamp_analysis_start();
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            optimize_costed(
                &nest,
                &req.machine,
                req.model,
                req.cost_model,
                null_sink(),
                cancel,
                pass_metrics,
                config,
            )
        }));
        if let Some(st) = state {
            st.stamp_analysis_end();
        }
        let decision = match outcome {
            Ok(Ok(plan)) => Decision::from_plan(&plan),
            Ok(Err(e)) => {
                let kind = match e {
                    OptimizeError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
                    _ => ErrorKind::InvalidNest,
                };
                return Reply::Error(ErrorReply {
                    id: Some(req.id),
                    kind,
                    message: e.to_string(),
                    line: None,
                    retry_ms: None,
                    trace_id: None,
                });
            }
            Err(_) => {
                return Reply::Error(ErrorReply {
                    id: Some(req.id),
                    kind: ErrorKind::Internal,
                    message: "optimizer panicked; the request was dropped".into(),
                    line: None,
                    retry_ms: None,
                    trace_id: None,
                });
            }
        };
        // Only successful decisions are cached — an error (above) has
        // already returned, so a cancelled attempt can never poison the
        // cache for a caller with a looser deadline.
        {
            let outcome = self.cache.insert(key, decision.clone());
            self.count("serve.cache.evict", outcome.evicted);
            if let Some(m) = &self.metrics {
                m.cache_evictions.add(outcome.evicted);
                m.shard_evictions[outcome.shard].add(outcome.evicted);
                m.cache_entries.set(self.cache.len() as i64);
                m.cache_bytes.set(self.cache.approx_bytes() as i64);
            }
        }
        ok_reply(&req.id, decision, false)
    }

    /// The newline-delimited JSON daemon loop.
    ///
    /// A reader thread feeds lines into a queue; the main loop blocks
    /// for the first line, drains up to `batch_max - 1` more that are
    /// already pending, answers the batch in parallel, and writes the
    /// replies in input order.  Blank lines are ignored.  On EOF every
    /// line already read is still answered before the loop returns.
    pub fn run<R, W>(&self, input: R, output: &mut W) -> std::io::Result<()>
    where
        R: BufRead + Send,
        W: Write,
    {
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for line in input.lines() {
                    let Ok(line) = line else { break };
                    if tx.send(line).is_err() {
                        break;
                    }
                }
                // Dropping `tx` is the EOF signal: `recv` below keeps
                // returning queued lines, then disconnects.
            });
            loop {
                let Ok(first) = rx.recv() else { return Ok(()) };
                let mut batch = vec![first];
                while batch.len() < self.cfg.batch_max.max(1) {
                    let Ok(line) = rx.try_recv() else { break };
                    batch.push(line);
                }
                batch.retain(|l| !l.trim().is_empty());
                if batch.is_empty() {
                    continue;
                }
                self.count("serve.batch", 1);
                for reply in self.handle_batch(&batch) {
                    writeln!(output, "{reply}")?;
                }
                output.flush()?;
                if self.shutdown_requested() {
                    return Ok(());
                }
            }
        })
    }

    /// Serves connections on a Unix domain socket at `path` through the
    /// event loop ([`crate::reactor`]) with default admission limits.
    /// Pre-existing sockets at `path` are replaced.  Runs until a
    /// `{"cmd":"shutdown"}` admin line arrives.
    ///
    /// Until PR 9 this spawned one blocking [`Server::run`] thread per
    /// connection — which meant an idle client parked a thread forever.
    /// The reactor reaps those with its read timeout instead.
    #[cfg(unix)]
    pub fn run_unix(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        self.run_reactor(
            crate::reactor::Transports {
                tcp: None,
                unix: Some(listener),
            },
            crate::reactor::ReactorConfig::default(),
        )
    }
}

fn ok_reply(id: &str, d: Decision, cached: bool) -> Reply {
    Reply::Ok(OkReply {
        id: id.to_string(),
        nest: d.nest,
        unroll: d.unroll,
        balance: d.balance,
        original_balance: d.original_balance,
        registers: d.registers,
        cached,
        trace_id: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_trace::{json, CollectingSink};

    fn server(sink: &dyn TraceSink) -> Server<'_> {
        Server::new(
            ServeConfig {
                workers: 2,
                batch_max: 8,
                cache_capacity: 16,
                shards: 1,
                ..ServeConfig::default()
            },
            sink,
        )
    }

    #[test]
    fn kernel_request_round_trips_and_caches() {
        let sink = CollectingSink::new();
        let s = server(&sink);
        let first = s.handle_line(r#"{"id":"a","kernel":"dmxpy1"}"#);
        let doc = json::parse(&first).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(true)));
        assert_eq!(doc.get("cached"), Some(&json::Value::Bool(false)));
        let second = s.handle_line(r#"{"id":"b","kernel":"dmxpy1"}"#);
        let doc = json::parse(&second).expect("valid JSON");
        assert_eq!(doc.get("cached"), Some(&json::Value::Bool(true)));
        let stats = s.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let totals = sink.trace().counter_totals();
        let total = |name: &str| {
            totals
                .iter()
                .find(|(_, n, _)| n == name)
                .map(|(_, _, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(total("serve.request"), 2);
        assert_eq!(total("serve.cache.hit"), 1);
        assert_eq!(total("serve.cache.miss"), 1);
        assert_eq!(total("serve.ok"), 2);
    }

    #[test]
    fn unknown_kernel_and_parse_errors_are_structured() {
        let s = server(null_sink());
        let reply = s.handle_line(r#"{"id":"a","kernel":"nope"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(false)));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(json::Value::as_str),
            Some("unknown_kernel")
        );
        let reply = s.handle_line(r#"{"id":"b","source":"not fortran"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        let err = doc.get("error").expect("error object");
        assert_eq!(err.get("kind").and_then(json::Value::as_str), Some("parse"));
        assert!(err.get("line").and_then(json::Value::as_f64).is_some());
        assert!(s.cache_stats().misses == 0, "errors never touch the cache");
    }

    #[test]
    fn zero_deadline_is_rejected_and_not_cached() {
        let sink = CollectingSink::new();
        let s = server(&sink);
        let reply = s.handle_line(r#"{"id":"a","kernel":"dmxpy1","deadline_ms":0}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(json::Value::as_str),
            Some("deadline_exceeded")
        );
        // The failed attempt must not have poisoned the cache: the same
        // content with no deadline computes fresh (a miss, not a hit).
        let reply = s.handle_line(r#"{"id":"b","kernel":"dmxpy1"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(true)));
        assert_eq!(doc.get("cached"), Some(&json::Value::Bool(false)));
        let totals = sink.trace().counter_totals();
        assert!(totals
            .iter()
            .any(|(_, n, v)| n == "serve.deadline_exceeded" && *v == 1));
    }

    #[test]
    fn inline_source_shares_cache_with_kernel_requests() {
        let s = server(null_sink());
        let emitted = ujam_fortran::emit(&ujam_kernels::kernel("dmxpy1").expect("exists").nest());
        let mut line = String::from(r#"{"id":"a","source":"#);
        ujam_trace::json::write_escaped(&mut line, &emitted);
        line.push('}');
        let first = s.handle_line(&line);
        assert!(first.contains("\"ok\":true"), "{first}");
        // The kernel request hits the entry the inline request warmed iff
        // the emitted source parses back to the identical nest.
        let roundtrip = ujam_fortran::parse(&emitted).expect("emitted source parses");
        let direct = ujam_kernels::kernel("dmxpy1").expect("exists").nest();
        if format!("{roundtrip}") == format!("{direct}") {
            let second = s.handle_line(r#"{"id":"b","kernel":"dmxpy1"}"#);
            assert!(second.contains("\"cached\":true"), "{second}");
        }
    }

    fn metric_server(
        sink: &dyn TraceSink,
    ) -> (std::sync::Arc<ujam_metrics::MetricsRegistry>, Server<'_>) {
        let registry = std::sync::Arc::new(ujam_metrics::MetricsRegistry::new());
        let server = Server::with_metrics(
            ServeConfig {
                workers: 2,
                batch_max: 8,
                cache_capacity: 16,
                shards: 1,
                ..ServeConfig::default()
            },
            sink,
            MetricsHandle::new(std::sync::Arc::clone(&registry)),
        );
        (registry, server)
    }

    #[test]
    fn metrics_mirror_request_and_cache_accounting() {
        let (_, s) = metric_server(null_sink());
        s.handle_line(r#"{"id":"a","kernel":"dmxpy1"}"#);
        s.handle_line(r#"{"id":"b","kernel":"dmxpy1"}"#);
        s.handle_line(r#"{"id":"c","kernel":"nope"}"#);
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("serve.requests"), 3);
        assert_eq!(snap.counter("serve.replies_ok"), 2);
        assert_eq!(snap.counter("serve.replies_error"), 1);
        assert_eq!(snap.counter("serve.cache.hits"), 1);
        assert_eq!(snap.counter("serve.cache.misses"), 1);
        assert_eq!(snap.gauge("serve.inflight"), 0, "requests all retired");
        assert_eq!(snap.gauge("serve.cache.entries"), 1);
        assert!(snap.gauge("serve.cache.bytes") > 0);
        let latency = snap.histogram("serve.request_ns").expect("present");
        assert_eq!(latency.count, 3, "every request observed once");
        assert!(latency.sum > 0);
        // The uncached request drove the real pipeline: each pass
        // histogram holds exactly one observation.
        for pass in [
            "select-loops",
            "build-tables",
            "search-space",
            "apply-transform",
        ] {
            let h = snap
                .histogram(&format!("pass.{pass}.ns"))
                .unwrap_or_else(|| panic!("pass.{pass}.ns present"));
            assert_eq!(h.count, 1, "pass.{pass}.ns");
        }
        // Cache lookups happened for both resolvable requests.
        assert_eq!(
            snap.histogram("serve.cache.lookup_ns")
                .expect("present")
                .count,
            2
        );
    }

    #[test]
    fn stats_requests_answer_from_the_registry_without_counting_as_requests() {
        let (_, s) = metric_server(null_sink());
        s.handle_line(r#"{"id":"a","kernel":"dmxpy1"}"#);
        let reply = s.handle_line(r#"{"id":"s1","cmd":"stats"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(true)));
        let stats = doc.get("stats").expect("stats object");
        assert_eq!(
            stats
                .get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(json::Value::as_f64),
            Some(1.0),
            "the stats line itself must not count as a request"
        );
        assert_eq!(
            stats
                .get("counters")
                .and_then(|c| c.get("serve.admin_requests"))
                .and_then(json::Value::as_f64),
            Some(1.0)
        );
        // A second stats call sees the admin counter advance, nothing else.
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("serve.requests"), 1);
        assert_eq!(snap.counter("serve.admin_requests"), 1);
    }

    #[test]
    fn batch_metrics_record_size_and_settle_the_queue_gauge() {
        let (_, s) = metric_server(null_sink());
        let lines: Vec<String> = (0..3)
            .map(|i| format!(r#"{{"id":"r{i}","kernel":"dmxpy1"}}"#))
            .collect();
        s.handle_batch(&lines);
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("serve.batches"), 1);
        assert_eq!(snap.gauge("serve.queue_depth"), 0);
        let sizes = snap.histogram("serve.batch_size").expect("present");
        assert_eq!(sizes.count, 1);
        assert_eq!(sizes.sum, 3);
        assert_eq!(snap.counter("serve.requests"), 3);
    }

    #[test]
    fn metricless_servers_answer_stats_with_an_empty_snapshot() {
        let s = server(null_sink());
        let reply = s.handle_line(r#"{"id":"s","cmd":"stats"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(true)));
        let counters = doc
            .get("stats")
            .and_then(|s| s.get("counters"))
            .expect("counters object");
        assert_eq!(counters, &json::Value::Object(Default::default()));
    }

    /// Replay determinism: serving the same batch to two servers yields
    /// identical snapshots once timing-valued fields are projected out.
    /// One worker, because duplicate requests racing within a batch make
    /// the cache hit/miss split scheduling-dependent by design.
    #[test]
    fn replayed_batches_produce_identical_snapshots_modulo_timing() {
        let run = || {
            let registry = std::sync::Arc::new(ujam_metrics::MetricsRegistry::new());
            let s = Server::with_metrics(
                ServeConfig {
                    workers: 1,
                    batch_max: 8,
                    cache_capacity: 16,
                    shards: 1,
                    ..ServeConfig::default()
                },
                null_sink(),
                MetricsHandle::new(std::sync::Arc::clone(&registry)),
            );
            let lines: Vec<String> = [
                r#"{"id":"1","kernel":"dmxpy1"}"#,
                r#"{"id":"2","kernel":"dmxpy1"}"#,
                r#"{"id":"3","kernel":"nope"}"#,
                r#"not json"#,
            ]
            .iter()
            .map(|l| l.to_string())
            .collect();
            s.handle_batch(&lines);
            s.metrics_snapshot()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.gauges, b.gauges);
        // Histograms: identical names and counts; sums are wall time.
        let names =
            |s: &ujam_metrics::MetricsSnapshot| s.histograms.keys().cloned().collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
        for (name, h) in &a.histograms {
            assert_eq!(h.count, b.histograms[name].count, "{name}");
        }
    }

    #[test]
    fn timed_handling_stamps_edges_and_replies_identically() {
        let (_, s) = metric_server(null_sink());
        let line = r#"{"id":"a","kernel":"dmxpy1"}"#;
        let mut state = s.flight().begin(Instant::now());
        let timed = s.handle_line_timed(line, &mut state);
        // A fresh identical server answers the untimed way: bitwise
        // equal output, tracing on or off.
        let (_, bare) = metric_server(null_sink());
        assert_eq!(
            timed,
            bare.handle_line(line),
            "tracing never changes replies"
        );
        let t = &state.timeline;
        assert_eq!(t.id, "a");
        assert_eq!(t.outcome, "ok");
        assert!(!t.cached);
        assert!(t.unroll.is_some());
        assert!(t.cache_probe.is_some() && t.cache_done.is_some());
        assert!(
            t.analysis_start.is_some() && t.analysis_end.is_some(),
            "a miss runs analysis"
        );
        // A cache hit stamps the probe but never the analysis.
        let mut hit = s.flight().begin(Instant::now());
        s.handle_line_timed(r#"{"id":"b","kernel":"dmxpy1"}"#, &mut hit);
        assert!(hit.timeline.cached);
        assert!(hit.timeline.cache_done.is_some());
        assert!(hit.timeline.analysis_start.is_none());
    }

    #[test]
    fn trace_opt_in_echoes_the_assigned_trace_id() {
        let (_, s) = metric_server(null_sink());
        let mut state = s.flight().begin(Instant::now());
        let reply = s.handle_line_timed(r#"{"id":"a","kernel":"dmxpy1","trace":true}"#, &mut state);
        assert!(reply.ends_with(",\"trace_id\":1}"), "{reply}");
        // Without the opt-in the id is assigned but never echoed.
        let mut state = s.flight().begin(Instant::now());
        let reply = s.handle_line_timed(r#"{"id":"b","kernel":"dmxpy1"}"#, &mut state);
        assert!(!reply.contains("trace_id"), "{reply}");
        assert_eq!(state.trace_id(), 2);
    }

    #[test]
    fn deadline_errors_carry_a_structured_anomaly() {
        let (_, s) = metric_server(null_sink());
        let mut state = s.flight().begin(Instant::now());
        s.handle_line_timed(
            r#"{"id":"a","kernel":"dmxpy1","deadline_ms":0}"#,
            &mut state,
        );
        let anomaly = state.timeline.anomaly.as_ref().expect("classified");
        assert_eq!(anomaly.reason, ujam_trace::AnomalyReason::Deadline);
        assert_eq!(anomaly.detail, "deadline_ms=0");
        assert_eq!(state.timeline.outcome, "error:deadline_exceeded");
    }

    #[test]
    fn flight_admin_lines_answer_from_the_recorder_as_admin_traffic() {
        let (_, s) = metric_server(null_sink());
        let mut state = s.flight().begin(Instant::now());
        s.handle_line_timed(r#"{"id":"a","kernel":"dmxpy1"}"#, &mut state);
        s.flight().commit(state.timeline);
        let reply = s.handle_line(r#"{"id":"f1","cmd":"flight"}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        assert_eq!(doc.get("ok"), Some(&json::Value::Bool(true)));
        let flight = doc.get("flight").expect("flight object");
        assert_eq!(
            flight.get("version").and_then(json::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            flight
                .get("recent")
                .and_then(json::Value::as_array)
                .map(<[_]>::len),
            Some(1)
        );
        let snap = s.metrics_snapshot();
        assert_eq!(
            snap.counter("serve.requests"),
            1,
            "flight is admin, not a request"
        );
        assert_eq!(snap.counter("serve.admin_requests"), 1);
    }

    #[test]
    fn stats_series_replies_carry_windows_with_exemplars() {
        let (_, s) = metric_server(null_sink());
        let mut state = s.flight().begin(Instant::now());
        s.handle_line_timed(r#"{"id":"a","kernel":"dmxpy1"}"#, &mut state);
        let reply = s.handle_line(r#"{"id":"s1","cmd":"stats","series":true}"#);
        let doc = json::parse(&reply).expect("valid JSON");
        let series = doc.get("series").expect("series object");
        assert_eq!(
            series.get("version").and_then(json::Value::as_f64),
            Some(1.0)
        );
        let windows = series
            .get("windows")
            .and_then(json::Value::as_array)
            .expect("windows array");
        assert!(!windows.is_empty(), "on-demand collection yields a window");
        let w = &windows[0];
        assert_eq!(
            w.get("deltas")
                .and_then(|d| d.get("serve.requests"))
                .and_then(json::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            w.get("exemplars")
                .and_then(|e| e.get("serve.request_ns"))
                .and_then(|e| e.get("trace_id"))
                .and_then(json::Value::as_f64),
            Some(1.0),
            "the window's max-latency exemplar names the traced request"
        );
        // The trailing stats object still parses and is final, so
        // clients extracting it textually keep working.
        assert!(doc.get("stats").is_some());
        let at = reply.find("\"stats\":").expect("stats field");
        json::parse(&reply[at + "\"stats\":".len()..reply.len() - 1]).expect("stats extractable");
    }

    #[test]
    fn run_answers_every_line_and_drains_on_eof() {
        let s = server(null_sink());
        let input = b"{\"id\":\"1\",\"kernel\":\"dmxpy\"}\n\n{\"id\":\"2\",\"kernel\":\"nope\"}\nnot json\n"
            .to_vec();
        let mut out = Vec::new();
        s.run(std::io::Cursor::new(input), &mut out).expect("io ok");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "blank line skipped, three replies:\n{text}");
        for line in &lines {
            json::parse(line).expect("every reply is valid JSON");
        }
        assert!(lines[0].contains("\"id\":\"1\""));
        assert!(lines[1].contains("unknown_kernel"));
        assert!(lines[2].contains("\"id\":null"));
    }
}
