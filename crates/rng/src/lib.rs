//! A minimal, dependency-free deterministic PRNG.
//!
//! The workspace builds against an offline registry, so external
//! randomness crates (`rand`, `proptest`) cannot be fetched.  Everything
//! here is seeded and reproducible by construction — the synthetic
//! corpus generator and the deterministic property-style tests both
//! depend on stable streams, so a tiny local generator is the right
//! tool anyway.
//!
//! The core is Steele, Lea & Flood's SplitMix64: a 64-bit
//! counter-with-finalizer generator with a full 2^64 period and
//! excellent statistical quality for non-cryptographic use.
//!
//! # Example
//!
//! ```
//! use ujam_rng::Rng;
//! let mut rng = Rng::new(1997);
//! let a = rng.int(1, 6);
//! assert!((1..=6).contains(&a));
//! // Same seed, same stream.
//! assert_eq!(Rng::new(1997).int(1, 6), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seeded SplitMix64 pseudo-random number generator.
///
/// Streams are a pure function of the seed and the call sequence:
/// identical seeds yield identical values on every platform and build.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.  `n` must be non-zero.
    ///
    /// Uses the multiply-shift reduction, which is unbiased enough for
    /// the small ranges used here and avoids a rejection loop.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index() needs a non-empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi, "int() needs lo <= hi");
        let span = (hi - lo) as u128 + 1;
        lo + (((self.next_u64() as u128) * span) >> 64) as i64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle of a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn int_stays_in_bounds_and_hits_endpoints() {
        let mut rng = Rng::new(42);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.int(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "endpoints should be reachable");
    }

    #[test]
    fn index_covers_small_ranges() {
        let mut rng = Rng::new(1);
        let mut hits = [0usize; 5];
        for _ in 0..5000 {
            hits[rng.index(5)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 500), "roughly uniform: {hits:?}");
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = Rng::new(9);
        let heads = (0..10_000).filter(|_| rng.chance(0.8)).count();
        assert!((7500..8500).contains(&heads), "got {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::new(11);
        let mut v: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 32-element shuffle should move something");
    }
}
