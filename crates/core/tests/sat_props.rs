//! Randomized property tests for the summed-area `Table`: on arbitrary
//! spaces of up to 4 dimensions, the finalized O(1) `prefix_sum` must
//! agree with the naive box enumeration (which is exactly what a raw,
//! un-finalized table computes), the density `get` must survive
//! finalization, and `definalized` must round-trip back to the raw
//! contents.

use ujam_core::{Table, UnrollSpace};
use ujam_rng::Rng;

fn random_space(rng: &mut Rng) -> UnrollSpace {
    let dims = rng.int(1, 4) as usize;
    // Small per-dimension bounds keep the naive oracle (O(N) per query,
    // O(N^2) per sweep) fast while still covering volumes up to 5^4.
    let bounds: Vec<u32> = (0..dims).map(|_| rng.int(0, 4) as u32).collect();
    let loops: Vec<usize> = (0..dims).collect();
    UnrollSpace::with_bounds(dims + 1, &loops, &bounds)
}

fn random_point(rng: &mut Rng, space: &UnrollSpace, slack: i64) -> Vec<u32> {
    space
        .bounds()
        .iter()
        .map(|&b| rng.int(0, b as i64 + slack) as u32)
        .collect()
}

/// Builds a random raw table from a base fill, point writes, and up-set
/// unions — including out-of-box union points, which the frontier
/// writer must drop exactly like the naive membership scan did.
fn random_table(rng: &mut Rng, space: &UnrollSpace) -> Table {
    let mut t = Table::filled(space.clone(), rng.int(-3, 3));
    for _ in 0..rng.int(0, 6) {
        let p = random_point(rng, space, 0);
        t.add(&p, rng.int(-5, 5));
    }
    for _ in 0..rng.int(0, 5) {
        let k = rng.int(1, 5) as usize;
        let points: Vec<Vec<u32>> = (0..k).map(|_| random_point(rng, space, 2)).collect();
        t.add_upset_union(&points, rng.int(-4, 4));
    }
    t
}

#[test]
fn finalized_prefix_sum_matches_naive_box_enumeration() {
    let mut rng = Rng::new(0x5a77_ab1e);
    for case in 0..64 {
        let space = random_space(&mut rng);
        let raw = random_table(&mut rng, &space);
        let mut sat = raw.clone();
        sat.finalize();
        space.for_each_offset(|u| {
            assert_eq!(
                sat.prefix_sum(u),
                raw.prefix_sum(u),
                "case {case}: Sum({u:?}) over bounds {:?}",
                space.bounds()
            );
            assert_eq!(sat.get(u), raw.get(u), "case {case}: density at {u:?}");
        });
    }
}

#[test]
fn definalize_round_trips_every_random_table() {
    let mut rng = Rng::new(0xd00d_f00d);
    for case in 0..32 {
        let space = random_space(&mut rng);
        let raw = random_table(&mut rng, &space);
        let mut sat = raw.clone();
        sat.finalize();
        let back = sat.definalized();
        assert!(!back.is_finalized());
        space.for_each_offset(|u| {
            assert_eq!(back.get(u), raw.get(u), "case {case}: density at {u:?}");
            assert_eq!(
                back.prefix_sum(u),
                raw.prefix_sum(u),
                "case {case}: Sum({u:?})"
            );
        });
    }
}
