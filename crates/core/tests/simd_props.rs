//! SIMD ≡ scalar equivalence properties for the flat summed-area
//! `Table` kernels.
//!
//! Every vector kernel behind `finalize`, `get`, `prefix_sum` and
//! `add_upset_union` must be *bitwise* interchangeable with the
//! canonical scalar loops — the winners of the unroll search may not
//! depend on which instruction set happened to be detected.  The tests
//! force each dispatch level in turn (`with_forced_level` clamps to
//! what the host actually supports, so the suite passes — vacuously at
//! the scalar level — on any machine and with the `simd` feature off)
//! and demand exact `i64` equality against the scalar result.
//!
//! All randomness is seeded `ujam-rng`: identical streams on every
//! platform and build.

use ujam_core::simd::{active_level, with_forced_level, Level};
use ujam_core::{Table, UnrollSpace};
use ujam_rng::Rng;

/// Random spaces of 1–5 dimensions.  Bounds are biased toward small
/// values and include 0 (a length-1 axis) with real probability, so the
/// degenerate shapes ride along in every sweep.
fn random_space(rng: &mut Rng) -> UnrollSpace {
    let dims = rng.int(1, 5) as usize;
    let bounds: Vec<u32> = (0..dims)
        .map(|_| {
            if rng.chance(0.25) {
                0
            } else {
                rng.int(1, 4) as u32
            }
        })
        .collect();
    let loops: Vec<usize> = (0..dims).collect();
    UnrollSpace::with_bounds(dims + 1, &loops, &bounds)
}

fn random_point(rng: &mut Rng, space: &UnrollSpace, slack: i64) -> Vec<u32> {
    space
        .bounds()
        .iter()
        .map(|&b| rng.int(0, b as i64 + slack) as u32)
        .collect()
}

/// A raw table built from a base fill, point writes, and up-set unions
/// of both small point sets (the inclusion–exclusion path) and large
/// ones (the dense scan-and-mask fallback).
fn random_table(rng: &mut Rng, space: &UnrollSpace) -> Table {
    let mut t = Table::filled(space.clone(), rng.int(-3, 3));
    for _ in 0..rng.int(0, 6) {
        let p = random_point(rng, space, 0);
        t.add(&p, rng.int(-5, 5));
    }
    for _ in 0..rng.int(0, 4) {
        // Up to 16 seed points: enough joins to overflow the
        // inclusion–exclusion budget and exercise the dense fallback.
        let k = rng.int(1, 16) as usize;
        let points: Vec<Vec<u32>> = (0..k).map(|_| random_point(rng, space, 2)).collect();
        t.add_upset_union(&points, rng.int(-4, 4));
    }
    t
}

/// Finalizes a clone of `raw` under the forced level and reads back
/// every query the search performs: the density (`get`), the summed
/// prefix (`prefix_sum`), and the flat-indexed prefix.
fn finalize_and_read(raw: &Table, level: Level) -> (Table, Vec<i64>, Vec<i64>) {
    with_forced_level(level, || {
        let mut t = raw.clone();
        t.finalize();
        let space = t.space().clone();
        let mut gets = Vec::with_capacity(space.len());
        let mut sums = Vec::with_capacity(space.len());
        let mut flat = 0usize;
        space.for_each_offset(|u| {
            gets.push(t.get(u));
            sums.push(t.prefix_sum(u));
            assert_eq!(t.prefix_sum(u), t.prefix_sum_flat(flat));
            flat += 1;
        });
        (t, gets, sums)
    })
}

#[test]
fn finalize_get_prefix_sum_agree_bitwise_across_levels() {
    let mut rng = Rng::new(0x513d_0001);
    for case in 0..48 {
        let space = random_space(&mut rng);
        let raw = random_table(&mut rng, &space);
        let (scalar_t, scalar_gets, scalar_sums) = finalize_and_read(&raw, Level::Scalar);
        // The scalar finalized sums must also match the raw (naive box
        // enumeration) oracle, so "all levels agree" can't mean "all
        // levels share a bug".
        let mut i = 0usize;
        space.for_each_offset(|u| {
            assert_eq!(
                scalar_sums[i],
                raw.prefix_sum(u),
                "case {case}: oracle at {u:?}"
            );
            i += 1;
        });
        for level in [Level::Sse2, Level::Avx2] {
            let (t, gets, sums) = finalize_and_read(&raw, level);
            assert_eq!(
                gets,
                scalar_gets,
                "case {case}: get() diverges at {level:?} on bounds {:?}",
                space.bounds()
            );
            assert_eq!(
                sums,
                scalar_sums,
                "case {case}: prefix_sum() diverges at {level:?} on bounds {:?}",
                space.bounds()
            );
            // The buffers themselves — not just the query results —
            // must be identical, corners map included.
            assert_eq!(
                t, scalar_t,
                "case {case}: finalized tables differ at {level:?}"
            );
        }
    }
}

#[test]
fn add_upset_union_agrees_bitwise_across_levels() {
    let mut rng = Rng::new(0x513d_0002);
    for case in 0..48 {
        let space = random_space(&mut rng);
        let fill = rng.int(-2, 2);
        let k = rng.int(1, 16) as usize;
        let points: Vec<Vec<u32>> = (0..k).map(|_| random_point(&mut rng, &space, 2)).collect();
        let delta = rng.int(-4, 4);
        let build = |level: Level| {
            with_forced_level(level, || {
                let mut t = Table::filled(space.clone(), fill);
                t.add_upset_union(&points, delta);
                t
            })
        };
        let scalar_t = build(Level::Scalar);
        for level in [Level::Sse2, Level::Avx2] {
            assert_eq!(
                build(level),
                scalar_t,
                "case {case}: union of {k} points diverges at {level:?} on bounds {:?}",
                space.bounds()
            );
        }
    }
}

#[test]
fn definalize_round_trips_at_every_level() {
    let mut rng = Rng::new(0x513d_0003);
    for case in 0..24 {
        let space = random_space(&mut rng);
        let raw = random_table(&mut rng, &space);
        let round_trip = |level: Level| {
            with_forced_level(level, || {
                let mut t = raw.clone();
                t.finalize();
                t.definalized()
            })
        };
        // The scalar round-trip must agree with the raw table on every
        // query (the raw side may still hold unflushed pending writes,
        // so query equivalence — not buffer equality — is the oracle).
        let scalar_back = round_trip(Level::Scalar);
        space.for_each_offset(|u| {
            assert_eq!(
                scalar_back.get(u),
                raw.get(u),
                "case {case}: density at {u:?}"
            );
            assert_eq!(
                scalar_back.prefix_sum(u),
                raw.prefix_sum(u),
                "case {case}: Sum({u:?})"
            );
        });
        // Across levels the flushed buffers must be bitwise identical.
        for level in [Level::Sse2, Level::Avx2] {
            assert_eq!(
                round_trip(level),
                scalar_back,
                "case {case}: round-trip diverges at {level:?}"
            );
        }
    }
}

/// Degenerate shapes, exhaustively rather than by chance: every-axis-
/// length-one boxes (dims 1–5) and the zero-dimensional space, where
/// all four operations collapse to a single cell.
#[test]
fn degenerate_shapes_agree_across_levels() {
    let mut cases: Vec<UnrollSpace> = (1..=5)
        .map(|dims| {
            let loops: Vec<usize> = (0..dims).collect();
            UnrollSpace::with_bounds(dims + 1, &loops, &vec![0; dims])
        })
        .collect();
    cases.push(UnrollSpace::with_bounds(1, &[], &[]));
    for space in cases {
        assert_eq!(space.len(), 1);
        let zero = vec![0u32; space.dims()];
        let scalar = with_forced_level(Level::Scalar, || {
            let mut t = Table::filled(space.clone(), 7);
            t.add_upset_union(std::slice::from_ref(&zero), 2);
            t.finalize();
            (t.get(&zero), t.prefix_sum(&zero), t.prefix_sum_flat(0))
        });
        assert_eq!(scalar, (9, 9, 9), "dims {}", space.dims());
        for level in [Level::Sse2, Level::Avx2] {
            let got = with_forced_level(level, || {
                let mut t = Table::filled(space.clone(), 7);
                t.add_upset_union(std::slice::from_ref(&zero), 2);
                t.finalize();
                (t.get(&zero), t.prefix_sum(&zero), t.prefix_sum_flat(0))
            });
            assert_eq!(got, scalar, "dims {} at {level:?}", space.dims());
        }
    }
}

/// The runtime-detect "feature absent" path: forcing scalar must
/// actually dispatch scalar (`active_level` reports it) and produce the
/// canonical results even when the host supports wider levels.
#[test]
fn forced_scalar_models_feature_absent_host() {
    let level = with_forced_level(Level::Scalar, active_level);
    assert_eq!(level, Level::Scalar);
    let mut rng = Rng::new(0x513d_0004);
    let space = random_space(&mut rng);
    let raw = random_table(&mut rng, &space);
    let forced = finalize_and_read(&raw, Level::Scalar);
    // Scalar forced twice is deterministic — and, per the sweeps above,
    // identical to every wider level; this pins the plumbing itself.
    assert_eq!(finalize_and_read(&raw, Level::Scalar), forced);
}
