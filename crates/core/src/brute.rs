//! The brute-force comparator (§5.3): Wolf, Maydan & Chen's approach.
//!
//! Instead of precomputing tables, this method *materialises* every
//! candidate unrolled loop body, runs scalar replacement and the reuse
//! analysis on it, and evaluates the metric — "exhaustively trying each
//! unroll amount and computing their performance metric for each potential
//! new loop body".  It produces the same decisions as the table-driven
//! optimizer (that equivalence is a test), but costs a full re-analysis
//! per candidate; `ujam-bench` measures the gap, reproducing the paper's
//! argument for the table method.
//!
//! Within the pipeline this search lives in
//! [`crate::pipeline::BruteSearch`], a drop-in alternative to the
//! table-driven [`crate::pipeline::SearchSpace`] stage; the free
//! functions here are the standalone entry points.

use crate::balance::{loop_balance, BalanceInputs};
use crate::driver::{Optimized, Prediction};
use crate::pipeline::{AnalysisCtx, ApplyTransform, BruteSearch, OptimizeError, Pass};
use crate::space::UnrollSpace;
use ujam_ir::transform::{scalar_replacement, unroll_and_jam, TransformError};
use ujam_ir::LoopNest;
use ujam_machine::MachineModel;
use ujam_reuse::{nest_cache_cost, Localized};

/// Evaluates the balance inputs of one candidate by actually transforming
/// the loop: unroll-and-jam, scalar replacement, Equation 1 on the result.
///
/// Fails with the underlying [`TransformError`] when the unroll vector
/// cannot be applied (illegal under the dependence analysis, wrong
/// length, and so on).
pub fn measure_candidate(
    nest: &LoopNest,
    unroll: &[u32],
    machine: &MachineModel,
) -> Result<BalanceInputs, TransformError> {
    let transformed = unroll_and_jam(nest, unroll)?;
    let replaced = scalar_replacement(&transformed);
    let l = Localized::innermost(nest.depth());
    Ok(BalanceInputs {
        flops: transformed.flops_per_iter() as f64,
        memory_ops: replaced.stats.memory_ops() as f64,
        cache_lines: nest_cache_cost(&transformed, &l, machine.line_elems()),
        registers: replaced.stats.registers as i64,
    })
}

/// Exhaustive search over the unroll space, re-analysing every candidate.
///
/// Mirrors [`crate::optimize_in_space`]'s objective exactly so the two
/// can be compared both for agreement (correctness) and cost (the
/// ablation benchmark).  Runs the [`BruteSearch`] pipeline stage followed
/// by [`ApplyTransform`].
pub fn optimize_brute(
    nest: &LoopNest,
    machine: &MachineModel,
    space: &UnrollSpace,
) -> Result<Optimized, OptimizeError> {
    optimize_brute_traced(nest, machine, space, ujam_trace::null_sink())
}

/// [`optimize_brute`] with a trace sink: the brute-force search emits
/// the same span/counter/explain records as the table-driven pipeline,
/// so the two methods' decisions can be audited candidate by candidate
/// (the §5.3 comparison, per vector).
pub fn optimize_brute_traced(
    nest: &LoopNest,
    machine: &MachineModel,
    space: &UnrollSpace,
    sink: &dyn ujam_trace::TraceSink,
) -> Result<Optimized, OptimizeError> {
    let mut ctx = AnalysisCtx::with_sink(nest, machine, sink)?;
    let found = BruteSearch {
        space: space.clone(),
        code_budget: None,
    }
    .run_traced(&mut ctx)?;
    let nest_out = ApplyTransform {
        unroll: found.unroll.clone(),
    }
    .run_traced(&mut ctx)?;
    Ok(Optimized {
        nest: nest_out,
        unroll: found.unroll,
        predicted: found.predicted,
        original: found.original,
        space: space.clone(),
    })
}

/// Evaluates a candidate with the *dependence-based* reuse model (Carr,
/// PACT'96 — the paper's reference \[1\]): cache lines are derived from the
/// transformed loop's dependence graph, **input dependences included**,
/// instead of from uniformly generated sets.
///
/// Returns the balance inputs plus the bytes of dependence graph the
/// analysis had to build — the storage the UGS model avoids (§5.1).
pub fn measure_candidate_depbased(
    nest: &LoopNest,
    unroll: &[u32],
    machine: &MachineModel,
) -> Result<(BalanceInputs, usize), TransformError> {
    let transformed = unroll_and_jam(nest, unroll)?;
    let replaced = scalar_replacement(&transformed);
    let l = Localized::innermost(nest.depth());
    let graph = ujam_dep::DepGraph::build(&transformed);
    let bytes = graph.stats().bytes_all;
    let lines =
        ujam_reuse::depbased::dep_cache_cost(&transformed, &graph, &l, machine.line_elems());
    Ok((
        BalanceInputs {
            flops: transformed.flops_per_iter() as f64,
            memory_ops: replaced.stats.memory_ops() as f64,
            cache_lines: lines,
            registers: replaced.stats.registers as i64,
        },
        bytes,
    ))
}

/// The paper's *previous-work* optimizer: exhaustive search scored by the
/// dependence-based reuse model.  Also reports the total dependence-graph
/// bytes consumed across the search — the §5.1 cost the UGS tables avoid.
pub fn optimize_depbased(
    nest: &LoopNest,
    machine: &MachineModel,
    space: &UnrollSpace,
) -> Result<(Optimized, usize), OptimizeError> {
    // Validation mirrors `AnalysisCtx::new` so this comparator is as
    // panic-free on bad input as the pipeline proper.
    nest.validate().map_err(OptimizeError::InvalidNest)?;
    if nest.depth() == 0 {
        return Err(OptimizeError::EmptyNest);
    }
    if space.depth() != nest.depth() {
        return Err(OptimizeError::DepthMismatch {
            nest: nest.depth(),
            space: space.depth(),
        });
    }
    let beta_m = machine.balance();
    let regs = machine.registers_for_replacement() as i64;

    let zero = vec![0u32; space.dims()];
    let (original, mut graph_bytes) =
        measure_candidate_depbased(nest, &space.full_vector(&zero), machine)
            .map_err(OptimizeError::Transform)?;
    let mut best = zero;
    let mut best_inputs = original;
    let mut best_score = (f64::INFINITY, usize::MAX);
    // One full-vector scratch for the whole walk, refilled in place per
    // candidate (the write is two tiny loops; the transform dominates).
    let mut full = vec![0u32; space.depth()];
    space.for_each_offset(|u| {
        space.write_full_vector(u, &mut full);
        let Ok((inputs, bytes)) = measure_candidate_depbased(nest, &full, machine) else {
            return;
        };
        graph_bytes += bytes;
        if inputs.registers > regs {
            return;
        }
        let beta = loop_balance(&inputs, machine);
        let score = ((beta - beta_m).abs(), space.copies(u));
        if score.0 < best_score.0 - 1e-12
            || ((score.0 - best_score.0).abs() <= 1e-12 && score.1 < best_score.1)
        {
            best_score = score;
            best = u.to_vec();
            best_inputs = inputs;
        }
    });

    let unroll = space.full_vector(&best);
    let nest_out = unroll_and_jam(nest, &unroll).map_err(OptimizeError::Transform)?;
    Ok((
        Optimized {
            nest: nest_out,
            unroll,
            predicted: Prediction::from_inputs(&best_inputs, machine),
            original: Prediction::from_inputs(&original, machine),
            space: space.clone(),
        },
        graph_bytes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::optimize_in_space;
    use ujam_ir::NestBuilder;

    /// The headline correctness claim: the table-driven optimizer and the
    /// materialise-everything optimizer agree — the tables are not an
    /// approximation on the paper's loop class.
    #[test]
    fn table_and_brute_optimizers_agree() {
        let kernels = vec![
            NestBuilder::new("intro")
                .array("A", &[242])
                .array("B", &[242])
                .loop_("J", 1, 240)
                .loop_("I", 1, 240)
                .stmt("A(J) = A(J) + B(I)")
                .build(),
            NestBuilder::new("dmxpy")
                .array("Y", &[242])
                .array("X", &[242])
                .array("M", &[242, 242])
                .loop_("J", 1, 240)
                .loop_("I", 1, 240)
                .stmt("Y(I) = Y(I) + X(J) * M(I,J)")
                .build(),
            NestBuilder::new("stencil")
                .array("A", &[244, 244])
                .array("B", &[244, 244])
                .loop_("J", 2, 241)
                .loop_("I", 2, 241)
                .stmt("B(I,J) = A(I,J-1) + A(I,J) + A(I,J+1) + A(I-1,J)")
                .build(),
        ];
        for machine in [MachineModel::dec_alpha(), MachineModel::hp_parisc()] {
            for nest in &kernels {
                let space = UnrollSpace::new(nest.depth(), &[0], 5);
                let table = optimize_in_space(nest, &machine, &space).expect("valid nest");
                let brute = optimize_brute(nest, &machine, &space).expect("valid nest");
                assert_eq!(
                    table.unroll,
                    brute.unroll,
                    "{} on {}: table {:?} vs brute {:?}",
                    nest.name(),
                    machine.name(),
                    table.unroll,
                    brute.unroll
                );
                assert!(
                    (table.predicted.balance - brute.predicted.balance).abs() < 1e-9,
                    "{}: predicted balances diverge",
                    nest.name()
                );
            }
        }
    }

    #[test]
    fn brute_respects_divisibility() {
        // Trip 7 (prime): only u = 0 and u = 6 divide.
        let nest = NestBuilder::new("prime")
            .array("A", &[9])
            .array("B", &[9])
            .loop_("J", 1, 7)
            .loop_("I", 1, 7)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let space = UnrollSpace::new(2, &[0], 5);
        let plan = optimize_brute(&nest, &MachineModel::dec_alpha(), &space).expect("valid nest");
        assert!(plan.unroll[0] == 0, "no legal divisor within bound 5");
    }

    #[test]
    fn brute_rejects_depth_mismatch() {
        let nest = NestBuilder::new("d")
            .array("A", &[9])
            .loop_("I", 1, 7)
            .stmt("A(I) = A(I) + 1.0")
            .build();
        let space = UnrollSpace::new(2, &[0], 5);
        let err = optimize_brute(&nest, &MachineModel::dec_alpha(), &space).unwrap_err();
        assert_eq!(err, OptimizeError::DepthMismatch { nest: 1, space: 2 });
    }
}
