//! The named pass stages of the optimizer pipeline.

use std::rc::Rc;

use crate::balance::{loop_balance, BalanceInputs};
use crate::brute::measure_candidate;
use crate::driver::{CostModel, Prediction};
use crate::pipeline::{AnalysisCtx, OptimizeError};
use crate::space::UnrollSpace;
use crate::tables::CostTables;
use ujam_dep::UNROLL_CAP;
use ujam_ir::{transform::unroll_and_jam, LoopNest};
use ujam_machine::MachineModel;

/// One stage of the optimizer pipeline.
///
/// A pass borrows the shared [`AnalysisCtx`] mutably (so its queries
/// are memoized across stages) and returns an owned product, which
/// keeps the stages independently runnable and swappable — see
/// [`BruteSearch`] for a drop-in [`SearchSpace`] alternative.
pub trait Pass {
    /// The stage's product.
    type Output;

    /// The stage's name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the stage against the shared context.
    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<Self::Output, OptimizeError>;
}

/// Stage 1 (§4.5): pick up to two loops to unroll — the loops whose
/// localization removes the most cache traffic by Equation 1 — bounded
/// by the dependence-safety limits, and box them into an
/// [`UnrollSpace`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SelectLoops;

impl Pass for SelectLoops {
    type Output = UnrollSpace;

    fn name(&self) -> &'static str {
        "select-loops"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<UnrollSpace, OptimizeError> {
        let depth = ctx.nest().depth();
        let line = ctx.machine().line_elems();
        let bounds = ctx.safe_bounds().to_vec();
        let mut scored: Vec<(usize, f64)> = (0..depth.saturating_sub(1))
            .filter(|&l| bounds[l] >= 1)
            .map(|l| (l, ctx.locality_score(l, line)))
            .collect();
        // Highest locality benefit first; ties prefer outer position.
        // `total_cmp` keeps the sort total even if a degenerate nest
        // yields a non-finite score (the seed's `partial_cmp(..).expect`
        // panicked there).
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut chosen: Vec<usize> = scored
            .iter()
            .filter(|&&(_, s)| s > 0.0)
            .take(2)
            .map(|&(l, _)| l)
            .collect();
        // A memory-bound loop can still profit from pure flop replication
        // (merging loads of invariant or group-reusing references); keep at
        // least one candidate when any loop is jammable.
        if chosen.is_empty() {
            if let Some(&(l, _)) = scored.first() {
                chosen.push(l);
            }
        }
        chosen.sort_unstable();
        // Each chosen loop searches up to its own safety bound, capped
        // for tractability.
        let per_loop: Vec<u32> = chosen
            .iter()
            .map(|&l| bounds[l].min(UNROLL_CAP).min(8))
            .collect();
        Ok(UnrollSpace::with_bounds(depth, &chosen, &per_loop))
    }
}

/// Stage 2 (§4.2–§4.4): build (or fetch from the context cache) the
/// GTS/GSS/RRS/register tables for an unroll space.
#[derive(Clone, Debug)]
pub struct BuildTables {
    /// The space to tabulate.
    pub space: UnrollSpace,
}

impl Pass for BuildTables {
    type Output = Rc<CostTables>;

    fn name(&self) -> &'static str {
        "build-tables"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<Rc<CostTables>, OptimizeError> {
        ctx.tables(&self.space)
    }
}

/// What a search stage found: the winning offset, its full per-loop
/// unroll vector, and the predicted behaviour before and after.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The winning offset in space coordinates.
    pub offset: Vec<u32>,
    /// The winning offset embedded as a full per-nest-loop vector.
    pub unroll: Vec<u32>,
    /// Predicted behaviour at the chosen vector.
    pub predicted: Prediction,
    /// Predicted behaviour of the original loop (`u = 0`).
    pub original: Prediction,
}

/// Shared search objective (§3.3): minimize `|β − β_M|` subject to the
/// register budget, ties preferring fewer body copies.  Returns the
/// winning offset and its inputs (`None` when nothing beat `u = 0`).
fn search_over(
    machine: &MachineModel,
    space: &UnrollSpace,
    mut inputs_at: impl FnMut(&[u32]) -> Option<BalanceInputs>,
    beta_of: impl Fn(&BalanceInputs) -> f64,
    divisible: impl Fn(&[u32]) -> bool,
) -> (Vec<u32>, Option<BalanceInputs>) {
    let beta_m = machine.balance();
    let regs = machine.registers_for_replacement() as i64;
    let zero = vec![0u32; space.dims()];
    let mut best = zero;
    let mut best_inputs = None;
    let mut best_score = (f64::INFINITY, usize::MAX);
    for u in space.offsets() {
        if !divisible(&u) {
            continue;
        }
        let Some(inputs) = inputs_at(&u) else {
            continue;
        };
        if inputs.registers > regs {
            continue;
        }
        let beta = beta_of(&inputs);
        let score = ((beta - beta_m).abs(), space.copies(&u));
        if score.0 < best_score.0 - 1e-12
            || ((score.0 - best_score.0).abs() <= 1e-12 && score.1 < best_score.1)
        {
            best_score = score;
            best = u;
            best_inputs = Some(inputs);
        }
    }
    (best, best_inputs)
}

/// Stage 3 (§4.5): search the unroll space for the offset minimizing
/// `|β_L(u) − β_M|` subject to the register constraint, scoring
/// candidates from the precomputed tables.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// The space to search.
    pub space: UnrollSpace,
    /// Which balance model scores candidates.
    pub model: CostModel,
}

impl Pass for SearchSpace {
    type Output = SearchOutcome;

    fn name(&self) -> &'static str {
        "search-space"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<SearchOutcome, OptimizeError> {
        let tables = BuildTables {
            space: self.space.clone(),
        }
        .run(ctx)?;
        let nest = ctx.nest();
        let machine = ctx.machine();
        let space = &self.space;
        let model = self.model;

        let inputs_at = |u: &[u32]| BalanceInputs {
            flops: tables.flops(u) as f64,
            memory_ops: tables.memory_ops(u) as f64,
            cache_lines: tables.cache_lines(u),
            registers: tables.registers(u),
        };
        // The factors must divide the trip counts for a clean transform.
        let divisible = |u: &[u32]| {
            space
                .loops()
                .iter()
                .zip(u)
                .all(|(&l, &ul)| nest.loops()[l].trip_count() % (ul as i64 + 1) == 0)
        };
        let beta_of = |inputs: &BalanceInputs| match model {
            CostModel::AllHits => inputs.no_cache_balance(),
            CostModel::CacheAware => loop_balance(inputs, machine),
        };

        let zero = vec![0u32; space.dims()];
        let original = inputs_at(&zero);
        let (best, best_inputs) =
            search_over(machine, space, |u| Some(inputs_at(u)), beta_of, divisible);
        let predicted = best_inputs.unwrap_or(original);
        Ok(SearchOutcome {
            unroll: space.full_vector(&best),
            offset: best,
            predicted: Prediction::from_inputs(&predicted, machine),
            original: Prediction::from_inputs(&original, machine),
        })
    }
}

/// A drop-in [`SearchSpace`] alternative implementing Wolf, Maydan &
/// Chen's approach (§5.3): materialise every candidate body, run scalar
/// replacement and the reuse analysis on it, and score the result.
///
/// Same objective, same tie-breaking — the equivalence of the two
/// search stages is the paper's headline correctness claim and a test.
#[derive(Clone, Debug)]
pub struct BruteSearch {
    /// The space to search.
    pub space: UnrollSpace,
}

impl Pass for BruteSearch {
    type Output = SearchOutcome;

    fn name(&self) -> &'static str {
        "brute-search"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<SearchOutcome, OptimizeError> {
        let nest = ctx.nest();
        let machine = ctx.machine();
        let space = &self.space;
        if space.depth() != nest.depth() {
            return Err(OptimizeError::DepthMismatch {
                nest: nest.depth(),
                space: space.depth(),
            });
        }

        let zero = vec![0u32; space.dims()];
        let original = measure_candidate(nest, &space.full_vector(&zero), machine)
            .map_err(OptimizeError::Transform)?;
        let (best, best_inputs) = search_over(
            machine,
            space,
            |u| measure_candidate(nest, &space.full_vector(u), machine).ok(),
            |inputs| loop_balance(inputs, machine),
            |_| true,
        );
        let predicted = best_inputs.unwrap_or(original);
        Ok(SearchOutcome {
            unroll: space.full_vector(&best),
            offset: best,
            predicted: Prediction::from_inputs(&predicted, machine),
            original: Prediction::from_inputs(&original, machine),
        })
    }
}

/// Stage 4: apply the winning unroll vector with real unroll-and-jam.
#[derive(Clone, Debug)]
pub struct ApplyTransform {
    /// The full per-nest-loop unroll vector to apply.
    pub unroll: Vec<u32>,
}

impl Pass for ApplyTransform {
    type Output = LoopNest;

    fn name(&self) -> &'static str {
        "apply-transform"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<LoopNest, OptimizeError> {
        unroll_and_jam(ctx.nest(), &self.unroll).map_err(OptimizeError::Transform)
    }
}
