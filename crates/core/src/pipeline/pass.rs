//! The named pass stages of the optimizer pipeline.

use std::rc::Rc;
use std::time::Instant;

use crate::balance::{loop_balance, BalanceInputs};
use crate::brute::measure_candidate;
use crate::costmodel::CostModelKind;
use crate::driver::{BalanceModel, Prediction};
use crate::pipeline::batch::parallel_map_indexed;
use crate::pipeline::cancel::{CancelToken, DEADLINE_CHECK_STRIDE};
use crate::pipeline::{AnalysisCtx, OptimizeError};
use crate::space::UnrollSpace;
use crate::tables::CostTables;
use ujam_dep::UNROLL_CAP;
use ujam_ir::{transform::unroll_and_jam, LoopNest};
use ujam_machine::MachineModel;
use ujam_reuse::{ugs_cost, Localized};
use ujam_trace::{ExplainRecord, TraceRecord, Verdict};

/// One stage of the optimizer pipeline.
///
/// A pass borrows the shared [`AnalysisCtx`] mutably (so its queries
/// are memoized across stages) and returns an owned product, which
/// keeps the stages independently runnable and swappable — see
/// [`BruteSearch`] for a drop-in [`SearchSpace`] alternative.
pub trait Pass {
    /// The stage's product.
    type Output;

    /// The stage's name, for diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the stage against the shared context.
    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<Self::Output, OptimizeError>;

    /// Runs the stage, emitting a wall-time span to the context's trace
    /// sink and an observation into the `pass.<name>.ns` histogram of
    /// the context's metrics handle.  With both observers disabled this
    /// is exactly [`Pass::run`] — two `enabled()` checks are the only
    /// added work, which is what keeps the [`ujam_trace::NullSink`] /
    /// disabled-metrics path within noise of untraced code.
    fn run_traced(&self, ctx: &mut AnalysisCtx<'_>) -> Result<Self::Output, OptimizeError> {
        let tracing = ctx.tracing();
        let metering = ctx.metrics().enabled();
        if !tracing && !metering {
            return self.run(ctx);
        }
        let t0 = Instant::now();
        let out = self.run(ctx);
        let nanos = t0.elapsed().as_nanos();
        if tracing {
            ctx.sink()
                .record(TraceRecord::span(ctx.nest().name(), self.name(), nanos));
        }
        if metering {
            ctx.metrics()
                .observe(&format!("pass.{}.ns", self.name()), nanos as u64);
        }
        out
    }
}

/// Stage 1 (§4.5): pick up to [`SelectLoops::max_loops`] loops to
/// unroll — the loops whose localization removes the most cache traffic
/// by Equation 1 — bounded by the dependence-safety limits, and box
/// them into an [`UnrollSpace`].
///
/// The paper restricts the search to at most two loops; the default
/// preserves that arm.  Register tiling over deeper nests raises the
/// cap: with `max_loops = k` the resulting space spans up to k
/// dimensions, and `max_loops = 0` means unbounded (every jammable loop
/// with a positive locality score joins the space).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelectLoops {
    /// Most loops the unroll space may span; `0` = unbounded.  The
    /// default of 2 reproduces the paper's §4.5 selection exactly.
    pub max_loops: usize,
}

impl Default for SelectLoops {
    fn default() -> SelectLoops {
        SelectLoops { max_loops: 2 }
    }
}

impl Pass for SelectLoops {
    type Output = UnrollSpace;

    fn name(&self) -> &'static str {
        "select-loops"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<UnrollSpace, OptimizeError> {
        ctx.check_cancelled()?;
        let depth = ctx.nest().depth();
        let line = ctx.machine().line_elems();
        let bounds = ctx.safe_bounds().to_vec();
        // The innermost loop (depth - 1) is deliberately excluded from
        // candidacy: unroll-and-jam replicates a loop's body *into* the
        // innermost loop, so unrolling the innermost loop itself is
        // plain inner unrolling — outside the paper's transformation —
        // and `UnrollSpace::with_bounds` rejects it outright.  The
        // exclusion is therefore structural, not a scoring decision;
        // the trace event below makes it observable when it bites.
        let mut scored: Vec<(usize, f64)> = (0..depth.saturating_sub(1))
            .filter(|&l| bounds[l] >= 1)
            .map(|l| (l, ctx.locality_score(l, line)))
            .collect();
        // Highest locality benefit first; ties prefer outer position.
        // `total_cmp` keeps the sort total even if a degenerate nest
        // yields a non-finite score (the seed's `partial_cmp(..).expect`
        // panicked there).
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let take = if self.max_loops == 0 {
            usize::MAX
        } else {
            self.max_loops
        };
        let mut chosen: Vec<usize> = scored
            .iter()
            .filter(|&&(_, s)| s > 0.0)
            .take(take)
            .map(|&(l, _)| l)
            .collect();
        // A memory-bound loop can still profit from pure flop replication
        // (merging loads of invariant or group-reusing references); keep at
        // least one candidate when any loop is jammable.
        if chosen.is_empty() {
            if let Some(&(l, _)) = scored.first() {
                chosen.push(l);
            }
        }
        chosen.sort_unstable();
        if ctx.tracing() {
            // Record when the structurally-excluded innermost loop
            // out-scores every selectable loop — the case where the
            // exclusion actually changed the ranking.  The incremental
            // score used for outer loops is identically zero for the
            // innermost (it is already in every localized space), so its
            // comparable figure is the locality its localization already
            // provides: cost with nothing localized minus cost with the
            // innermost localized.
            if depth >= 1 {
                let inner = depth - 1;
                let none = Localized::new(depth, &[]);
                let inner_loc = Localized::innermost(depth);
                let inner_score: f64 = ctx
                    .ugs()
                    .iter()
                    .map(|s| ugs_cost(s, &none, line) - ugs_cost(s, &inner_loc, line))
                    .sum();
                let top = scored.first().map_or(f64::NEG_INFINITY, |&(_, s)| s);
                if inner_score > top {
                    ctx.sink().record(TraceRecord::event(
                        ctx.nest().name(),
                        &format!(
                            "innermost loop {inner} excluded despite top locality \
                             score {inner_score:.3} (best selectable: {top:.3})"
                        ),
                    ));
                    ctx.sink().record(TraceRecord::counter(
                        ctx.nest().name(),
                        "select.innermost_excluded",
                        1,
                    ));
                }
            }
            ctx.sink().record(TraceRecord::event(
                ctx.nest().name(),
                &format!("selected loops {chosen:?} (locality scores {scored:?})"),
            ));
        }
        // Each chosen loop searches up to its own safety bound, capped
        // for tractability.
        let per_loop: Vec<u32> = chosen
            .iter()
            .map(|&l| bounds[l].min(UNROLL_CAP).min(8))
            .collect();
        Ok(UnrollSpace::with_bounds(depth, &chosen, &per_loop))
    }
}

/// Stage 2 (§4.2–§4.4): build (or fetch from the context cache) the
/// GTS/GSS/RRS/register tables for an unroll space.
#[derive(Clone, Debug)]
pub struct BuildTables {
    /// The space to tabulate.
    pub space: UnrollSpace,
}

impl Pass for BuildTables {
    type Output = Rc<CostTables>;

    fn name(&self) -> &'static str {
        "build-tables"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<Rc<CostTables>, OptimizeError> {
        ctx.check_cancelled()?;
        ctx.tables(&self.space)
    }
}

/// What a search stage found: the winning offset, its full per-loop
/// unroll vector, and the predicted behaviour before and after.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The winning offset in space coordinates.
    pub offset: Vec<u32>,
    /// The winning offset embedded as a full per-nest-loop vector.
    pub unroll: Vec<u32>,
    /// Predicted behaviour at the chosen vector.
    pub predicted: Prediction,
    /// Predicted behaviour of the original loop (`u = 0`).
    pub original: Prediction,
}

/// One candidate's fate during a search, before it is stamped into an
/// [`ExplainRecord`]: the space-offset, what was measured, and why it
/// was kept or dropped.
struct CandidateFate {
    u: Vec<u32>,
    beta: Option<f64>,
    registers: Option<i64>,
    verdict: Verdict,
}

/// What [`search_over`] found: the winning offset, its measured inputs
/// (`None` when nothing beat `u = 0`), how many candidates were skipped
/// by monotone up-set pruning, and whether the walk was abandoned by a
/// fired [`CancelToken`] (in which case the other fields are partial
/// and the caller must surface [`OptimizeError::DeadlineExceeded`]).
struct SearchResult {
    best: Vec<u32>,
    best_inputs: Option<BalanceInputs>,
    pruned_upset: usize,
    cancelled: bool,
}

/// Shared search objective (§3.3): minimize `|β − β_M|` subject to the
/// register budget — and, when `max_copies` is set, a code-size budget
/// — ties preferring fewer body copies.
///
/// Candidates are visited in lexicographic order by a recursive walk
/// that reuses one scratch offset vector — no per-candidate allocation.
/// The walk also maintains the candidate's flat row-major index
/// incrementally during descent (one add per level) and hands it to
/// `inputs_at`, so table-backed scorers read their finalized sums by
/// index without re-deriving it per query.
/// With `prune_upsets` set (sound only when the register tables are
/// monotone in `u`), an over-budget candidate whose trailing dimensions
/// are all zero prunes every lexicographically-later sibling subtree:
/// each such candidate dominates the over-budget one component-wise, so
/// by monotonicity it is over budget too.  Pruned candidates are
/// counted in closed form and never measured.
///
/// `max_copies` caps the unrolled body's size in copies of the original
/// body (`Π (uᵢ + 1)`), an icache proxy.  Unlike the register tables,
/// copy count is multiplicative in `u` and therefore monotone by
/// construction, so `prune_code` needs no table-monotonicity gate — it
/// reuses the same up-set skip, which keeps one record per offset.
///
/// With `explain` present, every candidate's fate is recorded — even
/// pruned-up-set ones, so the records always cover the whole space:
/// exactly one record carries [`Verdict::Won`] — the offset this
/// function returns — and the rest say why they lost (`dominated`),
/// were pruned (`pruned_registers`, `pruned_divisibility`,
/// `pruned_code_size`, `pruned_upset`), or could not be measured
/// (`infeasible`).
#[allow(clippy::too_many_arguments)]
fn search_over(
    machine: &MachineModel,
    space: &UnrollSpace,
    inputs_at: impl FnMut(&[u32], usize) -> Option<BalanceInputs>,
    beta_of: impl Fn(&BalanceInputs) -> f64,
    divisible: impl Fn(&[u32]) -> bool,
    prune_upsets: bool,
    max_copies: Option<usize>,
    prune_code: bool,
    explain: Option<&mut Vec<CandidateFate>>,
    cancel: &CancelToken,
) -> SearchResult {
    // suffix[d] = how many offsets one subtree at level d spans — the
    // closed-form size of a pruned sibling subtree.  Note suffix[d + 1]
    // is also the space's row-major stride of dimension d, which is
    // what lets `descend` keep the flat index with one add per level.
    let mut suffix = vec![1usize; space.dims() + 1];
    for d in (0..space.dims()).rev() {
        suffix[d] = suffix[d + 1] * (space.bounds()[d] as usize + 1);
    }
    let mut walk = Walk {
        beta_m: machine.balance(),
        regs: machine.registers_for_replacement() as i64,
        space,
        inputs_at,
        beta_of,
        divisible,
        prune_upsets,
        max_copies,
        prune_code,
        explain,
        suffix,
        u: vec![0u32; space.dims()],
        flat: 0,
        best: vec![0u32; space.dims()],
        best_inputs: None,
        best_score: (f64::INFINITY, usize::MAX),
        best_rec: None,
        pruned_upset: 0,
        cancel,
        visits: 0,
        cancelled: false,
    };
    walk.descend(0);
    let Walk {
        explain,
        best,
        best_inputs,
        best_rec,
        pruned_upset,
        cancelled,
        ..
    } = walk;
    if let Some(records) = explain {
        match best_rec {
            Some(i) => records[i].verdict = Verdict::Won,
            // Every candidate was pruned: the search falls back to
            // u = 0, so the zero record (if any) is what "won".
            None => {
                if let Some(rec) = records.iter_mut().find(|r| r.u == best) {
                    rec.verdict = Verdict::Won;
                }
            }
        }
    }
    SearchResult {
        best,
        best_inputs,
        pruned_upset,
        cancelled,
    }
}

/// The recursive state of one [`search_over`] walk.
struct Walk<'a, 's, I, B, D> {
    beta_m: f64,
    regs: i64,
    space: &'s UnrollSpace,
    inputs_at: I,
    beta_of: B,
    divisible: D,
    prune_upsets: bool,
    max_copies: Option<usize>,
    prune_code: bool,
    explain: Option<&'a mut Vec<CandidateFate>>,
    suffix: Vec<usize>,
    u: Vec<u32>,
    /// Flat row-major index of `u`, maintained incrementally by
    /// `descend` (`suffix[d + 1]` is dimension `d`'s stride).
    flat: usize,
    best: Vec<u32>,
    best_inputs: Option<BalanceInputs>,
    best_score: (f64, usize),
    best_rec: Option<usize>,
    pruned_upset: usize,
    cancel: &'s CancelToken,
    visits: u32,
    cancelled: bool,
}

impl<I, B, D> Walk<'_, '_, I, B, D>
where
    I: FnMut(&[u32], usize) -> Option<BalanceInputs>,
    B: Fn(&BalanceInputs) -> f64,
    D: Fn(&[u32]) -> bool,
{
    /// Walks dimensions `d..` with `u[..d]` fixed, in lexicographic
    /// order.  Returns true when the subtree's first candidate (the
    /// all-zero suffix) exceeded a monotone budget — registers or code
    /// size — the signal that every candidate dominating it can be
    /// skipped.
    fn descend(&mut self, d: usize) -> bool {
        if self.cancelled {
            // A fired token unwinds the whole recursion without visiting
            // (or recording) anything further; the partial result is
            // discarded by the caller.
            return false;
        }
        if d == self.space.dims() {
            return self.visit();
        }
        let bound = self.space.bounds()[d];
        let base = self.flat;
        for x in 0..=bound {
            self.u[d] = x;
            self.flat = base + x as usize * self.suffix[d + 1];
            if self.descend(d + 1) {
                // u[..d] ++ [x] ++ zeros is over budget: every sibling
                // subtree at x+1.. dominates it component-wise, so by
                // monotonicity none of them can fit either.
                if x < bound {
                    self.skip_upset(d, x + 1);
                }
                self.u[d] = 0;
                self.flat = base;
                // Only an all-zero suffix propagates the signal: for
                // x > 0 the next value of dimension d-1 resets this
                // dimension to 0 and no longer dominates `u`.
                return x == 0;
            }
        }
        self.u[d] = 0;
        self.flat = base;
        false
    }

    /// Accounts for the sibling subtrees `u[d] = from..=bounds[d]`
    /// (under the current `u[..d]` prefix) without measuring them:
    /// bumps the pruned counter by the closed-form subtree size and,
    /// when explaining, records a `pruned_upset` fate for each offset
    /// in lexicographic order.
    fn skip_upset(&mut self, d: usize, from: u32) {
        let bound = self.space.bounds()[d];
        self.pruned_upset += (bound - from + 1) as usize * self.suffix[d + 1];
        if self.explain.is_some() {
            for x in from..=bound {
                self.u[d] = x;
                self.record_subtree(d + 1);
            }
        }
    }

    /// Emits a `pruned_upset` fate for every offset of the subtree
    /// below the current `u[..d]` prefix.
    fn record_subtree(&mut self, d: usize) {
        if d == self.space.dims() {
            self.fate(None, None, Verdict::PrunedUpset);
            return;
        }
        for x in 0..=self.space.bounds()[d] {
            self.u[d] = x;
            self.record_subtree(d + 1);
        }
        self.u[d] = 0;
    }

    fn fate(&mut self, beta: Option<f64>, registers: Option<i64>, verdict: Verdict) {
        if let Some(records) = self.explain.as_deref_mut() {
            records.push(CandidateFate {
                u: self.u.clone(),
                beta,
                registers,
                verdict,
            });
        }
    }

    /// Scores the candidate at `u`.  Returns true when it is over the
    /// register or code-size budget and the matching pruning flag is on
    /// (the up-set skip signal).
    fn visit(&mut self) -> bool {
        // Candidate-granularity cancellation: the explicit flag is one
        // relaxed load and is polled every candidate; the deadline clock
        // only every `DEADLINE_CHECK_STRIDE`-th.
        self.visits = self.visits.wrapping_add(1);
        if self.cancel.flag_raised()
            || (self.visits.is_multiple_of(DEADLINE_CHECK_STRIDE) && self.cancel.is_cancelled())
        {
            self.cancelled = true;
            return false;
        }
        if !(self.divisible)(&self.u) {
            self.fate(None, None, Verdict::PrunedDivisibility);
            return false;
        }
        // The code-size check precedes measurement: an over-budget body
        // never needs its tables queried (or, in the brute search, its
        // body materialised).
        if let Some(max) = self.max_copies {
            if self.space.copies(&self.u) > max {
                self.fate(None, None, Verdict::PrunedCodeSize);
                return self.prune_code;
            }
        }
        let Some(inputs) = (self.inputs_at)(&self.u, self.flat) else {
            self.fate(None, None, Verdict::Infeasible);
            return false;
        };
        if inputs.registers > self.regs {
            self.fate(None, Some(inputs.registers), Verdict::PrunedRegisters);
            return self.prune_upsets;
        }
        let beta = (self.beta_of)(&inputs);
        self.fate(Some(beta), Some(inputs.registers), Verdict::Dominated);
        let score = ((beta - self.beta_m).abs(), self.space.copies(&self.u));
        if score.0 < self.best_score.0 - 1e-12
            || ((score.0 - self.best_score.0).abs() <= 1e-12 && score.1 < self.best_score.1)
        {
            self.best_score = score;
            self.best.clear();
            self.best.extend_from_slice(&self.u);
            self.best_inputs = Some(inputs);
            if let Some(records) = self.explain.as_deref() {
                self.best_rec = Some(records.len() - 1);
            }
        }
        false
    }
}

/// Converts a code-size budget (statements in the unrolled body) into
/// the walk's copy cap: `copies × stmts > budget ⇔ copies >
/// budget / stmts` (integer floor), so the cap loses nothing.
fn max_copies_for(code_budget: Option<usize>, nest: &LoopNest) -> Option<usize> {
    code_budget.map(|budget| budget / nest.body().len().max(1))
}

/// Stamps search-internal [`CandidateFate`]s into public
/// [`ExplainRecord`]s and emits them through the context's sink.
fn emit_explains(
    ctx: &AnalysisCtx<'_>,
    pass: &str,
    space: &UnrollSpace,
    fates: Vec<CandidateFate>,
) {
    let beta_m = ctx.machine().balance();
    for fate in fates {
        ctx.sink().record(TraceRecord::Explain(ExplainRecord {
            nest: ctx.nest().name().to_string(),
            pass: pass.to_string(),
            u: space.full_vector(&fate.u),
            beta: fate.beta,
            beta_m,
            registers: fate.registers,
            verdict: fate.verdict,
        }));
    }
}

/// Stage 3 (§4.5): search the unroll space for the offset minimizing
/// `|β_L(u) − β_M|` subject to the register constraint, scoring
/// candidates from the precomputed tables.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// The space to search.
    pub space: UnrollSpace,
    /// Which balance model scores candidates.
    pub model: BalanceModel,
    /// Which cache-cost backend supplies the `cache_lines` input.
    /// [`CostModelKind::Analytic`] reads the Eq. 1 tables verbatim —
    /// the classic, bitwise-identical path; the profiling backends
    /// measure each candidate under the IR interpreter.
    pub cost: CostModelKind,
    /// Code-size budget: the most *statements* the unrolled body may
    /// hold (`copies × original statements`, an icache proxy).  `None`
    /// disables the constraint.
    pub code_budget: Option<usize>,
}

impl Pass for SearchSpace {
    type Output = SearchOutcome;

    fn name(&self) -> &'static str {
        "search-space"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<SearchOutcome, OptimizeError> {
        ctx.check_cancelled()?;
        let tables = BuildTables {
            space: self.space.clone(),
        }
        .run_traced(ctx)?;
        let nest = ctx.nest();
        let machine = ctx.machine();
        let space = &self.space;
        let model = self.model;

        // The analytic kind bypasses the backend entirely (not even a
        // `full_vector` allocation per candidate), keeping the classic
        // path's flow of f64s — and its speed — exactly as before.
        let analytic_only = self.cost == CostModelKind::Analytic;
        let mut backend = self.cost.backend_sized(nest, machine, space.len());
        // Tables from `BuildTables` are always finalized, so the walk's
        // incrementally maintained flat index addresses every query
        // directly — no per-candidate coordinate folding.  The gate is
        // defensive: a definalized table silently falls back to the
        // coordinate path rather than reading unfinalized sums.
        let flat_ok = tables.flat_queryable();
        let mut inputs_at = |u: &[u32], flat: usize| {
            if flat_ok {
                let copies = space.copies(u);
                let analytic = tables.cache_lines_flat(flat);
                BalanceInputs {
                    flops: tables.flops_of_copies(copies) as f64,
                    memory_ops: tables.memory_ops_flat(flat, copies) as f64,
                    cache_lines: if analytic_only {
                        analytic
                    } else {
                        backend.lines_per_iter_flat(flat, &mut || space.full_vector(u), analytic)
                    },
                    registers: tables.registers_flat(flat),
                }
            } else {
                let analytic = tables.cache_lines(u);
                BalanceInputs {
                    flops: tables.flops(u) as f64,
                    memory_ops: tables.memory_ops(u) as f64,
                    cache_lines: if analytic_only {
                        analytic
                    } else {
                        backend.lines_per_iter_flat(flat, &mut || space.full_vector(u), analytic)
                    },
                    registers: tables.registers(u),
                }
            }
        };
        // The factors must divide the trip counts for a clean transform.
        let divisible = |u: &[u32]| {
            space
                .loops()
                .iter()
                .zip(u)
                .all(|(&l, &ul)| nest.loops()[l].trip_count() % (ul as i64 + 1) == 0)
        };
        let beta_of = |inputs: &BalanceInputs| match model {
            BalanceModel::AllHits => inputs.no_cache_balance(),
            BalanceModel::CacheAware => loop_balance(inputs, machine),
        };

        let zero = vec![0u32; space.dims()];
        let original = inputs_at(&zero, 0);
        // Up-set pruning is sound exactly when every register table is
        // monotone in u; the tables checked this once at build time.
        // The code-size budget needs no such gate: copy count is
        // multiplicative in u, hence monotone by construction.
        let prune = tables.registers_monotone();
        let max_copies = max_copies_for(self.code_budget, nest);
        let mut fates = ctx.tracing().then(Vec::new);
        let found = search_over(
            machine,
            space,
            |u, flat| Some(inputs_at(u, flat)),
            beta_of,
            divisible,
            prune,
            max_copies,
            true,
            fates.as_mut(),
            ctx.cancel_token(),
        );
        if found.cancelled {
            return Err(OptimizeError::DeadlineExceeded);
        }
        let cost_stats = backend.stats();
        if cost_stats.profiles > 0 {
            if ctx.tracing() {
                ctx.sink().record(TraceRecord::span(
                    ctx.nest().name(),
                    "profile",
                    u128::from(cost_stats.profile_ns),
                ));
                ctx.sink().record(TraceRecord::counter(
                    ctx.nest().name(),
                    "profile.candidates",
                    cost_stats.profiles,
                ));
            }
            if ctx.metrics().enabled() {
                ctx.metrics()
                    .count("profile.candidates", cost_stats.profiles);
                ctx.metrics().count("profile.accesses", cost_stats.accesses);
                ctx.metrics().observe("profile.ns", cost_stats.profile_ns);
            }
        }
        if ctx.tracing() {
            ctx.sink().record(TraceRecord::counter(
                ctx.nest().name(),
                "search.pruned_upset",
                found.pruned_upset as u64,
            ));
        }
        if let Some(fates) = fates {
            emit_explains(ctx, self.name(), space, fates);
        }
        let predicted = found.best_inputs.unwrap_or(original);
        Ok(SearchOutcome {
            unroll: space.full_vector(&found.best),
            offset: found.best,
            predicted: Prediction::from_inputs(&predicted, machine),
            original: Prediction::from_inputs(&original, machine),
        })
    }
}

/// The bare table-driven search kernel behind [`SearchSpace`], exposed
/// so benchmarks and equivalence tests can drive the exact search code
/// path against prebuilt (finalized *or* raw) tables with pruning
/// toggled.  Returns the winning offset and the number of candidates
/// skipped by monotone up-set pruning (0 with `prune` off).
///
/// `code_budget` caps the unrolled body's statement count (`None`
/// disables it); with `prune` off, over-budget candidates are still
/// excluded but recorded individually rather than up-set-skipped, so
/// the two modes always agree on the winner.
///
/// Register pruning is additionally gated on
/// [`CostTables::registers_monotone`] — asking for it on non-monotone
/// tables silently degrades to the exhaustive walk, which is the only
/// sound behaviour.  The code-size constraint is monotone by
/// construction and needs no gate.
pub fn search_tables(
    nest: &LoopNest,
    machine: &MachineModel,
    space: &UnrollSpace,
    tables: &CostTables,
    model: BalanceModel,
    prune: bool,
    code_budget: Option<usize>,
) -> (Vec<u32>, usize) {
    // The bench drives this kernel against definalized (density-domain)
    // tables too, where the O(1) flat reads don't exist — hence the
    // runtime branch, hoisted out of the closure.
    let flat_ok = tables.flat_queryable();
    let inputs_at = |u: &[u32], flat: usize| {
        if flat_ok {
            let copies = space.copies(u);
            BalanceInputs {
                flops: tables.flops_of_copies(copies) as f64,
                memory_ops: tables.memory_ops_flat(flat, copies) as f64,
                cache_lines: tables.cache_lines_flat(flat),
                registers: tables.registers_flat(flat),
            }
        } else {
            BalanceInputs {
                flops: tables.flops(u) as f64,
                memory_ops: tables.memory_ops(u) as f64,
                cache_lines: tables.cache_lines(u),
                registers: tables.registers(u),
            }
        }
    };
    let divisible = |u: &[u32]| {
        space
            .loops()
            .iter()
            .zip(u)
            .all(|(&l, &ul)| nest.loops()[l].trip_count() % (ul as i64 + 1) == 0)
    };
    let beta_of = |inputs: &BalanceInputs| match model {
        BalanceModel::AllHits => inputs.no_cache_balance(),
        BalanceModel::CacheAware => loop_balance(inputs, machine),
    };
    let found = search_over(
        machine,
        space,
        |u, flat| Some(inputs_at(u, flat)),
        beta_of,
        divisible,
        prune && tables.registers_monotone(),
        max_copies_for(code_budget, nest),
        prune,
        None,
        &CancelToken::never(),
    );
    (found.best, found.pruned_upset)
}

/// A drop-in [`SearchSpace`] alternative implementing Wolf, Maydan &
/// Chen's approach (§5.3): materialise every candidate body, run scalar
/// replacement and the reuse analysis on it, and score the result.
///
/// Same objective, same tie-breaking — the equivalence of the two
/// search stages is the paper's headline correctness claim and a test.
#[derive(Clone, Debug)]
pub struct BruteSearch {
    /// The space to search.
    pub space: UnrollSpace,
    /// Code-size budget in unrolled-body statements, as in
    /// [`SearchSpace::code_budget`].  Over-budget candidates are never
    /// materialised, but each is recorded individually (`Infeasible`-
    /// style exhaustiveness): the brute search stays the unpruned
    /// reference the agreement tests compare against.
    pub code_budget: Option<usize>,
}

impl Pass for BruteSearch {
    type Output = SearchOutcome;

    fn name(&self) -> &'static str {
        "brute-search"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<SearchOutcome, OptimizeError> {
        ctx.check_cancelled()?;
        let nest = ctx.nest();
        let machine = ctx.machine();
        let space = &self.space;
        if space.depth() != nest.depth() {
            return Err(OptimizeError::DepthMismatch {
                nest: nest.depth(),
                space: space.depth(),
            });
        }

        let zero = vec![0u32; space.dims()];
        let original = measure_candidate(nest, &space.full_vector(&zero), machine)
            .map_err(OptimizeError::Transform)?;
        // Materializing a candidate (body construction, scalar
        // replacement, reuse analysis) dominates the walk and is pure
        // and independent per candidate, so fan it out across the batch
        // worker pool; the reduction below then runs sequentially over
        // the precomputed slots in input order, which keeps the winner
        // — tie-breaks included — bitwise-identical to a sequential
        // walk.  No up-set pruning here: the measured register counts
        // carry no monotonicity guarantee.
        let offsets: Vec<Vec<u32>> = space.offsets().collect();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let cancel = ctx.cancel_token();
        let max_copies = max_copies_for(self.code_budget, nest);
        let measured: Vec<Option<BalanceInputs>> =
            parallel_map_indexed(offsets.len(), workers, |i| {
                // Candidate-granularity cancellation: materialising a
                // body is the expensive unit here, so skip the remaining
                // ones as soon as the token fires (measure errors and
                // skips are both `None`; the post-walk check below turns
                // a fired token into the structured error).
                if cancel.is_cancelled() {
                    return None;
                }
                // An over-budget body is never materialised; the walk's
                // code-size check fires before this slot is read, so the
                // `None` is never mistaken for `Infeasible`.
                if max_copies.is_some_and(|max| space.copies(&offsets[i]) > max) {
                    return None;
                }
                measure_candidate(nest, &space.full_vector(&offsets[i]), machine).ok()
            });
        ctx.check_cancelled()?;
        let mut fates = ctx.tracing().then(Vec::new);
        let found = search_over(
            machine,
            space,
            |_u, flat| measured[flat],
            |inputs| loop_balance(inputs, machine),
            |_| true,
            false,
            max_copies,
            false,
            fates.as_mut(),
            cancel,
        );
        if found.cancelled {
            return Err(OptimizeError::DeadlineExceeded);
        }
        if let Some(fates) = fates {
            emit_explains(ctx, self.name(), space, fates);
        }
        let predicted = found.best_inputs.unwrap_or(original);
        Ok(SearchOutcome {
            unroll: space.full_vector(&found.best),
            offset: found.best,
            predicted: Prediction::from_inputs(&predicted, machine),
            original: Prediction::from_inputs(&original, machine),
        })
    }
}

/// Stage 4: apply the winning unroll vector with real unroll-and-jam.
#[derive(Clone, Debug)]
pub struct ApplyTransform {
    /// The full per-nest-loop unroll vector to apply.
    pub unroll: Vec<u32>,
}

impl Pass for ApplyTransform {
    type Output = LoopNest;

    fn name(&self) -> &'static str {
        "apply-transform"
    }

    fn run(&self, ctx: &mut AnalysisCtx<'_>) -> Result<LoopNest, OptimizeError> {
        ctx.check_cancelled()?;
        unroll_and_jam(ctx.nest(), &self.unroll).map_err(OptimizeError::Transform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;
    use ujam_trace::CollectingSink;

    fn intro() -> LoopNest {
        NestBuilder::new("intro")
            .array("A", &[242])
            .array("B", &[242])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt("A(J) = A(J) + B(I)")
            .build()
    }

    #[test]
    fn run_traced_emits_one_span_per_pass() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &sink).expect("valid");
        let space = SelectLoops::default()
            .run_traced(&mut ctx)
            .expect("selects");
        SearchSpace {
            space,
            model: BalanceModel::CacheAware,
            cost: CostModelKind::Analytic,
            code_budget: None,
        }
        .run_traced(&mut ctx)
        .expect("searches");
        let trace = sink.take();
        let names: Vec<&str> = trace.spans().map(|(_, name, _)| name).collect();
        assert_eq!(names, ["select-loops", "build-tables", "search-space"]);
        assert!(trace.spans().all(|(nest_name, _, _)| nest_name == "intro"));
    }

    #[test]
    fn run_traced_without_a_sink_is_plain_run() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut traced = AnalysisCtx::new(&nest, &machine).expect("valid");
        let mut plain = AnalysisCtx::new(&nest, &machine).expect("valid");
        let a = SelectLoops::default()
            .run_traced(&mut traced)
            .expect("selects");
        let b = SelectLoops::default().run(&mut plain).expect("selects");
        assert_eq!(a, b);
    }

    /// Pins the structural exclusion of the innermost loop (§4.5): it
    /// never joins the unroll space — unrolling it would be plain inner
    /// unrolling, not unroll-and-jam — and when its already-localized
    /// locality tops every selectable loop's incremental score, the
    /// exclusion is recorded as a trace event plus the
    /// `select.innermost_excluded` counter rather than passing silently.
    #[test]
    fn innermost_exclusion_is_structural_and_observable() {
        // Stride-1 innermost loop: the inner I carries all the spatial
        // locality, so its inherent score tops the outer candidates.
        let nest = NestBuilder::new("inner_top")
            .array("A", &[244, 244])
            .array("B", &[244, 244])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt("A(I,J) = A(I,J) + B(I,J)")
            .build();
        let machine = MachineModel::dec_alpha();
        let sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &sink).expect("valid");
        let space = SelectLoops::default()
            .run_traced(&mut ctx)
            .expect("selects");
        let inner = nest.depth() - 1;
        assert!(
            !space.loops().contains(&inner),
            "innermost loop must never join the unroll space"
        );
        let trace = sink.take();
        let noted = trace.records.iter().any(|r| {
            matches!(
                r,
                TraceRecord::Event { message, .. } if message.contains("innermost loop 1 excluded")
            )
        });
        assert!(noted, "exclusion event missing: {:?}", trace.records);
        let counted = trace
            .counter_totals()
            .iter()
            .any(|(n, c, v)| n == "inner_top" && c == "select.innermost_excluded" && *v == 1);
        assert!(counted, "select.innermost_excluded counter missing");
    }

    /// The counter is silent when an outer loop legitimately out-scores
    /// the innermost: the exclusion did not change the ranking.
    #[test]
    fn innermost_exclusion_counter_is_silent_when_outer_loop_wins() {
        // Column-major arrays: A(J,I) is stride-1 in J, so the *outer*
        // loop J carries the spatial locality while the inner loop I
        // strides by a full column and carries no reuse at all.
        let nest = NestBuilder::new("outer_top")
            .array("A", &[244, 244])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt("A(J,I) = A(J,I) * 2.0 + 1.0")
            .build();
        let machine = MachineModel::dec_alpha();
        let sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &sink).expect("valid");
        SelectLoops::default()
            .run_traced(&mut ctx)
            .expect("selects");
        let trace = sink.take();
        assert!(
            !trace
                .counter_totals()
                .iter()
                .any(|(_, c, _)| c == "select.innermost_excluded"),
            "counter must not fire when the exclusion is ranking-neutral: {:?}",
            trace.records
        );
    }

    /// The headline provenance property: exactly one candidate wins, it
    /// is the candidate the search returns, and every other candidate
    /// carries a pruning or domination verdict.
    #[test]
    fn explain_records_name_the_winner_search_returns() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &sink).expect("valid");
        let space = SelectLoops::default()
            .run_traced(&mut ctx)
            .expect("selects");
        let found = SearchSpace {
            space: space.clone(),
            model: BalanceModel::CacheAware,
            cost: CostModelKind::Analytic,
            code_budget: None,
        }
        .run_traced(&mut ctx)
        .expect("searches");

        let trace = sink.take();
        let explains: Vec<_> = trace.explains().collect();
        assert_eq!(
            explains.len(),
            space.len(),
            "one explain record per candidate offset"
        );
        let winners: Vec<_> = explains
            .iter()
            .filter(|e| e.verdict == Verdict::Won)
            .collect();
        assert_eq!(winners.len(), 1, "exactly one candidate wins");
        assert_eq!(winners[0].u, found.unroll);
        assert_eq!(winners[0].beta_m, machine.balance());
        assert!(winners[0].beta.is_some());
        assert!(winners[0].registers.is_some());
        assert!(explains.iter().all(|e| e.pass == "search-space"));
    }

    /// Table-driven and brute-force searches agree not just on the
    /// winner but in their explain records' verdict for it.
    #[test]
    fn brute_search_explain_agrees_on_the_winner() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let space = UnrollSpace::new(2, &[0], 5);

        let table_sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &table_sink).expect("valid");
        let table = SearchSpace {
            space: space.clone(),
            model: BalanceModel::CacheAware,
            cost: CostModelKind::Analytic,
            code_budget: None,
        }
        .run_traced(&mut ctx)
        .expect("searches");

        let brute_sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &brute_sink).expect("valid");
        let brute = BruteSearch {
            space: space.clone(),
            code_budget: None,
        }
        .run_traced(&mut ctx)
        .expect("searches");

        assert_eq!(table.unroll, brute.unroll);
        let table_winner = table_sink
            .take()
            .explains()
            .find(|e| e.verdict == Verdict::Won)
            .expect("table search has a winner")
            .clone();
        let brute_winner = brute_sink
            .take()
            .explains()
            .find(|e| e.verdict == Verdict::Won)
            .expect("brute search has a winner")
            .clone();
        assert_eq!(table_winner.u, brute_winner.u);
        assert_eq!(table_winner.u, table.unroll);
    }

    /// A register budget of nearly zero prunes every profitable
    /// candidate; the explain records say so.  Even `u = 0` is over
    /// budget here, so the monotone walk probes it once (that record
    /// doubles as the fallback winner), skips the whole remaining
    /// up-set, and still leaves one record per candidate.
    #[test]
    fn register_pruning_is_visible_in_explains() {
        let nest = intro();
        let tiny = MachineModel::builder("tiny")
            .rates(1.0, 4.0)
            .registers(2)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .build();
        let sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &tiny, &sink).expect("valid");
        let space = UnrollSpace::new(2, &[0], 7);
        let found = SearchSpace {
            space: space.clone(),
            model: BalanceModel::CacheAware,
            cost: CostModelKind::Analytic,
            code_budget: None,
        }
        .run_traced(&mut ctx)
        .expect("searches");
        assert_eq!(found.unroll, vec![0, 0], "nothing fits a 2-register budget");
        let trace = sink.take();
        let explains: Vec<_> = trace.explains().collect();
        assert_eq!(
            explains.len(),
            space.len(),
            "pruned candidates still logged"
        );
        assert!(
            explains
                .iter()
                .any(|e| matches!(e.verdict, Verdict::PrunedRegisters | Verdict::PrunedUpset)),
            "some candidate must exceed a 2-register budget"
        );
        let pruned_upset = trace
            .counter_totals()
            .iter()
            .find(|(_, name, _)| name == "search.pruned_upset")
            .map(|&(_, _, v)| v)
            .expect("search emits the pruned_upset counter");
        assert_eq!(
            pruned_upset as usize,
            space.len() - 1,
            "one probe, rest skipped"
        );
    }

    /// Divisibility pruning (trip count 7 is prime) shows up as
    /// `pruned_divisibility`, never as a winner.
    #[test]
    fn divisibility_pruning_is_visible_in_explains() {
        let nest = NestBuilder::new("prime")
            .array("A", &[9])
            .array("B", &[9])
            .loop_("J", 1, 7)
            .loop_("I", 1, 7)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let machine = MachineModel::dec_alpha();
        let sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &sink).expect("valid");
        let found = SearchSpace {
            space: UnrollSpace::new(2, &[0], 5),
            model: BalanceModel::CacheAware,
            cost: CostModelKind::Analytic,
            code_budget: None,
        }
        .run_traced(&mut ctx)
        .expect("searches");
        assert_eq!(found.unroll, vec![0, 0]);
        let trace = sink.take();
        let pruned = trace
            .explains()
            .filter(|e| e.verdict == Verdict::PrunedDivisibility)
            .count();
        assert_eq!(pruned, 5, "u = 1..=5 all fail to divide 7");
        let winner = trace
            .explains()
            .find(|e| e.verdict == Verdict::Won)
            .expect("winner exists");
        assert_eq!(winner.u, vec![0, 0]);
    }

    /// With tracing disabled nothing is recorded and the outcome is
    /// identical — the provenance layer cannot perturb decisions.
    #[test]
    fn tracing_does_not_change_the_outcome() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let space = UnrollSpace::new(2, &[0], 5);
        let sink = CollectingSink::new();
        let mut traced_ctx = AnalysisCtx::with_sink(&nest, &machine, &sink).expect("valid");
        let mut plain_ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        let pass = SearchSpace {
            space,
            model: BalanceModel::CacheAware,
            cost: CostModelKind::Analytic,
            code_budget: None,
        };
        let traced = pass.run_traced(&mut traced_ctx).expect("searches");
        let plain = pass.run_traced(&mut plain_ctx).expect("searches");
        assert_eq!(traced.unroll, plain.unroll);
        assert_eq!(traced.offset, plain.offset);
        assert_eq!(traced.predicted, plain.predicted);
    }
}
