//! The parallel batch driver: one pipeline run per nest, fanned out
//! across scoped threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::driver::{optimize_traced, optimize_with, BalanceModel, Optimized};
use crate::pipeline::OptimizeError;
use ujam_ir::LoopNest;
use ujam_machine::MachineModel;
use ujam_trace::{CollectingSink, TraceSink};

/// Optimizes every nest of a batch, returning one result per input in
/// order.  Nests are distributed across `std::thread::scope` workers
/// (work-stealing over a shared index), one [`super::AnalysisCtx`] per
/// nest, so a bad nest fails with its own [`OptimizeError`] without
/// affecting the rest of the batch.
///
/// Results are bitwise-identical to calling [`crate::optimize`] on each
/// nest sequentially — the scheduling only changes *when* a nest is
/// analysed, never *what* the analysis computes (a workspace test
/// asserts this over the full kernel suite).
///
/// # Example
///
/// ```
/// use ujam_core::optimize_batch;
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// let nests: Vec<_> = (0..4).map(|k| {
///     NestBuilder::new(&format!("n{k}"))
///         .array("A", &[242]).array("B", &[242])
///         .loop_("J", 1, 240).loop_("I", 1, 240)
///         .stmt("A(J) = A(J) + B(I)")
///         .build()
/// }).collect();
/// let plans = optimize_batch(&nests, &MachineModel::dec_alpha());
/// assert_eq!(plans.len(), 4);
/// assert!(plans.iter().all(|p| p.is_ok()));
/// ```
pub fn optimize_batch(
    nests: &[LoopNest],
    machine: &MachineModel,
) -> Vec<Result<Optimized, OptimizeError>> {
    optimize_batch_with(nests, machine, BalanceModel::CacheAware)
}

/// [`optimize_batch`] with an explicit cost model.
pub fn optimize_batch_with(
    nests: &[LoopNest],
    machine: &MachineModel,
    model: BalanceModel,
) -> Vec<Result<Optimized, OptimizeError>> {
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    optimize_batch_with_workers(nests, machine, model, workers)
}

/// [`optimize_batch_with`] with an explicit worker count (clamped to
/// `1..=nests.len()`).  A worker count of 1 runs inline without
/// spawning.
pub fn optimize_batch_with_workers(
    nests: &[LoopNest],
    machine: &MachineModel,
    model: BalanceModel,
    workers: usize,
) -> Vec<Result<Optimized, OptimizeError>> {
    optimize_batch_traced_with_workers(nests, machine, model, workers, ujam_trace::null_sink())
}

/// [`optimize_batch`] with a trace sink and the default worker count.
///
/// See [`optimize_batch_traced_with_workers`] for the trace-ordering
/// guarantee.
pub fn optimize_batch_traced(
    nests: &[LoopNest],
    machine: &MachineModel,
    model: BalanceModel,
    sink: &dyn TraceSink,
) -> Vec<Result<Optimized, OptimizeError>> {
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    optimize_batch_traced_with_workers(nests, machine, model, workers, sink)
}

/// [`optimize_batch_with_workers`] with a trace sink.
///
/// Each nest's pipeline records into a private buffer; after every nest
/// completes, the buffers are forwarded to `sink` **in input order**.
/// The aggregate trace is therefore deterministic — identical to
/// running [`optimize_traced`] on each nest sequentially (modulo span
/// wall-times; compare with `Trace::without_timing`) no matter how the
/// scheduler interleaved the workers — and the optimization results
/// stay bitwise-identical to the untraced batch.
pub fn optimize_batch_traced_with_workers(
    nests: &[LoopNest],
    machine: &MachineModel,
    model: BalanceModel,
    workers: usize,
    sink: &dyn TraceSink,
) -> Vec<Result<Optimized, OptimizeError>> {
    if nests.is_empty() {
        return Vec::new();
    }
    // One private collector per nest keeps the merged trace independent
    // of worker scheduling.  With tracing disabled the collectors stay
    // untouched: each pipeline runs against the NullSink-equivalent
    // fast path and the forwarding loop below sends nothing.
    let tracing = sink.enabled();
    let collectors: Vec<CollectingSink> = (0..nests.len()).map(|_| CollectingSink::new()).collect();
    let results = parallel_map_indexed(nests.len(), workers, |i| {
        if tracing {
            optimize_traced(&nests[i], machine, model, &collectors[i])
        } else {
            optimize_with(&nests[i], machine, model)
        }
    });

    if tracing {
        for collector in &collectors {
            for record in collector.take().records {
                sink.record(record);
            }
        }
    }
    results
}

/// Runs `f(i)` for every `i` in `0..n` across up to `workers` scoped
/// threads (work-stealing over a shared index), returning results in
/// index order.  With one worker or at most one item it runs inline
/// without spawning.  The scheduling only changes *when* an index is
/// evaluated, never the contents of the returned vector — which is what
/// lets both the batch driver above and the parallel
/// [`crate::pipeline::BruteSearch`] keep bitwise-deterministic results.
/// Exposed publicly so higher layers (e.g. a serving front end) can fan
/// independent requests across the same deterministic worker pool.
pub fn parallel_map_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                // Each index is claimed by exactly one worker, so the
                // slot is written exactly once.
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every index below n is claimed and written once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;

    fn stencil(k: usize) -> LoopNest {
        NestBuilder::new(&format!("st{k}"))
            .array("A", &[52, 52])
            .array("B", &[52, 52])
            .loop_("J", 2, 49)
            .loop_("I", 2, 49)
            .stmt("B(I,J) = A(I,J-1) + A(I,J) + A(I,J+1)")
            .build()
    }

    #[test]
    fn batch_matches_sequential_for_every_worker_count() {
        let nests: Vec<LoopNest> = (0..6).map(stencil).collect();
        let machine = MachineModel::dec_alpha();
        let sequential: Vec<_> = nests
            .iter()
            .map(|n| optimize_with(n, &machine, BalanceModel::CacheAware).expect("valid"))
            .collect();
        for workers in [1, 2, 4, 16] {
            let batch =
                optimize_batch_with_workers(&nests, &machine, BalanceModel::CacheAware, workers);
            assert_eq!(batch.len(), nests.len());
            for (b, s) in batch.iter().zip(&sequential) {
                let b = b.as_ref().expect("valid nest");
                assert_eq!(b.unroll, s.unroll, "workers={workers}");
                assert_eq!(b.nest, s.nest);
            }
        }
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        for workers in [1, 3, 8] {
            let out = parallel_map_indexed(17, workers, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(parallel_map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn empty_batch_is_empty() {
        let machine = MachineModel::dec_alpha();
        assert!(optimize_batch(&[], &machine).is_empty());
    }

    #[test]
    fn bad_nests_fail_individually() {
        let good = stencil(0);
        let bad = crate::pipeline::ctx::bad_nest();
        let machine = MachineModel::dec_alpha();
        let out = optimize_batch_with_workers(&[good, bad], &machine, BalanceModel::CacheAware, 2);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(OptimizeError::InvalidNest(_))));
    }
}
