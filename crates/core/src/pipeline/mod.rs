//! The staged optimizer pipeline: named passes over a shared,
//! memoizing [`AnalysisCtx`].
//!
//! The paper's whole point is to compute the reuse analyses **once per
//! nest** and amortize them across the entire unroll space.  The seed
//! driver re-derived the dependence graph, UGS partition, and cost
//! tables from scratch on every `optimize*` call; this module makes the
//! precompute-then-query design explicit:
//!
//! ```text
//!              ┌────────────────────────────────────────────┐
//!              │            AnalysisCtx<'a>                 │
//!              │  nest + machine, lazily cached:            │
//!              │   · DepGraph          (built ≤ once)       │
//!              │   · safe unroll bounds (built ≤ once)      │
//!              │   · UGS partition     (built ≤ once)       │
//!              │   · locality scores   (per loop × line)    │
//!              │   · CostTables        (per loops/bounds/   │
//!              │                        line key)           │
//!              └───────▲──────▲──────────▲──────────▲───────┘
//!                      │      │          │          │
//!   SelectLoops ──► BuildTables ──► SearchSpace ──► ApplyTransform
//!     (which loops,   (GTS/GSS/RRS/     (min |β−β_M|   (unroll-and-jam
//!      what bounds)    register tables)  s.t. registers) the winner)
//! ```
//!
//! Each stage is a small struct implementing [`Pass`], so stages are
//! independently testable and swappable — [`BruteSearch`] is a drop-in
//! replacement for [`SearchSpace`] that materialises every candidate
//! body instead of querying tables (the §5.3 comparison).  The public
//! `optimize*` functions in [`crate::driver`] are thin wrappers that run
//! the standard sequence; [`optimize_batch`] fans a slice of nests out
//! across `std::thread::scope` workers, one context per nest.
//!
//! Failures surface as [`OptimizeError`] instead of panics: malformed
//! nests, depth-mismatched spaces, and untransformable winners all
//! return `Err` from every public entry point.
//!
//! Every stage is observable through a [`ujam_trace::TraceSink`]: the
//! `*_traced` entry points record per-pass wall-time spans, cache
//! hit/miss counters (mirroring [`CtxStats`]), and per-candidate
//! explain records that justify the chosen unroll vector.  With the
//! default [`ujam_trace::NullSink`] every emission site is guarded by a
//! single `enabled()` check, so the untraced path stays on the seed's
//! fast path.

mod batch;
mod cancel;
mod ctx;
mod pass;

pub use batch::{
    optimize_batch, optimize_batch_traced, optimize_batch_traced_with_workers, optimize_batch_with,
    optimize_batch_with_workers, parallel_map_indexed,
};
pub use cancel::CancelToken;
pub use ctx::{AnalysisCtx, CtxStats, CtxTimings};
pub use pass::{
    search_tables, ApplyTransform, BruteSearch, BuildTables, Pass, SearchOutcome, SearchSpace,
    SelectLoops,
};

use std::fmt;
use ujam_ir::transform::TransformError;

/// Why the optimizer could not produce a plan for a nest.
///
/// Every public `optimize*` entry point returns this instead of
/// panicking on malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptimizeError {
    /// The nest failed structural validation (duplicate loop variables,
    /// undeclared arrays, rank mismatches, unbound subscript variables).
    InvalidNest(String),
    /// The nest has no loops, so there is nothing to unroll or jam.
    EmptyNest,
    /// A caller-provided unroll space was built for a different nest
    /// depth.
    DepthMismatch {
        /// The nest's depth.
        nest: usize,
        /// The space's depth.
        space: usize,
    },
    /// The chosen transformation could not be applied to the nest.
    Transform(TransformError),
    /// The optimization was cancelled — its [`CancelToken`] fired (an
    /// explicit revocation or an elapsed deadline) before the pipeline
    /// finished.  The work already done is discarded; no partial plan is
    /// returned and nothing may be cached from the attempt.
    DeadlineExceeded,
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::InvalidNest(why) => write!(f, "invalid nest: {why}"),
            OptimizeError::EmptyNest => write!(f, "nest has no loops"),
            OptimizeError::DepthMismatch { nest, space } => write!(
                f,
                "unroll space depth {space} does not match nest depth {nest}"
            ),
            OptimizeError::Transform(e) => write!(f, "transform failed: {e}"),
            OptimizeError::DeadlineExceeded => {
                write!(f, "optimization cancelled: deadline exceeded")
            }
        }
    }
}

impl std::error::Error for OptimizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimizeError::Transform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransformError> for OptimizeError {
    fn from(e: TransformError) -> OptimizeError {
        OptimizeError::Transform(e)
    }
}
