//! The shared, memoizing analysis context every pass runs against.

use std::collections::HashMap;
use std::rc::Rc;

use crate::pipeline::OptimizeError;
use crate::space::UnrollSpace;
use crate::tables::CostTables;
use ujam_dep::{safe_unroll_bounds, DepGraph};
use ujam_ir::LoopNest;
use ujam_machine::MachineModel;
use ujam_reuse::{ugs_cost, Localized, UgsSet};

/// Cache key for [`CostTables`]: the unrolled loop positions, their
/// per-dimension bounds, and the cache line size in elements.
type TableKey = (Vec<usize>, Vec<u32>, i64);

/// How many times each analysis has actually been computed (not served
/// from cache).  Exposed so tests can prove the at-most-once guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtxStats {
    /// Dependence-graph constructions.
    pub dep_graph_builds: usize,
    /// Safety-bound derivations.
    pub bounds_builds: usize,
    /// UGS partitionings of the nest.
    pub ugs_builds: usize,
    /// Locality-score evaluations (one per `(loop, line)` pair).
    pub locality_builds: usize,
    /// Cost-table constructions (one per `(loops, bounds, line)` key).
    pub cost_table_builds: usize,
}

/// Lazily computes and caches every per-nest analysis the optimizer
/// needs: the dependence graph, dependence-derived safety bounds, the
/// UGS partition, per-loop locality scores, and [`CostTables`] keyed by
/// `(loops, bounds, line)`.
///
/// One context serves one `(nest, machine)` pair; passes borrow it
/// mutably and query, so each analysis runs at most once no matter how
/// many passes (or repeated pass runs) consume it.
///
/// # Example
///
/// ```
/// use ujam_core::pipeline::{AnalysisCtx, Pass, SelectLoops};
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// let nest = NestBuilder::new("intro")
///     .array("A", &[242]).array("B", &[242])
///     .loop_("J", 1, 240).loop_("I", 1, 240)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let machine = MachineModel::dec_alpha();
/// let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid nest");
/// let space = SelectLoops.run(&mut ctx).expect("selection succeeds");
/// assert_eq!(space.loops(), &[0]);
/// assert_eq!(ctx.stats().dep_graph_builds, 1);
/// ```
#[derive(Debug)]
pub struct AnalysisCtx<'a> {
    nest: &'a LoopNest,
    machine: &'a MachineModel,
    dep_graph: Option<DepGraph>,
    safe_bounds: Option<Vec<u32>>,
    ugs: Option<Vec<UgsSet>>,
    locality: HashMap<(usize, i64), f64>,
    tables: HashMap<TableKey, Rc<CostTables>>,
    stats: CtxStats,
}

impl<'a> AnalysisCtx<'a> {
    /// Creates a context after validating the nest.
    ///
    /// Malformed nests (structural validation failures, zero loops) are
    /// rejected here, which is what makes every downstream pass — and
    /// every public `optimize*` wrapper — panic-free on bad input.
    pub fn new(
        nest: &'a LoopNest,
        machine: &'a MachineModel,
    ) -> Result<AnalysisCtx<'a>, OptimizeError> {
        nest.validate().map_err(OptimizeError::InvalidNest)?;
        if nest.depth() == 0 {
            return Err(OptimizeError::EmptyNest);
        }
        Ok(AnalysisCtx {
            nest,
            machine,
            dep_graph: None,
            safe_bounds: None,
            ugs: None,
            locality: HashMap::new(),
            tables: HashMap::new(),
            stats: CtxStats::default(),
        })
    }

    /// The nest under optimization.
    pub fn nest(&self) -> &'a LoopNest {
        self.nest
    }

    /// The target machine model.
    pub fn machine(&self) -> &'a MachineModel {
        self.machine
    }

    /// Build counters proving each analysis runs at most once.
    pub fn stats(&self) -> CtxStats {
        self.stats
    }

    /// The dependence graph, built on first use.
    pub fn dep_graph(&mut self) -> &DepGraph {
        if self.dep_graph.is_none() {
            self.stats.dep_graph_builds += 1;
            self.dep_graph = Some(DepGraph::build(self.nest));
        }
        self.dep_graph.as_ref().expect("just computed")
    }

    /// Per-loop dependence-safety unroll bounds, derived on first use.
    pub fn safe_bounds(&mut self) -> &[u32] {
        if self.safe_bounds.is_none() {
            self.dep_graph();
            self.stats.bounds_builds += 1;
            let graph = self.dep_graph.as_ref().expect("just ensured");
            self.safe_bounds = Some(safe_unroll_bounds(self.nest, graph));
        }
        self.safe_bounds.as_deref().expect("just computed")
    }

    /// The uniformly generated sets of the nest, partitioned on first
    /// use and shared by locality scoring and table construction.
    pub fn ugs(&mut self) -> &[UgsSet] {
        if self.ugs.is_none() {
            self.stats.ugs_builds += 1;
            self.ugs = Some(UgsSet::partition(self.nest));
        }
        self.ugs.as_deref().expect("just computed")
    }

    /// The locality score of unrolling `loop_idx` (Equation 1 with and
    /// without the loop localized), cached per `(loop, line)` pair.
    pub fn locality_score(&mut self, loop_idx: usize, line_elems: i64) -> f64 {
        if let Some(&score) = self.locality.get(&(loop_idx, line_elems)) {
            return score;
        }
        self.ugs();
        self.stats.locality_builds += 1;
        let depth = self.nest.depth();
        let inner = Localized::innermost(depth);
        let with = Localized::with_unrolled(depth, &[loop_idx]);
        let sets = self.ugs.as_deref().expect("just ensured");
        let score = sets
            .iter()
            .map(|s| ugs_cost(s, &inner, line_elems) - ugs_cost(s, &with, line_elems))
            .sum();
        self.locality.insert((loop_idx, line_elems), score);
        score
    }

    /// The cost tables for an unroll space, built once per
    /// `(loops, bounds, line)` key and shared via `Rc`.
    pub fn tables(&mut self, space: &UnrollSpace) -> Result<Rc<CostTables>, OptimizeError> {
        if space.depth() != self.nest.depth() {
            return Err(OptimizeError::DepthMismatch {
                nest: self.nest.depth(),
                space: space.depth(),
            });
        }
        let key: TableKey = (
            space.loops().to_vec(),
            space.bounds().to_vec(),
            self.machine.line_elems(),
        );
        if let Some(tables) = self.tables.get(&key) {
            return Ok(Rc::clone(tables));
        }
        self.ugs();
        self.stats.cost_table_builds += 1;
        let sets = self.ugs.as_deref().expect("just ensured");
        let tables = Rc::new(CostTables::build_with_sets(
            self.nest,
            sets,
            space,
            self.machine.line_elems(),
        ));
        self.tables.insert(key, Rc::clone(&tables));
        Ok(tables)
    }
}

/// A structurally invalid nest for negative-path tests: the statement
/// reads undeclared `Z`, which `NestBuilder::build` would refuse to
/// construct — assembled with the raw constructor instead, exactly what
/// a front end handing over unvalidated IR looks like.
#[cfg(test)]
pub(crate) fn bad_nest() -> LoopNest {
    use ujam_ir::{parse_expr, sub, subs, ArrayDecl, ArrayRef, Loop, Stmt};
    LoopNest::new(
        "bad",
        vec![ArrayDecl::new("A", &[16])],
        vec![Loop::new("J", 1, 8), Loop::new("I", 1, 8)],
        vec![Stmt::assign(
            ArrayRef::new("A", subs(&[sub("I")])),
            parse_expr("Z(I) + 1.0").expect("parses"),
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;

    fn intro() -> LoopNest {
        NestBuilder::new("intro")
            .array("A", &[242])
            .array("B", &[242])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt("A(J) = A(J) + B(I)")
            .build()
    }

    #[test]
    fn each_analysis_builds_at_most_once() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        let line = machine.line_elems();
        let space = UnrollSpace::new(2, &[0], 4);

        for _ in 0..5 {
            ctx.dep_graph();
            ctx.safe_bounds();
            ctx.ugs();
            ctx.locality_score(0, line);
            ctx.tables(&space).expect("depth matches");
        }
        assert_eq!(
            ctx.stats(),
            CtxStats {
                dep_graph_builds: 1,
                bounds_builds: 1,
                ugs_builds: 1,
                locality_builds: 1,
                cost_table_builds: 1,
            }
        );
    }

    #[test]
    fn distinct_table_keys_build_separately() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        let a = UnrollSpace::new(2, &[0], 4);
        let b = UnrollSpace::new(2, &[0], 6);
        ctx.tables(&a).expect("a");
        ctx.tables(&b).expect("b");
        ctx.tables(&a).expect("a cached");
        assert_eq!(ctx.stats().cost_table_builds, 2);
        // The partition behind both builds was still computed only once.
        assert_eq!(ctx.stats().ugs_builds, 1);
    }

    #[test]
    fn depth_mismatch_is_an_error_not_a_panic() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        let wrong = UnrollSpace::new(3, &[0], 4);
        assert_eq!(
            ctx.tables(&wrong).unwrap_err(),
            OptimizeError::DepthMismatch { nest: 2, space: 3 }
        );
    }

    #[test]
    fn invalid_nests_are_rejected_at_construction() {
        let nest = bad_nest();
        let machine = MachineModel::dec_alpha();
        assert!(matches!(
            AnalysisCtx::new(&nest, &machine),
            Err(OptimizeError::InvalidNest(_))
        ));
    }
}
