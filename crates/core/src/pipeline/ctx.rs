//! The shared, memoizing analysis context every pass runs against.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use crate::pipeline::{CancelToken, OptimizeError};
use crate::space::UnrollSpace;
use crate::tables::CostTables;
use ujam_dep::{safe_unroll_bounds, DepGraph};
use ujam_ir::LoopNest;
use ujam_machine::MachineModel;
use ujam_metrics::MetricsHandle;
use ujam_reuse::{ugs_cost, Localized, UgsSet};
use ujam_trace::{null_sink, TraceRecord, TraceSink};

/// Cache key for [`CostTables`]: the unrolled loop positions, their
/// per-dimension bounds, and the cache line size in elements.
type TableKey = (Vec<usize>, Vec<u32>, i64);

/// How many times each analysis has actually been computed (`*_builds`)
/// versus served from cache (`*_hits`).  Exposed so tests can prove both
/// halves of the amortization claim: every analysis runs at most once,
/// and repeated queries really are cache hits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtxStats {
    /// Dependence-graph constructions.
    pub dep_graph_builds: usize,
    /// Safety-bound derivations.
    pub bounds_builds: usize,
    /// UGS partitionings of the nest.
    pub ugs_builds: usize,
    /// Locality-score evaluations (one per `(loop, line)` pair).
    pub locality_builds: usize,
    /// Cost-table constructions (one per `(loops, bounds, line)` key).
    pub cost_table_builds: usize,
    /// Dependence-graph queries served from cache.
    pub dep_graph_hits: usize,
    /// Safety-bound queries served from cache.
    pub bounds_hits: usize,
    /// UGS-partition queries served from cache.
    pub ugs_hits: usize,
    /// Locality-score queries served from cache.
    pub locality_hits: usize,
    /// Cost-table queries served from cache.
    pub cost_table_hits: usize,
}

/// Wall time spent *building* each cached analysis, in nanoseconds.
/// Cache hits add nothing here — the gap between a hit and its build
/// time is exactly the amortization the paper claims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CtxTimings {
    /// Nanoseconds constructing the dependence graph.
    pub dep_graph_ns: u128,
    /// Nanoseconds deriving the safety bounds.
    pub bounds_ns: u128,
    /// Nanoseconds partitioning into uniformly generated sets.
    pub ugs_ns: u128,
    /// Nanoseconds evaluating locality scores.
    pub locality_ns: u128,
    /// Nanoseconds building cost tables.
    pub cost_table_ns: u128,
}

impl CtxTimings {
    /// Total build time across every analysis, nanoseconds.
    pub fn total_ns(&self) -> u128 {
        self.dep_graph_ns + self.bounds_ns + self.ugs_ns + self.locality_ns + self.cost_table_ns
    }
}

/// Lazily computes and caches every per-nest analysis the optimizer
/// needs: the dependence graph, dependence-derived safety bounds, the
/// UGS partition, per-loop locality scores, and [`CostTables`] keyed by
/// `(loops, bounds, line)`.
///
/// One context serves one `(nest, machine)` pair; passes borrow it
/// mutably and query, so each analysis runs at most once no matter how
/// many passes (or repeated pass runs) consume it.
///
/// A context built with [`AnalysisCtx::with_sink`] additionally streams
/// cache hit/miss counters to the sink and lets passes emit wall-time
/// spans and decision provenance; [`AnalysisCtx::new`] uses the
/// [`ujam_trace::NullSink`], whose `enabled() == false` fast path keeps
/// the untraced pipeline free of record construction.
///
/// # Example
///
/// ```
/// use ujam_core::pipeline::{AnalysisCtx, Pass, SelectLoops};
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// let nest = NestBuilder::new("intro")
///     .array("A", &[242]).array("B", &[242])
///     .loop_("J", 1, 240).loop_("I", 1, 240)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let machine = MachineModel::dec_alpha();
/// let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid nest");
/// let space = SelectLoops::default().run(&mut ctx).expect("selection succeeds");
/// assert_eq!(space.loops(), &[0]);
/// assert_eq!(ctx.stats().dep_graph_builds, 1);
/// ```
pub struct AnalysisCtx<'a> {
    nest: &'a LoopNest,
    machine: &'a MachineModel,
    sink: &'a dyn TraceSink,
    metrics: MetricsHandle,
    cancel: CancelToken,
    dep_graph: Option<DepGraph>,
    safe_bounds: Option<Vec<u32>>,
    ugs: Option<Vec<UgsSet>>,
    locality: HashMap<(usize, i64), f64>,
    tables: HashMap<TableKey, Rc<CostTables>>,
    stats: CtxStats,
    timings: CtxTimings,
}

impl std::fmt::Debug for AnalysisCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCtx")
            .field("nest", &self.nest.name())
            .field("machine", &self.machine.name())
            .field("tracing", &self.sink.enabled())
            .field("stats", &self.stats)
            .field("timings", &self.timings)
            .finish_non_exhaustive()
    }
}

impl<'a> AnalysisCtx<'a> {
    /// Creates an untraced context after validating the nest.
    ///
    /// Malformed nests (structural validation failures, zero loops) are
    /// rejected here, which is what makes every downstream pass — and
    /// every public `optimize*` wrapper — panic-free on bad input.
    pub fn new(
        nest: &'a LoopNest,
        machine: &'a MachineModel,
    ) -> Result<AnalysisCtx<'a>, OptimizeError> {
        AnalysisCtx::with_sink(nest, machine, null_sink())
    }

    /// [`AnalysisCtx::new`] with an explicit trace sink: cache hits and
    /// misses stream to `sink` as counters, and passes run through
    /// [`super::Pass::run_traced`] additionally emit wall-time spans and
    /// explain records.
    pub fn with_sink(
        nest: &'a LoopNest,
        machine: &'a MachineModel,
        sink: &'a dyn TraceSink,
    ) -> Result<AnalysisCtx<'a>, OptimizeError> {
        AnalysisCtx::with_sink_and_cancel(nest, machine, sink, CancelToken::never())
    }

    /// [`AnalysisCtx::with_sink`] with a cancellation token: every pass
    /// checks it at entry, and the search stages additionally check it
    /// at candidate granularity, so a fired token surfaces as
    /// [`OptimizeError::DeadlineExceeded`] within a bounded amount of
    /// work.  A token that is already fired fails here, before any
    /// analysis runs.
    pub fn with_sink_and_cancel(
        nest: &'a LoopNest,
        machine: &'a MachineModel,
        sink: &'a dyn TraceSink,
        cancel: CancelToken,
    ) -> Result<AnalysisCtx<'a>, OptimizeError> {
        AnalysisCtx::with_observability(nest, machine, sink, MetricsHandle::disabled(), cancel)
    }

    /// [`AnalysisCtx::with_sink_and_cancel`] with a metrics handle:
    /// passes run through [`super::Pass::run_traced`] additionally
    /// record their wall time into a `pass.<name>.ns` histogram.  With
    /// [`MetricsHandle::disabled`] this is exactly
    /// [`AnalysisCtx::with_sink_and_cancel`] — metrics, like tracing,
    /// observe the pipeline without steering it.
    pub fn with_observability(
        nest: &'a LoopNest,
        machine: &'a MachineModel,
        sink: &'a dyn TraceSink,
        metrics: MetricsHandle,
        cancel: CancelToken,
    ) -> Result<AnalysisCtx<'a>, OptimizeError> {
        nest.validate().map_err(OptimizeError::InvalidNest)?;
        if nest.depth() == 0 {
            return Err(OptimizeError::EmptyNest);
        }
        if cancel.is_cancelled() {
            return Err(OptimizeError::DeadlineExceeded);
        }
        Ok(AnalysisCtx {
            nest,
            machine,
            sink,
            metrics,
            cancel,
            dep_graph: None,
            safe_bounds: None,
            ugs: None,
            locality: HashMap::new(),
            tables: HashMap::new(),
            stats: CtxStats::default(),
            timings: CtxTimings::default(),
        })
    }

    /// The nest under optimization.
    pub fn nest(&self) -> &'a LoopNest {
        self.nest
    }

    /// The target machine model.
    pub fn machine(&self) -> &'a MachineModel {
        self.machine
    }

    /// The trace sink instrumentation reports to.
    pub fn sink(&self) -> &'a dyn TraceSink {
        self.sink
    }

    /// Whether the sink wants records — the guard every emission site
    /// checks before constructing a record.
    pub fn tracing(&self) -> bool {
        self.sink.enabled()
    }

    /// The metrics handle instrumentation reports to (disabled unless
    /// the context was built with [`AnalysisCtx::with_observability`]).
    pub fn metrics(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// The cancellation token the pipeline cooperates with.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Fails with [`OptimizeError::DeadlineExceeded`] once the context's
    /// token has fired.  Every pass calls this at entry; the search
    /// stages also poll mid-walk.
    pub fn check_cancelled(&self) -> Result<(), OptimizeError> {
        if self.cancel.is_cancelled() {
            Err(OptimizeError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }

    /// Build/hit counters proving each analysis runs at most once.
    pub fn stats(&self) -> CtxStats {
        self.stats
    }

    /// Wall time spent building each cached analysis.
    pub fn timings(&self) -> CtxTimings {
        self.timings
    }

    /// Emits a cache-event counter increment when tracing is enabled.
    fn count(&self, name: &str) {
        if self.sink.enabled() {
            self.sink
                .record(TraceRecord::counter(self.nest.name(), name, 1));
        }
    }

    /// The dependence graph, built on first use.
    pub fn dep_graph(&mut self) -> &DepGraph {
        if self.dep_graph.is_none() {
            self.stats.dep_graph_builds += 1;
            self.count("dep_graph.build");
            let t0 = Instant::now();
            self.dep_graph = Some(DepGraph::build(self.nest));
            self.timings.dep_graph_ns += t0.elapsed().as_nanos();
        } else {
            self.stats.dep_graph_hits += 1;
            self.count("dep_graph.hit");
        }
        self.dep_graph.as_ref().expect("just computed")
    }

    /// Per-loop dependence-safety unroll bounds, derived on first use.
    pub fn safe_bounds(&mut self) -> &[u32] {
        if self.safe_bounds.is_none() {
            self.dep_graph();
            self.stats.bounds_builds += 1;
            self.count("bounds.build");
            let t0 = Instant::now();
            let graph = self.dep_graph.as_ref().expect("just ensured");
            self.safe_bounds = Some(safe_unroll_bounds(self.nest, graph));
            self.timings.bounds_ns += t0.elapsed().as_nanos();
        } else {
            self.stats.bounds_hits += 1;
            self.count("bounds.hit");
        }
        self.safe_bounds.as_deref().expect("just computed")
    }

    /// The uniformly generated sets of the nest, partitioned on first
    /// use and shared by locality scoring and table construction.
    pub fn ugs(&mut self) -> &[UgsSet] {
        if self.ugs.is_none() {
            self.stats.ugs_builds += 1;
            self.count("ugs.build");
            let t0 = Instant::now();
            self.ugs = Some(UgsSet::partition(self.nest));
            self.timings.ugs_ns += t0.elapsed().as_nanos();
        } else {
            self.stats.ugs_hits += 1;
            self.count("ugs.hit");
        }
        self.ugs.as_deref().expect("just computed")
    }

    /// The locality score of unrolling `loop_idx` (Equation 1 with and
    /// without the loop localized), cached per `(loop, line)` pair.
    pub fn locality_score(&mut self, loop_idx: usize, line_elems: i64) -> f64 {
        if let Some(&score) = self.locality.get(&(loop_idx, line_elems)) {
            self.stats.locality_hits += 1;
            self.count("locality.hit");
            return score;
        }
        self.ugs();
        self.stats.locality_builds += 1;
        self.count("locality.build");
        let t0 = Instant::now();
        let depth = self.nest.depth();
        let inner = Localized::innermost(depth);
        let with = Localized::with_unrolled(depth, &[loop_idx]);
        let sets = self.ugs.as_deref().expect("just ensured");
        let score = sets
            .iter()
            .map(|s| ugs_cost(s, &inner, line_elems) - ugs_cost(s, &with, line_elems))
            .sum();
        self.locality.insert((loop_idx, line_elems), score);
        self.timings.locality_ns += t0.elapsed().as_nanos();
        score
    }

    /// The cost tables for an unroll space, built once per
    /// `(loops, bounds, line)` key and shared via `Rc`.
    pub fn tables(&mut self, space: &UnrollSpace) -> Result<Rc<CostTables>, OptimizeError> {
        if space.depth() != self.nest.depth() {
            return Err(OptimizeError::DepthMismatch {
                nest: self.nest.depth(),
                space: space.depth(),
            });
        }
        let key: TableKey = (
            space.loops().to_vec(),
            space.bounds().to_vec(),
            self.machine.line_elems(),
        );
        if let Some(tables) = self.tables.get(&key) {
            self.stats.cost_table_hits += 1;
            self.count("cost_tables.hit");
            return Ok(Rc::clone(tables));
        }
        self.ugs();
        self.stats.cost_table_builds += 1;
        self.count("cost_tables.build");
        let t0 = Instant::now();
        let sets = self.ugs.as_deref().expect("just ensured");
        let tables = Rc::new(CostTables::build_with_sets(
            self.nest,
            sets,
            space,
            self.machine.line_elems(),
        ));
        self.timings.cost_table_ns += t0.elapsed().as_nanos();
        self.tables.insert(key, Rc::clone(&tables));
        Ok(tables)
    }
}

/// A structurally invalid nest for negative-path tests: the statement
/// reads undeclared `Z`, which `NestBuilder::build` would refuse to
/// construct — assembled with the raw constructor instead, exactly what
/// a front end handing over unvalidated IR looks like.
#[cfg(test)]
pub(crate) fn bad_nest() -> LoopNest {
    use ujam_ir::{parse_expr, sub, subs, ArrayDecl, ArrayRef, Loop, Stmt};
    LoopNest::new(
        "bad",
        vec![ArrayDecl::new("A", &[16])],
        vec![Loop::new("J", 1, 8), Loop::new("I", 1, 8)],
        vec![Stmt::assign(
            ArrayRef::new("A", subs(&[sub("I")])),
            parse_expr("Z(I) + 1.0").expect("parses"),
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;
    use ujam_trace::CollectingSink;

    fn intro() -> LoopNest {
        NestBuilder::new("intro")
            .array("A", &[242])
            .array("B", &[242])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt("A(J) = A(J) + B(I)")
            .build()
    }

    #[test]
    fn each_analysis_builds_at_most_once() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        let line = machine.line_elems();
        let space = UnrollSpace::new(2, &[0], 4);

        for _ in 0..5 {
            ctx.dep_graph();
            ctx.safe_bounds();
            ctx.ugs();
            ctx.locality_score(0, line);
            ctx.tables(&space).expect("depth matches");
        }
        let stats = ctx.stats();
        assert_eq!(
            (
                stats.dep_graph_builds,
                stats.bounds_builds,
                stats.ugs_builds,
                stats.locality_builds,
                stats.cost_table_builds,
            ),
            (1, 1, 1, 1, 1)
        );
    }

    /// The other half of the amortization claim: repeated queries are
    /// served from cache, and the hit counters prove it.  (The first
    /// iteration produces two internal hits — `safe_bounds` re-queries
    /// the dependence graph and `locality`/`tables` re-query the UGS
    /// partition; later iterations hit on every direct query.)
    #[test]
    fn repeated_queries_are_cache_hits() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        let line = machine.line_elems();
        let space = UnrollSpace::new(2, &[0], 4);

        for _ in 0..5 {
            ctx.dep_graph();
            ctx.safe_bounds();
            ctx.ugs();
            ctx.locality_score(0, line);
            ctx.tables(&space).expect("depth matches");
        }
        assert_eq!(
            ctx.stats(),
            CtxStats {
                dep_graph_builds: 1,
                bounds_builds: 1,
                ugs_builds: 1,
                locality_builds: 1,
                cost_table_builds: 1,
                // 4 direct re-queries + 1 internal (from the first
                // safe_bounds build).
                dep_graph_hits: 5,
                bounds_hits: 4,
                // 4 direct re-queries + 2 internal (first locality and
                // first cost-table build both ensure the partition).
                ugs_hits: 6,
                locality_hits: 4,
                cost_table_hits: 4,
            }
        );
    }

    #[test]
    fn build_timings_accumulate_only_on_builds() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        ctx.dep_graph();
        let after_build = ctx.timings();
        ctx.dep_graph();
        ctx.dep_graph();
        assert_eq!(
            ctx.timings().dep_graph_ns,
            after_build.dep_graph_ns,
            "hits must not add build time"
        );
        assert_eq!(ctx.timings().total_ns(), after_build.total_ns());
    }

    #[test]
    fn sinks_receive_hit_and_build_counters() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let sink = CollectingSink::new();
        let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &sink).expect("valid");
        ctx.ugs();
        ctx.ugs();
        ctx.ugs();
        let totals = sink.take().counter_totals();
        assert_eq!(
            totals,
            vec![
                ("intro".to_string(), "ugs.build".to_string(), 1),
                ("intro".to_string(), "ugs.hit".to_string(), 2),
            ]
        );
    }

    #[test]
    fn distinct_table_keys_build_separately() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        let a = UnrollSpace::new(2, &[0], 4);
        let b = UnrollSpace::new(2, &[0], 6);
        ctx.tables(&a).expect("a");
        ctx.tables(&b).expect("b");
        ctx.tables(&a).expect("a cached");
        assert_eq!(ctx.stats().cost_table_builds, 2);
        assert_eq!(ctx.stats().cost_table_hits, 1);
        // The partition behind both builds was still computed only once.
        assert_eq!(ctx.stats().ugs_builds, 1);
    }

    #[test]
    fn depth_mismatch_is_an_error_not_a_panic() {
        let nest = intro();
        let machine = MachineModel::dec_alpha();
        let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
        let wrong = UnrollSpace::new(3, &[0], 4);
        assert_eq!(
            ctx.tables(&wrong).unwrap_err(),
            OptimizeError::DepthMismatch { nest: 2, space: 3 }
        );
    }

    #[test]
    fn invalid_nests_are_rejected_at_construction() {
        let nest = bad_nest();
        let machine = MachineModel::dec_alpha();
        assert!(matches!(
            AnalysisCtx::new(&nest, &machine),
            Err(OptimizeError::InvalidNest(_))
        ));
    }
}
