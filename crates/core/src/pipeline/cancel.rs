//! Cooperative cancellation for long-running optimizations.
//!
//! A serving layer cannot afford an unbounded search: a request either
//! finishes inside its deadline or must give the worker back.  The
//! pipeline's passes are pure and cheap to abandon, so cancellation is
//! *cooperative*: a [`CancelToken`] is threaded through the
//! [`super::AnalysisCtx`] and checked at pass boundaries and — inside
//! the two search stages, where the real time goes — at candidate
//! granularity.  A fired token surfaces as
//! [`super::OptimizeError::DeadlineExceeded`]; no partial plan escapes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many candidates a search walk scores between deadline checks.
/// Flag checks are a single relaxed atomic load and happen every
/// candidate; `Instant::now` is costlier, so the clock is only consulted
/// once per stride.  Table-search candidates cost well over a
/// microsecond each, so a stride of 32 bounds deadline overshoot to a
/// few tens of microseconds.
pub(crate) const DEADLINE_CHECK_STRIDE: u32 = 32;

/// Shared state behind cancellable tokens.
#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cheap, clonable handle that tells a running optimization to stop.
///
/// Tokens are either *inert* (the default — [`CancelToken::never`], zero
/// overhead beyond one branch) or carry shared state: an explicit flag
/// raised by [`CancelToken::cancel`], an absolute deadline, or both.
/// All clones observe the same state, so a server can hand one clone to
/// the pipeline and keep another to revoke the request.
///
/// # Example
///
/// ```
/// use ujam_core::CancelToken;
/// use std::time::Duration;
///
/// let never = CancelToken::never();
/// assert!(!never.is_cancelled());
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// token.cancel();
/// assert!(watcher.is_cancelled());
///
/// let expired = CancelToken::with_deadline(Duration::ZERO);
/// assert!(expired.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never fires.  This is the default for every
    /// non-serving entry point; checking it is a single `None` branch.
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A manually-fired token: inert until [`CancelToken::cancel`] is
    /// called on any clone.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that fires once `budget` has elapsed (measured from now),
    /// or when any clone calls [`CancelToken::cancel`] — whichever comes
    /// first.  A zero budget is already expired.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            })),
        }
    }

    /// Fires the token: every clone reports cancelled from now on.
    /// Inert ([`CancelToken::never`]) tokens ignore this.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has fired — explicitly or by deadline.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| {
                        // Latch deadline expiry into the flag so later
                        // checks (and other clones) skip the clock.
                        let expired = Instant::now() >= d;
                        if expired {
                            inner.flag.store(true, Ordering::Relaxed);
                        }
                        expired
                    })
            }
        }
    }

    /// Whether the explicit flag is already raised, without consulting
    /// the clock.  The search walks call this every candidate and fall
    /// back to the full [`CancelToken::is_cancelled`] (clock included)
    /// once per [`DEADLINE_CHECK_STRIDE`] candidates.
    pub(crate) fn flag_raised(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.flag.load(Ordering::Relaxed),
        }
    }

    /// Whether this token can ever fire (i.e. is not
    /// [`CancelToken::never`]).
    pub fn can_cancel(&self) -> bool {
        self.inner.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!t.can_cancel());
        assert!(!t.flag_raised());
    }

    #[test]
    fn cancel_is_visible_to_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(c.flag_raised());
    }

    #[test]
    fn zero_deadline_is_already_expired() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.can_cancel());
        assert!(t.is_cancelled());
        // Expiry latches into the flag for cheap re-checks.
        assert!(t.flag_raised());
    }

    #[test]
    fn generous_deadline_does_not_fire_early() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled(), "explicit cancel overrides the deadline");
    }
}
