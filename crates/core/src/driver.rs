//! The end-to-end optimizer (§4.5), as thin wrappers over the staged
//! pipeline in [`crate::pipeline`]: select loops, build tables, search,
//! apply.

use crate::balance::{loop_balance, BalanceInputs};
use crate::costmodel::CostModelKind;
use crate::pipeline::{
    AnalysisCtx, ApplyTransform, CancelToken, OptimizeError, Pass, SearchSpace, SelectLoops,
};
use crate::space::UnrollSpace;
use ujam_ir::LoopNest;
use ujam_machine::MachineModel;
use ujam_metrics::MetricsHandle;
use ujam_trace::TraceSink;

/// Register-tiling knobs for the search: how many loops the unroll
/// vector may span and how large the unrolled body may grow.
///
/// The default reproduces the paper's arm exactly — at most two loops
/// (§4.5), no code-size cap — so a pipeline driven with
/// `SearchConfig::default()` is bitwise-identical to one driven through
/// [`optimize`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchConfig {
    /// Most loops the unroll vector may span; `0` = unbounded.
    pub max_unroll_loops: usize,
    /// Most statements the unrolled body may hold (`copies × original
    /// statements`, an icache proxy); `None` disables the budget.
    pub code_budget: Option<usize>,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            max_unroll_loops: 2,
            code_budget: None,
        }
    }
}

/// Which balance model guides the search (§5.2's two experimental arms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceModel {
    /// Assume every access hits in cache (Carr & Kennedy '94): the "No
    /// Cache" series of Figures 8–9.
    AllHits,
    /// Charge unserviced cache lines at the miss ratio (§3.2): the
    /// "Cache" series.
    CacheAware,
}

/// The predicted behaviour of a (possibly unrolled) loop body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Loop balance with the cache model (§3.2).
    pub balance: f64,
    /// Loop balance assuming every access hits (the older model).
    pub no_cache_balance: f64,
    /// Memory operations per iteration.
    pub memory_ops: f64,
    /// Floating-point operations per iteration.
    pub flops: f64,
    /// Cache lines fetched per iteration.
    pub cache_lines: f64,
    /// Registers consumed by scalar replacement.
    pub registers: i64,
}

impl Prediction {
    pub(crate) fn from_inputs(i: &BalanceInputs, machine: &MachineModel) -> Prediction {
        Prediction {
            balance: loop_balance(i, machine),
            no_cache_balance: i.no_cache_balance(),
            memory_ops: i.memory_ops,
            flops: i.flops,
            cache_lines: i.cache_lines,
            registers: i.registers,
        }
    }
}

/// Result of the optimization: the chosen unroll vector, the transformed
/// nest, and the predicted before/after behaviour.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The unrolled-and-jammed nest (scalar replacement is a separate,
    /// composable step: `ujam_ir::transform::scalar_replacement`).
    pub nest: LoopNest,
    /// The chosen unroll vector, one entry per nest loop.
    pub unroll: Vec<u32>,
    /// Predicted behaviour at the chosen vector.
    pub predicted: Prediction,
    /// Predicted behaviour of the original loop (`u = 0`).
    pub original: Prediction,
    /// The space that was searched.
    pub space: UnrollSpace,
}

/// Optimizes a nest for a machine: selects loops, builds the tables,
/// searches the unroll space, and applies the winning transformation.
///
/// The search minimizes `|β_L(u) − β_M|` subject to the register
/// constraint (§3.3's integer optimization problem), over unroll vectors
/// that the dependence analysis proves safe and whose factors divide the
/// loop trip counts (so the transformation applies without a clean-up
/// loop).  Ties prefer fewer body copies.
///
/// Malformed nests return an [`OptimizeError`] instead of panicking.
///
/// # Example
///
/// ```
/// use ujam_core::optimize;
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// let nest = NestBuilder::new("dmxpy")
///     .array("Y", &[256]).array("X", &[256]).array("M", &[256, 256])
///     .loop_("J", 1, 256).loop_("I", 1, 256)
///     .stmt("Y(I) = Y(I) + X(J) * M(I,J)")
///     .build();
/// let plan = optimize(&nest, &MachineModel::dec_alpha()).expect("valid nest");
/// assert!(plan.unroll[0] >= 1, "dmxpy profits from unrolling J");
/// assert!(plan.predicted.balance < plan.original.balance);
/// ```
pub fn optimize(nest: &LoopNest, machine: &MachineModel) -> Result<Optimized, OptimizeError> {
    optimize_with(nest, machine, BalanceModel::CacheAware)
}

/// [`optimize`] with an explicit cost model (§5.2 compares both arms).
pub fn optimize_with(
    nest: &LoopNest,
    machine: &MachineModel,
    model: BalanceModel,
) -> Result<Optimized, OptimizeError> {
    optimize_traced(nest, machine, model, ujam_trace::null_sink())
}

/// [`optimize_with`] with a trace sink: every pipeline pass emits a
/// wall-time span, the analysis context streams cache hit/miss
/// counters, and the search stage records per-candidate decision
/// provenance ([`ujam_trace::ExplainRecord`]).
///
/// Tracing observes the pipeline without steering it: the returned plan
/// is identical to [`optimize_with`]'s no matter which sink is passed
/// (with [`ujam_trace::NullSink`] the two are literally the same call).
///
/// # Example
///
/// ```
/// use ujam_core::{optimize_traced, BalanceModel};
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// use ujam_trace::{CollectingSink, Verdict};
/// let nest = NestBuilder::new("intro")
///     .array("A", &[242]).array("B", &[242])
///     .loop_("J", 1, 240).loop_("I", 1, 240)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let sink = CollectingSink::new();
/// let plan = optimize_traced(&nest, &MachineModel::dec_alpha(),
///                            BalanceModel::CacheAware, &sink).expect("valid");
/// let trace = sink.take();
/// let winner = trace.explains().find(|e| e.verdict == Verdict::Won).expect("one wins");
/// assert_eq!(winner.u, plan.unroll);
/// assert!(trace.spans().any(|(_, pass, _)| pass == "search-space"));
/// ```
pub fn optimize_traced(
    nest: &LoopNest,
    machine: &MachineModel,
    model: BalanceModel,
    sink: &dyn TraceSink,
) -> Result<Optimized, OptimizeError> {
    optimize_cancellable(nest, machine, model, sink, CancelToken::never())
}

/// [`optimize_traced`] under a cooperative [`CancelToken`]: every pass
/// checks the token at entry and the search stages poll it at candidate
/// granularity, so a fired token (an explicit [`CancelToken::cancel`] or
/// an elapsed deadline) surfaces as
/// [`OptimizeError::DeadlineExceeded`] within a bounded amount of extra
/// work.  With [`CancelToken::never`] this is exactly
/// [`optimize_traced`].
///
/// Cancellation never yields a partial plan: the result is either the
/// same `Optimized` an uncancelled run would return, or the structured
/// error — which is what lets a serving layer cache every `Ok` without
/// poisoning.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use ujam_core::{optimize_cancellable, CancelToken, BalanceModel, OptimizeError};
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// let nest = NestBuilder::new("intro")
///     .array("A", &[242]).array("B", &[242])
///     .loop_("J", 1, 240).loop_("I", 1, 240)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let expired = CancelToken::with_deadline(Duration::ZERO);
/// let err = optimize_cancellable(&nest, &MachineModel::dec_alpha(),
///                                BalanceModel::CacheAware, ujam_trace::null_sink(), expired);
/// assert_eq!(err.unwrap_err(), OptimizeError::DeadlineExceeded);
/// ```
pub fn optimize_cancellable(
    nest: &LoopNest,
    machine: &MachineModel,
    model: BalanceModel,
    sink: &dyn TraceSink,
    cancel: CancelToken,
) -> Result<Optimized, OptimizeError> {
    optimize_observed(
        nest,
        machine,
        model,
        sink,
        cancel,
        MetricsHandle::disabled(),
    )
}

/// [`optimize_cancellable`] with a [`MetricsHandle`]: every pipeline
/// pass additionally records its wall time into a `pass.<name>.ns`
/// histogram in the handle's registry.  Like tracing, metrics observe
/// the pipeline without steering it — the returned plan is identical no
/// matter which handle is passed, and with [`MetricsHandle::disabled`]
/// this is exactly [`optimize_cancellable`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ujam_core::{optimize_observed, CancelToken, BalanceModel};
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// use ujam_metrics::{MetricsHandle, MetricsRegistry};
/// let nest = NestBuilder::new("intro")
///     .array("A", &[242]).array("B", &[242])
///     .loop_("J", 1, 240).loop_("I", 1, 240)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let registry = Arc::new(MetricsRegistry::new());
/// optimize_observed(&nest, &MachineModel::dec_alpha(), BalanceModel::CacheAware,
///                   ujam_trace::null_sink(), CancelToken::never(),
///                   MetricsHandle::new(Arc::clone(&registry))).expect("valid");
/// let snap = registry.snapshot();
/// assert_eq!(snap.histogram("pass.select-loops.ns").unwrap().count, 1);
/// assert_eq!(snap.histogram("pass.search-space.ns").unwrap().count, 1);
/// ```
pub fn optimize_observed(
    nest: &LoopNest,
    machine: &MachineModel,
    model: BalanceModel,
    sink: &dyn TraceSink,
    cancel: CancelToken,
    metrics: MetricsHandle,
) -> Result<Optimized, OptimizeError> {
    optimize_configured(
        nest,
        machine,
        model,
        sink,
        cancel,
        metrics,
        SearchConfig::default(),
    )
}

/// The root of the wrapper chain: [`optimize_observed`] with explicit
/// register-tiling knobs.  `config.max_unroll_loops` parameterizes the
/// loop-selection stage and `config.code_budget` adds the code-size
/// constraint to the search; with [`SearchConfig::default`] this is
/// exactly [`optimize_observed`].
///
/// # Example
///
/// ```
/// use ujam_core::{optimize_configured, CancelToken, BalanceModel, SearchConfig};
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// use ujam_metrics::MetricsHandle;
/// let nest = NestBuilder::new("mm")
///     .array("A", &[26, 26]).array("B", &[26, 26]).array("C", &[26, 26])
///     .loop_("J", 1, 24).loop_("K", 1, 24).loop_("I", 1, 24)
///     .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
///     .build();
/// let config = SearchConfig { max_unroll_loops: 3, code_budget: Some(64) };
/// let plan = optimize_configured(&nest, &MachineModel::dec_alpha(),
///                                BalanceModel::CacheAware, ujam_trace::null_sink(),
///                                CancelToken::never(), MetricsHandle::disabled(),
///                                config).expect("valid");
/// assert!(plan.nest.body().len() <= 64, "the code budget binds");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn optimize_configured(
    nest: &LoopNest,
    machine: &MachineModel,
    model: BalanceModel,
    sink: &dyn TraceSink,
    cancel: CancelToken,
    metrics: MetricsHandle,
    config: SearchConfig,
) -> Result<Optimized, OptimizeError> {
    optimize_costed(
        nest,
        machine,
        model,
        CostModelKind::Analytic,
        sink,
        cancel,
        metrics,
        config,
    )
}

/// The root of the wrapper chain: [`optimize_configured`] with an
/// explicit cache-cost backend.  [`CostModelKind::Analytic`] reproduces
/// the classic pipeline bitwise; [`CostModelKind::Profiled`] and
/// [`CostModelKind::Blended`] score every candidate's cache lines by
/// reuse-distance-profiling the materialized candidate under the IR
/// interpreter (see `ujam_sim::profile_nest`) — exact, but materially
/// slower.
///
/// # Example
///
/// ```
/// use ujam_core::{optimize_costed, BalanceModel, CancelToken, CostModelKind, SearchConfig};
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// use ujam_metrics::MetricsHandle;
/// let nest = NestBuilder::new("intro")
///     .array("A", &[50]).array("B", &[50])
///     .loop_("J", 1, 48).loop_("I", 1, 48)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let plan = optimize_costed(&nest, &MachineModel::dec_alpha(),
///                            BalanceModel::CacheAware, CostModelKind::Profiled,
///                            ujam_trace::null_sink(), CancelToken::never(),
///                            MetricsHandle::disabled(),
///                            SearchConfig::default()).expect("valid");
/// assert_eq!(plan.unroll.len(), 2);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn optimize_costed(
    nest: &LoopNest,
    machine: &MachineModel,
    model: BalanceModel,
    cost: CostModelKind,
    sink: &dyn TraceSink,
    cancel: CancelToken,
    metrics: MetricsHandle,
    config: SearchConfig,
) -> Result<Optimized, OptimizeError> {
    let mut ctx = AnalysisCtx::with_observability(nest, machine, sink, metrics, cancel)?;
    let space = SelectLoops {
        max_loops: config.max_unroll_loops,
    }
    .run_traced(&mut ctx)?;
    finish(&mut ctx, &space, model, cost, config.code_budget)
}

/// [`optimize`] with an explicit, caller-chosen unroll space.
///
/// A space whose depth does not match the nest returns
/// [`OptimizeError::DepthMismatch`].
pub fn optimize_in_space(
    nest: &LoopNest,
    machine: &MachineModel,
    space: &UnrollSpace,
) -> Result<Optimized, OptimizeError> {
    optimize_in_space_with(nest, machine, space, BalanceModel::CacheAware)
}

/// [`optimize_in_space`] with an explicit cost model.
pub fn optimize_in_space_with(
    nest: &LoopNest,
    machine: &MachineModel,
    space: &UnrollSpace,
    model: BalanceModel,
) -> Result<Optimized, OptimizeError> {
    let mut ctx = AnalysisCtx::new(nest, machine)?;
    finish(&mut ctx, space, model, CostModelKind::Analytic, None)
}

/// Runs the tail of the standard pipeline — `BuildTables` (inside
/// `SearchSpace`) then `ApplyTransform` — against a prepared context.
pub(crate) fn finish(
    ctx: &mut AnalysisCtx<'_>,
    space: &UnrollSpace,
    model: BalanceModel,
    cost: CostModelKind,
    code_budget: Option<usize>,
) -> Result<Optimized, OptimizeError> {
    let found = SearchSpace {
        space: space.clone(),
        model,
        cost,
        code_budget,
    }
    .run_traced(ctx)?;
    let nest_out = ApplyTransform {
        unroll: found.unroll.clone(),
    }
    .run_traced(ctx)?;
    Ok(Optimized {
        nest: nest_out,
        unroll: found.unroll,
        predicted: found.predicted,
        original: found.original,
        space: space.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;

    fn intro(n: i64) -> LoopNest {
        NestBuilder::new("intro")
            .array("A", &[n + 2])
            .array("B", &[n + 2])
            .loop_("J", 1, n)
            .loop_("I", 1, n)
            .stmt("A(J) = A(J) + B(I)")
            .build()
    }

    #[test]
    fn intro_loop_is_unrolled_toward_machine_balance() {
        let plan = optimize(&intro(240), &MachineModel::dec_alpha()).expect("valid nest");
        assert!(
            plan.unroll[0] >= 1,
            "J should be unrolled: {:?}",
            plan.unroll
        );
        assert_eq!(plan.unroll[1], 0);
        assert!(plan.predicted.no_cache_balance < plan.original.no_cache_balance);
        // The transformed nest is really unrolled.
        assert_eq!(plan.nest.body().len(), plan.unroll[0] as usize + 1);
    }

    #[test]
    fn register_constraint_limits_unrolling() {
        let tiny = MachineModel::builder("tiny")
            .rates(1.0, 1.0)
            .registers(8)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .build();
        let big = MachineModel::builder("big")
            .rates(1.0, 4.0)
            .registers(128)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .build();
        let nest = intro(240);
        let small_plan = optimize(&nest, &tiny).expect("valid nest");
        let big_plan = optimize(&nest, &big).expect("valid nest");
        assert!(small_plan.predicted.registers <= 2);
        assert!(big_plan.unroll[0] >= small_plan.unroll[0]);
    }

    #[test]
    fn balanced_loop_is_left_alone() {
        // One load, two flops on a 0.5-balance machine: already matched.
        let nest = NestBuilder::new("bal")
            .array("A", &[242])
            .array("B", &[242])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt("A(J) = A(J) + B(I) * B(I) + 2.0")
            .build();
        // no_cache model: M = 1 (B load; A hoisted), F = 3.
        let machine = MachineModel::builder("match")
            .rates(1.0, 3.0)
            .registers(32)
            .cache(8 * 1024, 32, 1)
            .miss(1.0, 1.0) // miss ratio 1: cache term negligible
            .build();
        let plan = optimize(&nest, &machine).expect("valid nest");
        assert_eq!(
            plan.unroll,
            vec![0, 0],
            "already-balanced loop must not be unrolled"
        );
    }

    #[test]
    fn dependence_safety_bounds_the_search() {
        // A(I,J) = A(I+1,J-2): unrolling J beyond 1 is illegal.
        let nest = NestBuilder::new("bw")
            .array("A", &[244, 244])
            .loop_("J", 3, 242)
            .loop_("I", 2, 241)
            .stmt("A(I,J) = A(I+1,J-2) * 0.5")
            .build();
        let plan = optimize(&nest, &MachineModel::dec_alpha()).expect("valid nest");
        assert!(
            plan.unroll[0] <= 1,
            "safety bound violated: {:?}",
            plan.unroll
        );
    }

    #[test]
    fn matmul_unrolls_two_loops_on_wide_machine() {
        let nest = NestBuilder::new("mm")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .array("C", &[64, 64])
            .loop_("J", 1, 60)
            .loop_("K", 1, 60)
            .loop_("I", 1, 60)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        let machine = MachineModel::builder("wide")
            .rates(1.0, 2.0)
            .registers(64)
            .cache(8 * 1024, 32, 1)
            .miss(10.0, 1.0)
            .build();
        let plan = optimize(&nest, &machine).expect("valid nest");
        let unrolled_loops = plan.unroll.iter().filter(|&&u| u > 0).count();
        assert!(
            unrolled_loops >= 1,
            "matmul should be unrolled: {:?}",
            plan.unroll
        );
        assert!(plan.predicted.balance <= plan.original.balance);
    }

    #[test]
    fn depth_mismatch_is_an_error() {
        let nest = intro(240);
        let space = UnrollSpace::new(3, &[0], 4);
        let err = optimize_in_space(&nest, &MachineModel::dec_alpha(), &space).unwrap_err();
        assert_eq!(err, OptimizeError::DepthMismatch { nest: 2, space: 3 });
    }

    /// Regression for the NaN-unsafe loop-selection sort: degenerate
    /// nests (zero-benefit loops, exact score ties across every
    /// candidate) must select deterministically and never panic.  The
    /// seed sorted with `partial_cmp(..).expect("scores are finite")`.
    #[test]
    fn degenerate_locality_scores_select_without_panicking() {
        // Every outer loop is absent from every subscript: all locality
        // scores are exactly equal (a maximal tie), and pure in-place
        // updates keep them degenerate.
        let nest = NestBuilder::new("degen")
            .array("A", &[26])
            .loop_("L", 1, 24)
            .loop_("K", 1, 24)
            .loop_("J", 1, 24)
            .loop_("I", 1, 24)
            .stmt("A(I) = A(I) * 0.5")
            .build();
        let plan = optimize(&nest, &MachineModel::dec_alpha()).expect("valid nest");
        assert_eq!(plan.unroll.len(), 4);
        // Deterministic: a re-run picks the same vector.
        let again = optimize(&nest, &MachineModel::dec_alpha()).expect("valid nest");
        assert_eq!(plan.unroll, again.unroll);
    }
}
