//! The end-to-end optimizer (§4.5): choose loops, build tables, search.

use crate::balance::{loop_balance, BalanceInputs};
use crate::space::UnrollSpace;
use crate::tables::CostTables;
use ujam_dep::{safe_unroll_bounds, DepGraph, UNROLL_CAP};
use ujam_ir::{transform::unroll_and_jam, LoopNest};
use ujam_machine::MachineModel;
use ujam_reuse::{nest_cache_cost, Localized};

/// Which balance model guides the search (§5.2's two experimental arms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostModel {
    /// Assume every access hits in cache (Carr & Kennedy '94): the "No
    /// Cache" series of Figures 8–9.
    AllHits,
    /// Charge unserviced cache lines at the miss ratio (§3.2): the
    /// "Cache" series.
    CacheAware,
}

/// The predicted behaviour of a (possibly unrolled) loop body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Loop balance with the cache model (§3.2).
    pub balance: f64,
    /// Loop balance assuming every access hits (the older model).
    pub no_cache_balance: f64,
    /// Memory operations per iteration.
    pub memory_ops: f64,
    /// Floating-point operations per iteration.
    pub flops: f64,
    /// Cache lines fetched per iteration.
    pub cache_lines: f64,
    /// Registers consumed by scalar replacement.
    pub registers: i64,
}

impl Prediction {
    fn from_inputs(i: &BalanceInputs, machine: &MachineModel) -> Prediction {
        Prediction {
            balance: loop_balance(i, machine),
            no_cache_balance: i.no_cache_balance(),
            memory_ops: i.memory_ops,
            flops: i.flops,
            cache_lines: i.cache_lines,
            registers: i.registers,
        }
    }
}

/// Result of the optimization: the chosen unroll vector, the transformed
/// nest, and the predicted before/after behaviour.
#[derive(Clone, Debug)]
pub struct Optimized {
    /// The unrolled-and-jammed nest (scalar replacement is a separate,
    /// composable step: `ujam_ir::transform::scalar_replacement`).
    pub nest: LoopNest,
    /// The chosen unroll vector, one entry per nest loop.
    pub unroll: Vec<u32>,
    /// Predicted behaviour at the chosen vector.
    pub predicted: Prediction,
    /// Predicted behaviour of the original loop (`u = 0`).
    pub original: Prediction,
    /// The space that was searched.
    pub space: UnrollSpace,
}

/// Scores a candidate loop for unrolling: how much cache traffic would
/// localizing it remove (Equation 1 with and without the loop in `L`)?
fn locality_score(nest: &LoopNest, loop_idx: usize, line: i64) -> f64 {
    let depth = nest.depth();
    let inner = Localized::innermost(depth);
    let with = Localized::with_unrolled(depth, &[loop_idx]);
    nest_cache_cost(nest, &inner, line) - nest_cache_cost(nest, &with, line)
}

/// Chooses up to two loops to unroll (§4.5: "we pick the two loops with
/// the best locality as measured by Equation 1"), restricted to loops the
/// dependence analysis allows to be jammed at all.
fn choose_loops(nest: &LoopNest, machine: &MachineModel, bounds: &[u32]) -> Vec<usize> {
    let line = machine.line_elems();
    let mut scored: Vec<(usize, f64)> = (0..nest.depth().saturating_sub(1))
        .filter(|&l| bounds[l] >= 1)
        .map(|l| (l, locality_score(nest, l, line)))
        .collect();
    // Highest locality benefit first; ties prefer outer position.
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite").then(a.0.cmp(&b.0)));
    let mut chosen: Vec<usize> = scored
        .iter()
        .filter(|&&(_, s)| s > 0.0)
        .take(2)
        .map(|&(l, _)| l)
        .collect();
    // A memory-bound loop can still profit from pure flop replication
    // (merging loads of invariant or group-reusing references); keep at
    // least one candidate when any loop is jammable.
    if chosen.is_empty() {
        if let Some(&(l, _)) = scored.first() {
            chosen.push(l);
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Optimizes a nest for a machine: selects loops, builds the tables,
/// searches the unroll space, and applies the winning transformation.
///
/// The search minimizes `|β_L(u) − β_M|` subject to the register
/// constraint (§3.3's integer optimization problem), over unroll vectors
/// that the dependence analysis proves safe and whose factors divide the
/// loop trip counts (so the transformation applies without a clean-up
/// loop).  Ties prefer fewer body copies.
///
/// # Example
///
/// ```
/// use ujam_core::optimize;
/// use ujam_ir::NestBuilder;
/// use ujam_machine::MachineModel;
/// let nest = NestBuilder::new("dmxpy")
///     .array("Y", &[256]).array("X", &[256]).array("M", &[256, 256])
///     .loop_("J", 1, 256).loop_("I", 1, 256)
///     .stmt("Y(I) = Y(I) + X(J) * M(I,J)")
///     .build();
/// let plan = optimize(&nest, &MachineModel::dec_alpha());
/// assert!(plan.unroll[0] >= 1, "dmxpy profits from unrolling J");
/// assert!(plan.predicted.balance < plan.original.balance);
/// ```
pub fn optimize(nest: &LoopNest, machine: &MachineModel) -> Optimized {
    optimize_with(nest, machine, CostModel::CacheAware)
}

/// [`optimize`] with an explicit cost model (§5.2 compares both arms).
pub fn optimize_with(nest: &LoopNest, machine: &MachineModel, model: CostModel) -> Optimized {
    let graph = DepGraph::build(nest);
    let bounds = safe_unroll_bounds(nest, &graph);
    let loops = choose_loops(nest, machine, &bounds);
    // Each chosen loop searches up to its own safety bound, capped for
    // tractability.
    let per_loop: Vec<u32> = loops
        .iter()
        .map(|&l| bounds[l].min(UNROLL_CAP).min(8))
        .collect();
    let space = UnrollSpace::with_bounds(nest.depth(), &loops, &per_loop);
    optimize_in_space_with(nest, machine, &space, model)
}

/// [`optimize`] with an explicit, caller-chosen unroll space.
///
/// # Panics
///
/// Panics if the space's depth does not match the nest.
pub fn optimize_in_space(
    nest: &LoopNest,
    machine: &MachineModel,
    space: &UnrollSpace,
) -> Optimized {
    optimize_in_space_with(nest, machine, space, CostModel::CacheAware)
}

/// [`optimize_in_space`] with an explicit cost model.
///
/// # Panics
///
/// Panics if the space's depth does not match the nest.
pub fn optimize_in_space_with(
    nest: &LoopNest,
    machine: &MachineModel,
    space: &UnrollSpace,
    model: CostModel,
) -> Optimized {
    assert_eq!(space.depth(), nest.depth(), "space/nest depth mismatch");
    let tables = CostTables::build(nest, space, machine.line_elems());
    let beta_m = machine.balance();
    let regs = machine.registers_for_replacement() as i64;

    let inputs_at = |u: &[u32]| BalanceInputs {
        flops: tables.flops(u) as f64,
        memory_ops: tables.memory_ops(u) as f64,
        cache_lines: tables.cache_lines(u),
        registers: tables.registers(u),
    };

    let zero = vec![0u32; space.dims()];
    let original_inputs = inputs_at(&zero);
    let mut best = zero.clone();
    let mut best_score = (f64::INFINITY, usize::MAX);
    for u in space.offsets() {
        // The factors must divide the trip counts for a clean transform.
        let divisible = space
            .loops()
            .iter()
            .zip(&u)
            .all(|(&l, &ul)| nest.loops()[l].trip_count() % (ul as i64 + 1) == 0);
        if !divisible {
            continue;
        }
        let inputs = inputs_at(&u);
        if inputs.registers > regs {
            continue;
        }
        let beta = match model {
            CostModel::AllHits => inputs.no_cache_balance(),
            CostModel::CacheAware => loop_balance(&inputs, machine),
        };
        let score = ((beta - beta_m).abs(), space.copies(&u));
        if score.0 < best_score.0 - 1e-12
            || ((score.0 - best_score.0).abs() <= 1e-12 && score.1 < best_score.1)
        {
            best_score = score;
            best = u;
        }
    }

    let unroll = space.full_vector(&best);
    let nest_out = unroll_and_jam(nest, &unroll).expect("search only visits legal vectors");
    Optimized {
        nest: nest_out,
        unroll,
        predicted: Prediction::from_inputs(&inputs_at(&best), machine),
        original: Prediction::from_inputs(&original_inputs, machine),
        space: space.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;

    fn intro(n: i64) -> LoopNest {
        NestBuilder::new("intro")
            .array("A", &[n + 2])
            .array("B", &[n + 2])
            .loop_("J", 1, n)
            .loop_("I", 1, n)
            .stmt("A(J) = A(J) + B(I)")
            .build()
    }

    #[test]
    fn intro_loop_is_unrolled_toward_machine_balance() {
        let plan = optimize(&intro(240), &MachineModel::dec_alpha());
        assert!(plan.unroll[0] >= 1, "J should be unrolled: {:?}", plan.unroll);
        assert_eq!(plan.unroll[1], 0);
        assert!(plan.predicted.no_cache_balance < plan.original.no_cache_balance);
        // The transformed nest is really unrolled.
        assert_eq!(
            plan.nest.body().len(),
            plan.unroll[0] as usize + 1
        );
    }

    #[test]
    fn register_constraint_limits_unrolling() {
        let tiny = MachineModel::builder("tiny")
            .rates(1.0, 1.0)
            .registers(8)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .build();
        let big = MachineModel::builder("big")
            .rates(1.0, 4.0)
            .registers(128)
            .cache(8 * 1024, 32, 1)
            .miss(20.0, 1.0)
            .build();
        let nest = intro(240);
        let small_plan = optimize(&nest, &tiny);
        let big_plan = optimize(&nest, &big);
        assert!(small_plan.predicted.registers <= 2);
        assert!(big_plan.unroll[0] >= small_plan.unroll[0]);
    }

    #[test]
    fn balanced_loop_is_left_alone() {
        // One load, two flops on a 0.5-balance machine: already matched.
        let nest = NestBuilder::new("bal")
            .array("A", &[242])
            .array("B", &[242])
            .loop_("J", 1, 240)
            .loop_("I", 1, 240)
            .stmt("A(J) = A(J) + B(I) * B(I) + 2.0")
            .build();
        // no_cache model: M = 1 (B load; A hoisted), F = 3.
        let machine = MachineModel::builder("match")
            .rates(1.0, 3.0)
            .registers(32)
            .cache(8 * 1024, 32, 1)
            .miss(1.0, 1.0) // miss ratio 1: cache term negligible
            .build();
        let plan = optimize(&nest, &machine);
        assert_eq!(
            plan.unroll,
            vec![0, 0],
            "already-balanced loop must not be unrolled"
        );
    }

    #[test]
    fn dependence_safety_bounds_the_search() {
        // A(I,J) = A(I+1,J-2): unrolling J beyond 1 is illegal.
        let nest = NestBuilder::new("bw")
            .array("A", &[244, 244])
            .loop_("J", 3, 242)
            .loop_("I", 2, 241)
            .stmt("A(I,J) = A(I+1,J-2) * 0.5")
            .build();
        let plan = optimize(&nest, &MachineModel::dec_alpha());
        assert!(plan.unroll[0] <= 1, "safety bound violated: {:?}", plan.unroll);
    }

    #[test]
    fn matmul_unrolls_two_loops_on_wide_machine() {
        let nest = NestBuilder::new("mm")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .array("C", &[64, 64])
            .loop_("J", 1, 60)
            .loop_("K", 1, 60)
            .loop_("I", 1, 60)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        let machine = MachineModel::builder("wide")
            .rates(1.0, 2.0)
            .registers(64)
            .cache(8 * 1024, 32, 1)
            .miss(10.0, 1.0)
            .build();
        let plan = optimize(&nest, &machine);
        let unrolled_loops = plan.unroll.iter().filter(|&&u| u > 0).count();
        assert!(
            unrolled_loops >= 1,
            "matmul should be unrolled: {:?}",
            plan.unroll
        );
        assert!(plan.predicted.balance <= plan.original.balance);
    }
}
