//! Loop balance (§3.2): the objective function of the optimizer.

use ujam_machine::MachineModel;

/// The per-iteration quantities loop balance is computed from — produced
/// either by the precomputed tables ([`crate::CostTables`]) or by actually
/// transforming the loop ([`crate::brute`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BalanceInputs {
    /// Floating-point operations per iteration (`F`).
    pub flops: f64,
    /// Memory operations issued per iteration after scalar replacement
    /// (`M`).
    pub memory_ops: f64,
    /// Cache lines fetched per iteration (Equation 1's total — the
    /// prefetches `p` the iteration needs).
    pub cache_lines: f64,
    /// Floating-point registers scalar replacement consumes.
    pub registers: i64,
}

impl BalanceInputs {
    /// Loop balance *without* cache effects — the earlier Carr–Kennedy
    /// model (§5.2's "No Cache" series): `β_L = M / F`.
    pub fn no_cache_balance(&self) -> f64 {
        if self.flops == 0.0 {
            return f64::INFINITY;
        }
        self.memory_ops / self.flops
    }

    /// Estimated cycles per iteration, used to budget prefetch issue:
    /// whichever of the memory and floating-point pipes is busier.
    pub fn est_cycles(&self, machine: &MachineModel) -> f64 {
        (self.memory_ops / machine.mem_rate()).max(self.flops / machine.flop_rate())
    }
}

/// The paper's loop-balance formula (§3.2):
///
/// ```text
///            M + max(0, p − b·c) · (C_m / C_h)
///     β_L = ------------------------------------
///                           F
/// ```
///
/// where `p` is the number of cache lines the iteration must fetch, `b`
/// the machine's prefetch-issue bandwidth, `c` the iteration's cycle
/// estimate, and `C_m / C_h` the miss-to-hit cost ratio.  With `b = 0`
/// (no software prefetching, as on the paper's two test machines) every
/// needed line costs a full miss; a machine with enough prefetch
/// bandwidth hides all of them and `β_L` degenerates to `M / F`.
///
/// A loop with no floating-point work has infinite balance.
///
/// # Example
///
/// ```
/// use ujam_core::{loop_balance, BalanceInputs};
/// use ujam_machine::MachineModel;
/// let alpha = MachineModel::dec_alpha();
/// let inputs = BalanceInputs {
///     flops: 2.0,
///     memory_ops: 1.0,
///     cache_lines: 0.25,
///     registers: 3,
/// };
/// let beta = loop_balance(&inputs, &alpha);
/// // 1 op + 0.25 lines * 20 cycle penalty over 2 flops.
/// assert_eq!(beta, (1.0 + 0.25 * 20.0) / 2.0);
/// assert_eq!(inputs.no_cache_balance(), 0.5);
/// ```
pub fn loop_balance(inputs: &BalanceInputs, machine: &MachineModel) -> f64 {
    if inputs.flops == 0.0 {
        return f64::INFINITY;
    }
    let serviced = machine.prefetch_bandwidth() * inputs.est_cycles(machine);
    let unserviced = (inputs.cache_lines - serviced).max(0.0);
    (inputs.memory_ops + unserviced * machine.miss_ratio()) / inputs.flops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(f: f64, m: f64, p: f64) -> BalanceInputs {
        BalanceInputs {
            flops: f,
            memory_ops: m,
            cache_lines: p,
            registers: 0,
        }
    }

    #[test]
    fn no_prefetch_charges_every_line() {
        let alpha = MachineModel::dec_alpha();
        assert_eq!(loop_balance(&inputs(1.0, 1.0, 0.0), &alpha), 1.0);
        // One line per iteration at a 20-cycle miss dominates.
        assert_eq!(loop_balance(&inputs(1.0, 1.0, 1.0), &alpha), 21.0);
    }

    #[test]
    fn prefetch_bandwidth_hides_misses() {
        let pf = MachineModel::prefetching_risc();
        let i = inputs(4.0, 2.0, 0.5);
        // est cycles = max(2/2, 4/2) = 2; b = 1: 2 prefetch slots cover
        // the 0.5 lines.
        assert_eq!(loop_balance(&i, &pf), 0.5);
        // Saturate the prefetcher: 5 lines, only 2 covered.
        let heavy = inputs(4.0, 2.0, 5.0);
        let expect = (2.0 + 3.0 * pf.miss_ratio()) / 4.0;
        assert!((loop_balance(&heavy, &pf) - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_flop_loop_has_infinite_balance() {
        let alpha = MachineModel::dec_alpha();
        assert_eq!(loop_balance(&inputs(0.0, 3.0, 0.0), &alpha), f64::INFINITY);
        assert_eq!(inputs(0.0, 3.0, 0.0).no_cache_balance(), f64::INFINITY);
    }

    #[test]
    fn balance_improves_with_unrolling_shape() {
        // Doubling flops while keeping memory ops fixed halves balance —
        // the §3.3 narrative.
        let alpha = MachineModel::dec_alpha();
        let before = loop_balance(&inputs(1.0, 1.0, 0.0), &alpha);
        let after = loop_balance(&inputs(2.0, 1.0, 0.0), &alpha);
        assert_eq!(before, 1.0);
        assert_eq!(after, 0.5);
    }
}
