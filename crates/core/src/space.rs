//! The unroll space `%` and offset-indexed tables (§4.1).
//!
//! [`Table`] has two representations.  It is *built* in the density
//! domain — each entry holds the contribution of one copy offset, and
//! merge-region updates ([`Table::add_upset_union`]) record only the
//! up-set *frontier* as difference-domain corner writes instead of
//! touching every covered offset.  It is then [`Table::finalize`]d into
//! a summed-area table: one inclusive prefix scan per dimension turns
//! the stored densities into the paper's `Sum` values, after which
//! [`Table::prefix_sum`] is a single dense lookup instead of an O(N)
//! box enumeration.  The raw (un-finalized) query path is kept as the
//! naive reference — property tests and the `search_scaling` bench
//! compare the two.
//!
//! # Flat layout
//!
//! Storage is one contiguous row-major buffer.  [`UnrollSpace`]
//! precomputes the per-dimension extents and strides once at
//! construction, so every structural walk decomposes into *runs*:
//! along axis `d` the array tiles into blocks of `extent_d · stride_d`
//! elements, and a scan along that axis is either a stride-1 prefix
//! scan per row (`stride_d == 1`, the innermost dimension) or
//! `extent_d − 1` vertical `row += previous_row` adds over contiguous
//! `stride_d`-element runs.  Both shapes are the lane kernels of
//! [`crate::simd`], which dispatches to SSE2/AVX2 at runtime under the
//! `simd` feature and stays on the canonical scalar loop otherwise.
//!
//! The 2^dims corner inclusion–exclusion of [`Table::get`] is likewise
//! precomputed at [`Table::finalize`] into a flat *(index delta, sign
//! mask, zero-skip mask)* corner map — one multiply-free signed gather
//! per query, with no per-corner coordinate vectors.  All query paths
//! are allocation-free.

use std::fmt;

use crate::simd;

/// Dimension count the query scratch arrays are sized for; real unroll
/// spaces are far below this (the paper uses ≤ 2, register tiling ≤ 6).
/// Larger spaces still work — the naive reference path falls back to a
/// heap buffer.
const MAX_INLINE_DIMS: usize = 8;

/// The bounded space of unroll vectors for a chosen set of loops.
///
/// `loops` are nest-loop positions (outermost = 0), ascending, never
/// including the innermost loop; each dimension carries its own maximum
/// unroll amount (typically that loop's dependence-safety bound), so
/// offsets range over the box `Π [0, bound_d]`.
///
/// The row-major extents (`bound_d + 1`), strides, and total size are
/// computed once here and shared by every table over the space — the
/// flat layout that lets scans and queries run over contiguous runs.
///
/// # Example
///
/// ```
/// use ujam_core::UnrollSpace;
/// let s = UnrollSpace::new(3, &[0, 1], 2);
/// assert_eq!(s.len(), 9);
/// assert_eq!(s.offsets().count(), 9);
/// assert_eq!(s.full_vector(&[2, 1]), vec![2, 1, 0]);
///
/// let r = UnrollSpace::with_bounds(3, &[0, 1], &[3, 1]);
/// assert_eq!(r.len(), 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnrollSpace {
    depth: usize,
    loops: Vec<usize>,
    bounds: Vec<u32>,
    /// `bounds[d] + 1`, cached for the flat walks.
    extents: Vec<usize>,
    /// Row-major strides (suffix products of `extents`).
    strides: Vec<usize>,
    /// `Π extents` — the flat buffer length of any table over this space.
    size: usize,
}

impl UnrollSpace {
    /// Creates a space with one uniform per-dimension bound.
    ///
    /// # Panics
    ///
    /// Panics if a loop is out of range, duplicated, or innermost.
    pub fn new(depth: usize, loops: &[usize], bound: u32) -> UnrollSpace {
        UnrollSpace::with_bounds(depth, loops, &vec![bound; loops.len()])
    }

    /// Creates a space with an individual bound per unrolled loop
    /// (parallel to `loops`).
    ///
    /// # Panics
    ///
    /// Panics if a loop is out of range, duplicated, or innermost, or if
    /// `bounds.len() != loops.len()`.
    pub fn with_bounds(depth: usize, loops: &[usize], bounds: &[u32]) -> UnrollSpace {
        assert_eq!(bounds.len(), loops.len(), "one bound per unrolled loop");
        let mut pairs: Vec<(usize, u32)> =
            loops.iter().copied().zip(bounds.iter().copied()).collect();
        pairs.sort_unstable_by_key(|&(l, _)| l);
        pairs.dedup_by_key(|&mut (l, _)| l);
        assert_eq!(pairs.len(), loops.len(), "duplicate unroll loop");
        assert!(
            pairs.iter().all(|&(l, _)| l + 1 < depth),
            "unroll loops must be outer loops of the nest"
        );
        let bounds: Vec<u32> = pairs.iter().map(|&(_, b)| b).collect();
        let extents: Vec<usize> = bounds.iter().map(|&b| b as usize + 1).collect();
        let mut strides = vec![1usize; extents.len()];
        for d in (0..extents.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * extents[d + 1];
        }
        let size = extents.iter().product();
        UnrollSpace {
            depth,
            loops: pairs.iter().map(|&(l, _)| l).collect(),
            bounds,
            extents,
            strides,
            size,
        }
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The unrolled loop positions, ascending.
    pub fn loops(&self) -> &[usize] {
        &self.loops
    }

    /// The largest per-dimension bound (inclusive).
    pub fn bound(&self) -> u32 {
        self.bounds.iter().copied().max().unwrap_or(0)
    }

    /// Per-dimension bounds (inclusive), parallel to [`UnrollSpace::loops`].
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// Number of dimensions (unrolled loops).
    pub fn dims(&self) -> usize {
        self.loops.len()
    }

    /// Number of offset vectors in the box.
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` for the degenerate zero-dimensional space.
    pub fn is_empty(&self) -> bool {
        self.dims() == 0
    }

    /// Per-dimension extents (`bound + 1`), parallel to
    /// [`UnrollSpace::loops`].
    pub(crate) fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Row-major strides, parallel to [`UnrollSpace::loops`]: stepping
    /// dimension `d` by one moves the flat index by `strides()[d]`.
    pub(crate) fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Iterates all offsets in lexicographic order.
    ///
    /// Each yielded item is an owned `Vec`; hot loops that only need to
    /// *look* at every offset should use [`UnrollSpace::for_each_offset`],
    /// which reuses one scratch buffer and allocates nothing per step.
    pub fn offsets(&self) -> OffsetIter {
        OffsetIter {
            bounds: self.bounds.clone(),
            current: vec![0; self.dims()],
            remaining: self.len(),
        }
    }

    /// Visits every offset in lexicographic order through one reused
    /// scratch buffer — the allocation-free counterpart of
    /// [`UnrollSpace::offsets`] for hot loops.
    ///
    /// The visitation order (and therefore the running flat index, if the
    /// caller keeps one) is identical to [`UnrollSpace::offsets`] and to
    /// [`UnrollSpace::index`]'s row-major layout.
    pub fn for_each_offset(&self, mut f: impl FnMut(&[u32])) {
        let mut u = vec![0u32; self.dims()];
        loop {
            f(&u);
            let mut d = self.dims();
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                if u[d] < self.bounds[d] {
                    u[d] += 1;
                    break;
                }
                u[d] = 0;
            }
        }
    }

    /// Flat row-major index of an offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset is outside the box.
    pub fn index(&self, offset: &[u32]) -> usize {
        assert_eq!(offset.len(), self.dims(), "offset arity mismatch");
        let mut idx = 0usize;
        for ((&o, &b), &s) in offset.iter().zip(&self.bounds).zip(&self.strides) {
            assert!(o <= b, "offset outside the unroll space");
            idx += o as usize * s;
        }
        idx
    }

    /// Flat index plus the bitmask of dimensions where the offset is
    /// zero — the two inputs the corner-map query needs, computed in one
    /// pass with no allocation.
    fn index_and_zero_mask(&self, offset: &[u32]) -> (usize, u32) {
        assert_eq!(offset.len(), self.dims(), "offset arity mismatch");
        let mut idx = 0usize;
        let mut zero = 0u32;
        for (d, ((&o, &b), &s)) in offset
            .iter()
            .zip(&self.bounds)
            .zip(&self.strides)
            .enumerate()
        {
            assert!(o <= b, "offset outside the unroll space");
            idx += o as usize * s;
            zero |= ((o == 0) as u32) << d;
        }
        (idx, zero)
    }

    /// Whether the offset encoded by flat index `idx` is dominated by
    /// `offset` (component-wise ≤) — the pending-write membership test,
    /// decoded arithmetically with no coordinate buffer.
    fn flat_dominated_by(&self, idx: usize, offset: &[u32]) -> bool {
        self.strides
            .iter()
            .zip(&self.extents)
            .zip(offset)
            .all(|((&s, &e), &o)| ((idx / s) % e) as u32 <= o)
    }

    /// Number of body copies `Π (u_i + 1)` produced by unrolling by `u`.
    pub fn copies(&self, u: &[u32]) -> usize {
        assert_eq!(u.len(), self.dims(), "offset arity mismatch");
        u.iter().map(|&x| x as usize + 1).product()
    }

    /// Embeds a space-offset into a full per-nest-loop unroll vector.
    pub fn full_vector(&self, u: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; self.depth];
        self.write_full_vector(u, &mut out);
        out
    }

    /// [`UnrollSpace::full_vector`] into a caller-provided buffer of
    /// length [`UnrollSpace::depth`] — the allocation-free variant for
    /// per-candidate hot loops.
    pub(crate) fn write_full_vector(&self, u: &[u32], out: &mut [u32]) {
        assert_eq!(u.len(), self.dims(), "offset arity mismatch");
        assert_eq!(out.len(), self.depth, "full vector arity mismatch");
        out.iter_mut().for_each(|v| *v = 0);
        for (&l, &v) in self.loops.iter().zip(u) {
            out[l] = v;
        }
    }

    /// Decodes a flat row-major index back into offset coordinates.
    #[cfg(test)]
    fn coords(&self, idx: usize) -> Vec<u32> {
        self.strides
            .iter()
            .zip(&self.extents)
            .map(|(&s, &e)| ((idx / s) % e) as u32)
            .collect()
    }
}

/// Iterator over the offsets of an [`UnrollSpace`] in lexicographic order.
///
/// The iterator knows exactly how many offsets remain
/// ([`ExactSizeIterator`]), and advancing it clones nothing beyond the
/// `Vec` it yields.
#[derive(Clone, Debug)]
pub struct OffsetIter {
    bounds: Vec<u32>,
    current: Vec<u32>,
    remaining: usize,
}

impl Iterator for OffsetIter {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let out = self.current.clone();
        // Advance the odometer in place; wrapping past the last offset
        // leaves `current` at zero with `remaining == 0`.
        for d in (0..self.bounds.len()).rev() {
            if self.current[d] < self.bounds[d] {
                self.current[d] += 1;
                break;
            }
            self.current[d] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for OffsetIter {}

impl std::iter::FusedIterator for OffsetIter {}

/// How many antichain points the closed-form inclusion–exclusion update
/// accepts before [`Table::add_upset_union`] falls back to a dense
/// indicator sweep (2^k − 1 corner writes vs. one O(N·dims) pass).
const UPSET_IE_MAX_POINTS: usize = 12;

/// The precomputed corner inclusion–exclusion map of a finalized table —
/// the `GP_MAP` idiom: every `Sum`-domain corner the density query
/// touches, flattened once per table shape into parallel arrays ordered
/// for linear access.
///
/// Corner `i` contributes `sign_i · Sum(o − 1_{S_i})` where `S_i` is the
/// i-th subset of the dimensions:
/// * `deltas[i]` — the flat-index delta `Σ_{d ∈ S_i} stride_d` (stored as
///   `i64` so the SIMD gather can subtract it lane-wise),
/// * `negmask[i]` — the sign as a 0/−1 mask (`(v ^ m) − m` applies it
///   branch-free),
/// * `need[i]` — the bitmask of dimensions that must be nonzero in the
///   queried offset for this corner to exist (`S_i` itself).
///
/// For interior offsets (`need`-test trivially true for every corner) the
/// query is one signed gather over the whole map; boundary offsets skip
/// the masked-out corners scalar-wise.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct CornerMap {
    deltas: Vec<i64>,
    negmask: Vec<i64>,
    need: Vec<u32>,
}

impl CornerMap {
    fn build(space: &UnrollSpace) -> CornerMap {
        let dims = space.dims();
        debug_assert!(dims < 32, "corner masks are u32");
        let strides = space.strides();
        let n = 1usize << dims;
        let mut map = CornerMap {
            deltas: Vec::with_capacity(n),
            negmask: Vec::with_capacity(n),
            need: Vec::with_capacity(n),
        };
        for mask in 0..n as u32 {
            let delta: usize = (0..dims)
                .filter(|&d| mask & (1 << d) != 0)
                .map(|d| strides[d])
                .sum();
            map.deltas.push(delta as i64);
            map.negmask
                .push(if mask.count_ones() % 2 == 0 { 0 } else { -1 });
            map.need.push(mask);
        }
        map
    }

    fn clear(&mut self) {
        self.deltas.clear();
        self.negmask.clear();
        self.need.clear();
    }
}

/// An integer table indexed by unroll offset, with the prefix-sum query the
/// paper's `Sum` function performs (Figure 2).
///
/// A table starts in the **density** domain: `data[o]` is the
/// contribution of the copy at offset `o`, and up-set updates are held
/// as difference-domain corner writes in `pending`.  [`Table::finalize`]
/// integrates the pending writes and runs one inclusive prefix scan per
/// dimension, after which `data[o]` holds `Sum(o)` directly and
/// [`Table::prefix_sum`] is a single lookup.  Mutation is only legal
/// before finalization; queries work in both states.
///
/// Storage is one flat row-major buffer over the space's precomputed
/// strides; finalization additionally builds the [`CornerMap`] that
/// makes the density query a signed gather.  Every query path —
/// finalized or raw — is allocation-free (up to [`MAX_INLINE_DIMS`]
/// dimensions on the raw reference path).
#[derive(Clone, PartialEq, Eq)]
pub struct Table {
    space: UnrollSpace,
    data: Vec<i64>,
    /// Difference-domain writes `(flat index, delta)` not yet integrated
    /// into `data`: each means "+delta over the whole up-set of this
    /// point".  Always empty once finalized.
    pending: Vec<(usize, i64)>,
    finalized: bool,
    /// Corner inclusion–exclusion map; built by [`Table::finalize`],
    /// empty (and unused) in the density domain.
    corners: CornerMap,
}

impl Table {
    /// A table with every entry set to `fill`.
    pub fn filled(space: UnrollSpace, fill: i64) -> Table {
        let n = space.len();
        Table {
            space,
            data: vec![fill; n],
            pending: Vec::new(),
            finalized: false,
            corners: CornerMap::default(),
        }
    }

    /// Builds an already-finalized table whose [`Table::prefix_sum`]
    /// equals `sum_at` for every offset — the exact-tabulation path for
    /// set shapes the closed-form region construction cannot express.
    ///
    /// The seed realized this via Möbius inversion back into the density
    /// domain followed by an O(N) box enumeration per query; storing the
    /// `Sum` values directly is both simpler and O(1) per query.
    pub fn from_sums(space: UnrollSpace, mut sum_at: impl FnMut(&[u32]) -> i64) -> Table {
        let mut data = Vec::with_capacity(space.len());
        space.for_each_offset(|u| data.push(sum_at(u)));
        let corners = CornerMap::build(&space);
        Table {
            space,
            data,
            pending: Vec::new(),
            finalized: true,
            corners,
        }
    }

    /// The table's unroll space.
    pub fn space(&self) -> &UnrollSpace {
        &self.space
    }

    /// Whether the table has been turned into a summed-area table.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Entry (density) at an offset: the contribution of the copy at
    /// exactly that offset.
    ///
    /// On a finalized table the density is recovered from the stored
    /// sums by inclusion–exclusion over the ≤ 2^dims adjacent corners,
    /// driven by the precomputed corner map: interior offsets are one
    /// signed gather, boundary offsets skip the corners their zero
    /// coordinates rule out.
    pub fn get(&self, offset: &[u32]) -> i64 {
        if self.finalized {
            // density(o) = Σ_{S ⊆ dims, o_d > 0 ∀ d∈S} (−1)^|S| Sum(o − 1_S)
            let (base, zero_mask) = self.space.index_and_zero_mask(offset);
            if zero_mask == 0 {
                return simd::gather_signed(
                    &self.data,
                    base,
                    &self.corners.deltas,
                    &self.corners.negmask,
                );
            }
            let mut total = 0i64;
            for (i, &need) in self.corners.need.iter().enumerate() {
                if need & zero_mask != 0 {
                    continue;
                }
                let m = self.corners.negmask[i];
                let v = self.data[base - self.corners.deltas[i] as usize];
                total += (v ^ m) - m;
            }
            return total;
        }
        let mut v = self.data[self.space.index(offset)];
        for &(idx, delta) in &self.pending {
            if self.space.flat_dominated_by(idx, offset) {
                v += delta;
            }
        }
        v
    }

    /// Adds `delta` to the entry at an offset.
    ///
    /// # Panics
    ///
    /// Panics on a finalized table — mutation only precedes finalization.
    pub fn add(&mut self, offset: &[u32], delta: i64) {
        assert!(!self.finalized, "cannot mutate a finalized table");
        let i = self.space.index(offset);
        self.data[i] += delta;
    }

    /// Adds `delta` to every entry in the *union of up-sets* of `points`:
    /// offsets `o` with `o ≥ p` (component-wise) for at least one `p`.
    ///
    /// This is the merge-region update of Figures 2/3/5: once a copy's
    /// offset dominates a merge point it stops contributing a new group,
    /// and dominating several merge points still merges it only once.
    ///
    /// Only the region's *frontier* is recorded: the points are reduced
    /// to their minimal antichain and turned into difference-domain
    /// corner writes (a staircase decomposition in 2-D, inclusion–
    /// exclusion over antichain joins in general), integrated lazily by
    /// the prefix scans of [`Table::finalize`].  Cost is O(|points|² ·
    /// dims) plus O(2^k) corner writes for an antichain of size k — the
    /// full-space sweep only remains as a fallback for pathologically
    /// large antichains in ≥ 3 dimensions, and runs as per-axis OR
    /// closure sweeps plus one masked frontier add over linear runs.
    ///
    /// # Panics
    ///
    /// Panics on a finalized table.
    pub fn add_upset_union(&mut self, points: &[Vec<u32>], delta: i64) {
        assert!(!self.finalized, "cannot mutate a finalized table");
        if points.is_empty() || delta == 0 {
            return;
        }
        // Reduce to the minimal antichain: if p ≥ q then up(p) ⊆ up(q).
        // Points outside the box (merge solutions are unbounded) cover
        // nothing and are dropped.
        let mut minimal: Vec<&Vec<u32>> = Vec::with_capacity(points.len());
        for p in points {
            if p.iter().zip(&self.space.bounds).any(|(&pi, &b)| pi > b) {
                continue;
            }
            if minimal
                .iter()
                .any(|q| q.iter().zip(p).all(|(&qi, &pi)| pi >= qi))
            {
                continue;
            }
            minimal.retain(|q| !p.iter().zip(q.iter()).all(|(&pi, &qi)| qi >= pi));
            minimal.push(p);
        }
        let dims = self.space.dims();
        if minimal.len() == 1 {
            // One corner covers the whole region (always the case in ≤ 1
            // dimension, where offsets are totally ordered).
            let idx = self.space.index(minimal[0]);
            self.pending.push((idx, delta));
            return;
        }
        if dims == 2 {
            // Staircase decomposition: sorted by dim 0 ascending, an
            // antichain descends strictly in dim 1, and the union is
            //   Σ_i up(p_i) − Σ_i up(p_i ∨ p_{i+1})
            // (each overlap of consecutive steps subtracted once).
            minimal.sort_unstable_by_key(|p| p[0]);
            for i in 0..minimal.len() {
                self.pending.push((self.space.index(minimal[i]), delta));
                if i + 1 < minimal.len() {
                    let join = [minimal[i + 1][0], minimal[i][1]];
                    self.pending.push((self.space.index(&join), -delta));
                }
            }
            return;
        }
        if minimal.len() <= UPSET_IE_MAX_POINTS {
            // General dimensions: inclusion–exclusion over antichain
            // subsets.  Every join stays inside the box because each
            // coordinate is a max of in-box coordinates.
            let mut join = vec![0u32; dims];
            for mask in 1u64..(1 << minimal.len()) {
                join.iter_mut().for_each(|j| *j = 0);
                for (i, p) in minimal.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        for (j, &pi) in join.iter_mut().zip(p.iter()) {
                            *j = (*j).max(pi);
                        }
                    }
                }
                let sign = if mask.count_ones() % 2 == 1 {
                    delta
                } else {
                    -delta
                };
                self.pending.push((self.space.index(&join), sign));
            }
            return;
        }
        // Fallback: dense indicator sweep directly into the density data.
        // The up-set union is the upward closure of the seed points, and
        // upward closure factors into one OR-scan per axis — the same
        // block structure as the prefix scans, so the vertical sweeps and
        // the final frontier add run over contiguous runs.
        let mut covered = vec![false; self.space.len()];
        for p in &minimal {
            covered[self.space.index(p)] = true;
        }
        or_scan_axes(&mut covered, self.space.extents(), self.space.strides());
        simd::add_masked(&mut self.data, &covered, delta);
    }

    /// Integrates any pending difference-domain writes into the density
    /// data (one scatter plus one prefix scan per dimension).
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut scratch = vec![0i64; self.space.len()];
        for &(idx, delta) in &self.pending {
            scratch[idx] += delta;
        }
        self.pending.clear();
        scan_axes(
            &mut scratch,
            self.space.extents(),
            self.space.strides(),
            false,
        );
        simd::add_rows(&mut self.data, &scratch);
    }

    /// Turns the density table into a summed-area table: pending up-set
    /// writes are integrated and one inclusive prefix scan runs per
    /// dimension, so every entry now holds the paper's `Sum` at that
    /// offset and [`Table::prefix_sum`] is a single lookup.  The corner
    /// map for [`Table::get`]'s inclusion–exclusion is built here, once
    /// per table shape.
    ///
    /// Idempotent; costs O(N · dims) once.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.flush();
        scan_axes(
            &mut self.data,
            self.space.extents(),
            self.space.strides(),
            false,
        );
        self.corners = CornerMap::build(&self.space);
        self.finalized = true;
    }

    /// The inverse of [`Table::finalize`]: a copy of this table back in
    /// the density domain, so its queries take the naive enumeration
    /// path.  Exists for the `search_scaling` bench (which measures the
    /// seed's O(N)-per-query behaviour against the summed-area path) and
    /// for round-trip property tests.
    ///
    /// # Panics
    ///
    /// Panics if the table is not finalized.
    pub fn definalized(&self) -> Table {
        assert!(self.finalized, "definalized() inverts a finalized table");
        let mut t = self.clone();
        scan_axes(&mut t.data, t.space.extents(), t.space.strides(), true);
        t.finalized = false;
        t.corners.clear();
        t
    }

    /// Whether the finalized sums are non-decreasing along every axis —
    /// the soundness condition for up-set pruning in the search: when
    /// every register table is monotone, `registers(u)` can only grow
    /// with `u`, so a candidate over budget rules out its whole up-set.
    ///
    /// # Panics
    ///
    /// Panics if the table is not finalized.
    pub fn is_monotone(&self) -> bool {
        assert!(self.finalized, "monotonicity is a property of the sums");
        let extents = self.space.extents();
        let strides = self.space.strides();
        for (d, &stride) in strides.iter().enumerate() {
            let extent = extents[d];
            if extent <= 1 {
                continue;
            }
            let block = extent * stride;
            for base in (0..self.data.len()).step_by(block) {
                for e in 1..extent {
                    let prev = base + (e - 1) * stride;
                    let cur = base + e * stride;
                    for i in 0..stride {
                        if self.data[cur + i] < self.data[prev + i] {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Adds another table's values into this one, element-wise.  Both
    /// sides must be finalized over the same space ­— prefix sums are
    /// linear, so accumulating in the `Sum` domain is exact.
    pub(crate) fn accumulate(&mut self, other: &Table) {
        assert!(
            self.finalized && other.finalized,
            "accumulate operates in the Sum domain"
        );
        assert_eq!(self.space, other.space, "accumulate needs matching spaces");
        simd::add_rows(&mut self.data, &other.data);
    }

    /// The paper's `Sum`: total over the box `[0, u]` — the value of the
    /// tabulated quantity after unrolling by `u`.
    ///
    /// On a finalized table this is a single lookup; before finalization
    /// it is the naive box enumeration (the reference the property tests
    /// and the scaling bench compare against).
    pub fn prefix_sum(&self, u: &[u32]) -> i64 {
        assert_eq!(u.len(), self.space.dims(), "offset arity mismatch");
        if self.finalized {
            return self.data[self.space.index(u)];
        }
        let dims = u.len();
        let mut inline = [0u32; MAX_INLINE_DIMS];
        if dims <= MAX_INLINE_DIMS {
            self.raw_prefix_sum(u, &mut inline[..dims])
        } else {
            self.raw_prefix_sum(u, &mut vec![0u32; dims])
        }
    }

    /// [`Table::prefix_sum`] for a candidate whose flat index the caller
    /// already tracks (the pruned search walk maintains it incrementally
    /// during descent) — one bounds-checked load, no re-indexing.
    ///
    /// # Panics
    ///
    /// Panics if the table is not finalized — flat indices address the
    /// `Sum` domain.
    pub fn prefix_sum_flat(&self, idx: usize) -> i64 {
        assert!(self.finalized, "flat queries address the Sum domain");
        self.data[idx]
    }

    /// The naive-reference `Sum`: box enumeration over the densities plus
    /// each pending up-set write in closed form.  `o` is caller-provided
    /// zeroed scratch of `dims` length, so the walk allocates nothing.
    fn raw_prefix_sum(&self, u: &[u32], o: &mut [u32]) -> i64 {
        let strides = self.space.strides();
        let extents = self.space.extents();
        let mut total = 0;
        let mut flat = 0usize;
        'walk: loop {
            total += self.data[flat];
            let mut d = o.len();
            loop {
                if d == 0 {
                    break 'walk;
                }
                d -= 1;
                if o[d] < u[d] {
                    o[d] += 1;
                    flat += strides[d];
                    break;
                }
                flat -= o[d] as usize * strides[d];
                o[d] = 0;
            }
        }
        // Each pending up-set corner at p contributes
        // delta · Π max(0, u_d − p_d + 1); p is decoded arithmetically.
        for &(idx, delta) in &self.pending {
            let mut cells = 1i64;
            let mut inside = true;
            for ((&s, &e), &ud) in strides.iter().zip(extents).zip(u) {
                let pd = ((idx / s) % e) as u32;
                if ud < pd {
                    inside = false;
                    break;
                }
                cells *= (ud - pd) as i64 + 1;
            }
            if inside {
                total += delta * cells;
            }
        }
        total
    }
}

/// Runs one inclusive prefix scan (or its inverse) along every axis of a
/// row-major dense array.
///
/// Along axis `d` the array tiles into blocks of `extent_d · stride_d`
/// elements.  The innermost axis (`stride == 1`) is a contiguous prefix
/// scan per `extent`-element row; every other axis is `extent − 1`
/// vertical `row ±= previous_row` sweeps over contiguous
/// `stride`-element runs — both dispatch through [`crate::simd`].
fn scan_axes(data: &mut [i64], extents: &[usize], strides: &[usize], inverse: bool) {
    for (d, &stride) in strides.iter().enumerate() {
        let extent = extents[d];
        if extent <= 1 {
            continue;
        }
        if stride == 1 {
            for row in data.chunks_exact_mut(extent) {
                if inverse {
                    simd::inverse_scan(row);
                } else {
                    simd::prefix_scan(row);
                }
            }
            continue;
        }
        let block = extent * stride;
        for base in (0..data.len()).step_by(block) {
            if inverse {
                for e in (1..extent).rev() {
                    let (lo, hi) = data.split_at_mut(base + e * stride);
                    simd::sub_rows(&mut hi[..stride], &lo[base + (e - 1) * stride..]);
                }
            } else {
                for e in 1..extent {
                    let (lo, hi) = data.split_at_mut(base + e * stride);
                    simd::add_rows(&mut hi[..stride], &lo[base + (e - 1) * stride..]);
                }
            }
        }
    }
}

/// Upward-closes an indicator array: after the sweep, `covered[i]` holds
/// iff some seed point dominates `i` component-wise.  Upward closure
/// factors into one running-OR scan per axis, with the same block/run
/// structure as [`scan_axes`].
fn or_scan_axes(covered: &mut [bool], extents: &[usize], strides: &[usize]) {
    for (d, &stride) in strides.iter().enumerate() {
        let extent = extents[d];
        if extent <= 1 {
            continue;
        }
        if stride == 1 {
            for row in covered.chunks_exact_mut(extent) {
                let mut any = false;
                for v in row {
                    any |= *v;
                    *v = any;
                }
            }
            continue;
        }
        let block = extent * stride;
        for base in (0..covered.len()).step_by(block) {
            for e in 1..extent {
                let (lo, hi) = covered.split_at_mut(base + e * stride);
                simd::or_rows(&mut hi[..stride], &lo[base + (e - 1) * stride..]);
            }
        }
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Table over {:?} ({}): {:?}",
            self.space.loops(),
            if self.finalized { "sums" } else { "densities" },
            self.data
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_enumerate_lexicographically() {
        let s = UnrollSpace::new(3, &[0, 1], 1);
        let all: Vec<Vec<u32>> = s.offsets().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn offset_iter_len_matches_space_len() {
        for s in [
            UnrollSpace::new(3, &[0, 1], 2),
            UnrollSpace::new(2, &[0], 7),
            UnrollSpace::new(2, &[], 4),
            UnrollSpace::with_bounds(4, &[0, 1, 2], &[1, 0, 3]),
        ] {
            let it = s.offsets();
            assert_eq!(it.len(), s.len());
            assert_eq!(it.size_hint(), (s.len(), Some(s.len())));
            // The hint stays exact while draining.
            let mut it = s.offsets();
            let mut seen = 0;
            while it.next().is_some() {
                seen += 1;
                assert_eq!(it.len(), s.len() - seen);
            }
            assert_eq!(seen, s.len());
        }
    }

    #[test]
    fn for_each_offset_matches_offsets() {
        for s in [
            UnrollSpace::new(3, &[0, 1], 2),
            UnrollSpace::new(2, &[], 4),
            UnrollSpace::with_bounds(4, &[0, 2], &[3, 1]),
        ] {
            let mut visited = Vec::new();
            s.for_each_offset(|u| visited.push(u.to_vec()));
            let owned: Vec<Vec<u32>> = s.offsets().collect();
            assert_eq!(visited, owned);
        }
    }

    #[test]
    fn zero_dimensional_space_has_one_offset() {
        let s = UnrollSpace::new(2, &[], 4);
        assert_eq!(s.len(), 1);
        let all: Vec<Vec<u32>> = s.offsets().collect();
        assert_eq!(all, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn index_is_row_major() {
        let s = UnrollSpace::new(3, &[0, 1], 2);
        assert_eq!(s.index(&[0, 0]), 0);
        assert_eq!(s.index(&[0, 2]), 2);
        assert_eq!(s.index(&[1, 0]), 3);
        assert_eq!(s.index(&[2, 2]), 8);
        for (i, u) in s.offsets().enumerate() {
            assert_eq!(s.index(&u), i);
            assert_eq!(s.coords(i), u);
        }
    }

    #[test]
    fn strides_match_row_major_steps() {
        let s = UnrollSpace::with_bounds(4, &[0, 1, 2], &[1, 2, 3]);
        assert_eq!(s.extents(), &[2, 3, 4]);
        assert_eq!(s.strides(), &[12, 4, 1]);
        assert_eq!(s.len(), 24);
        // Stepping dimension d by one moves the flat index by strides[d].
        for (d, &stride) in s.strides().iter().enumerate() {
            let mut u = vec![0u32; 3];
            u[d] = 1;
            assert_eq!(s.index(&u), stride);
        }
    }

    #[test]
    fn copies_and_full_vector() {
        let s = UnrollSpace::new(4, &[0, 2], 3);
        assert_eq!(s.copies(&[1, 2]), 6);
        assert_eq!(s.full_vector(&[1, 2]), vec![1, 0, 2, 0]);
        let mut buf = vec![9u32; 4];
        s.write_full_vector(&[1, 2], &mut buf);
        assert_eq!(buf, vec![1, 0, 2, 0]);
    }

    #[test]
    fn prefix_sum_counts_box() {
        let s = UnrollSpace::new(2, &[0], 4);
        let t = Table::filled(s, 3);
        assert_eq!(t.prefix_sum(&[0]), 3);
        assert_eq!(t.prefix_sum(&[4]), 15);
        let mut f = t.clone();
        f.finalize();
        assert_eq!(f.prefix_sum(&[0]), 3);
        assert_eq!(f.prefix_sum(&[4]), 15);
        assert_eq!(f.prefix_sum_flat(4), 15);
    }

    #[test]
    fn upset_union_applies_once_per_point() {
        let s = UnrollSpace::new(3, &[0, 1], 2);
        let mut t = Table::filled(s, 2);
        // Merge regions from (1,0) and (0,2): their union covers 7 of the
        // 9 offsets ((0,0), (0,1) remain).
        t.add_upset_union(&[vec![1, 0], vec![0, 2]], -1);
        assert_eq!(t.get(&[0, 0]), 2);
        assert_eq!(t.get(&[0, 1]), 2);
        assert_eq!(t.get(&[0, 2]), 1);
        assert_eq!(t.get(&[1, 0]), 1);
        assert_eq!(t.get(&[2, 2]), 1, "overlap decremented once");
        assert_eq!(t.prefix_sum(&[2, 2]), 2 * 9 - 7);
    }

    #[test]
    fn finalize_preserves_every_query() {
        let s = UnrollSpace::new(3, &[0, 1], 3);
        let mut raw = Table::filled(s.clone(), 1);
        raw.add(&[2, 1], 5);
        raw.add_upset_union(&[vec![1, 2], vec![2, 0]], -1);
        raw.add_upset_union(&[vec![0, 3], vec![3, 3]], 2);
        let mut fin = raw.clone();
        fin.finalize();
        assert!(fin.is_finalized());
        s.for_each_offset(|u| {
            assert_eq!(fin.prefix_sum(u), raw.prefix_sum(u), "Sum at {u:?}");
            assert_eq!(fin.get(u), raw.get(u), "density at {u:?}");
        });
        // And the round trip back to densities is exact.
        let back = fin.definalized();
        s.for_each_offset(|u| assert_eq!(back.get(u), raw.get(u), "round trip at {u:?}"));
    }

    #[test]
    fn dense_fallback_agrees_with_inclusion_exclusion() {
        // 3-D antichain larger than the closed-form cutoff would need:
        // force both paths over the same points and compare.
        let s = UnrollSpace::new(4, &[0, 1, 2], 2);
        let points: Vec<Vec<u32>> = vec![
            vec![2, 0, 0],
            vec![0, 2, 0],
            vec![0, 0, 2],
            vec![1, 1, 0],
            vec![0, 1, 1],
            vec![1, 0, 1],
        ];
        let mut ie = Table::filled(s.clone(), 0);
        ie.add_upset_union(&points, 3);
        // Reference: per-offset membership test.
        let mut naive = Table::filled(s.clone(), 0);
        s.for_each_offset(|o| {
            if points
                .iter()
                .any(|p| p.iter().zip(o).all(|(&pi, &oi)| oi >= pi))
            {
                naive.add(o, 3);
            }
        });
        s.for_each_offset(|u| {
            assert_eq!(ie.prefix_sum(u), naive.prefix_sum(u), "Sum at {u:?}");
            assert_eq!(ie.get(u), naive.get(u), "density at {u:?}");
        });
    }

    #[test]
    fn monotone_detects_axis_growth() {
        let s = UnrollSpace::new(3, &[0, 1], 2);
        let mut grows = Table::filled(s.clone(), 1);
        grows.finalize();
        assert!(grows.is_monotone());
        let mut dips = Table::filled(s, 0);
        dips.add(&[1, 1], -2);
        dips.finalize();
        assert!(!dips.is_monotone());
    }

    #[test]
    #[should_panic(expected = "finalized")]
    fn mutation_after_finalize_panics() {
        let mut t = Table::filled(UnrollSpace::new(2, &[0], 2), 0);
        t.finalize();
        t.add(&[1], 1);
    }

    #[test]
    #[should_panic(expected = "outer loops")]
    fn innermost_loop_rejected() {
        let _ = UnrollSpace::new(2, &[1], 4);
    }

    #[test]
    #[should_panic(expected = "outside the unroll space")]
    fn out_of_box_offset_panics() {
        let s = UnrollSpace::new(2, &[0], 2);
        let _ = s.index(&[3]);
    }
}
