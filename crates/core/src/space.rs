//! The unroll space `%` and offset-indexed tables (§4.1).

use std::fmt;

/// The bounded space of unroll vectors for a chosen set of loops.
///
/// `loops` are nest-loop positions (outermost = 0), ascending, never
/// including the innermost loop; each dimension carries its own maximum
/// unroll amount (typically that loop's dependence-safety bound), so
/// offsets range over the box `Π [0, bound_d]`.
///
/// # Example
///
/// ```
/// use ujam_core::UnrollSpace;
/// let s = UnrollSpace::new(3, &[0, 1], 2);
/// assert_eq!(s.len(), 9);
/// assert_eq!(s.offsets().count(), 9);
/// assert_eq!(s.full_vector(&[2, 1]), vec![2, 1, 0]);
///
/// let r = UnrollSpace::with_bounds(3, &[0, 1], &[3, 1]);
/// assert_eq!(r.len(), 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnrollSpace {
    depth: usize,
    loops: Vec<usize>,
    bounds: Vec<u32>,
}

impl UnrollSpace {
    /// Creates a space with one uniform per-dimension bound.
    ///
    /// # Panics
    ///
    /// Panics if a loop is out of range, duplicated, or innermost.
    pub fn new(depth: usize, loops: &[usize], bound: u32) -> UnrollSpace {
        UnrollSpace::with_bounds(depth, loops, &vec![bound; loops.len()])
    }

    /// Creates a space with an individual bound per unrolled loop
    /// (parallel to `loops`).
    ///
    /// # Panics
    ///
    /// Panics if a loop is out of range, duplicated, or innermost, or if
    /// `bounds.len() != loops.len()`.
    pub fn with_bounds(depth: usize, loops: &[usize], bounds: &[u32]) -> UnrollSpace {
        assert_eq!(bounds.len(), loops.len(), "one bound per unrolled loop");
        let mut pairs: Vec<(usize, u32)> =
            loops.iter().copied().zip(bounds.iter().copied()).collect();
        pairs.sort_unstable_by_key(|&(l, _)| l);
        pairs.dedup_by_key(|&mut (l, _)| l);
        assert_eq!(pairs.len(), loops.len(), "duplicate unroll loop");
        assert!(
            pairs.iter().all(|&(l, _)| l + 1 < depth),
            "unroll loops must be outer loops of the nest"
        );
        UnrollSpace {
            depth,
            loops: pairs.iter().map(|&(l, _)| l).collect(),
            bounds: pairs.iter().map(|&(_, b)| b).collect(),
        }
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The unrolled loop positions, ascending.
    pub fn loops(&self) -> &[usize] {
        &self.loops
    }

    /// The largest per-dimension bound (inclusive).
    pub fn bound(&self) -> u32 {
        self.bounds.iter().copied().max().unwrap_or(0)
    }

    /// Per-dimension bounds (inclusive), parallel to [`UnrollSpace::loops`].
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// Number of dimensions (unrolled loops).
    pub fn dims(&self) -> usize {
        self.loops.len()
    }

    /// Number of offset vectors in the box.
    pub fn len(&self) -> usize {
        self.bounds.iter().map(|&b| b as usize + 1).product()
    }

    /// `true` for the degenerate zero-dimensional space.
    pub fn is_empty(&self) -> bool {
        self.dims() == 0
    }

    /// Iterates all offsets in lexicographic order.
    pub fn offsets(&self) -> OffsetIter {
        OffsetIter {
            bounds: self.bounds.clone(),
            next: Some(vec![0; self.dims()]),
        }
    }

    /// Flat row-major index of an offset.
    ///
    /// # Panics
    ///
    /// Panics if the offset is outside the box.
    pub fn index(&self, offset: &[u32]) -> usize {
        assert_eq!(offset.len(), self.dims(), "offset arity mismatch");
        let mut idx = 0usize;
        for (&o, &b) in offset.iter().zip(&self.bounds) {
            assert!(o <= b, "offset outside the unroll space");
            idx = idx * (b as usize + 1) + o as usize;
        }
        idx
    }

    /// Number of body copies `Π (u_i + 1)` produced by unrolling by `u`.
    pub fn copies(&self, u: &[u32]) -> usize {
        assert_eq!(u.len(), self.dims(), "offset arity mismatch");
        u.iter().map(|&x| x as usize + 1).product()
    }

    /// Embeds a space-offset into a full per-nest-loop unroll vector.
    pub fn full_vector(&self, u: &[u32]) -> Vec<u32> {
        assert_eq!(u.len(), self.dims(), "offset arity mismatch");
        let mut out = vec![0u32; self.depth];
        for (&l, &v) in self.loops.iter().zip(u) {
            out[l] = v;
        }
        out
    }
}

/// Iterator over the offsets of an [`UnrollSpace`] in lexicographic order.
#[derive(Clone, Debug)]
pub struct OffsetIter {
    bounds: Vec<u32>,
    next: Option<Vec<u32>>,
}

impl Iterator for OffsetIter {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        let current = self.next.take()?;
        // Compute the successor.
        let mut succ = current.clone();
        for d in (0..self.bounds.len()).rev() {
            if succ[d] < self.bounds[d] {
                succ[d] += 1;
                self.next = Some(succ);
                return Some(current);
            }
            succ[d] = 0;
        }
        // Overflowed every dimension: `current` was the last offset.  A
        // zero-dimensional space yields exactly one (empty) offset.
        self.next = None;
        Some(current)
    }
}

/// An integer table indexed by unroll offset, with the prefix-sum query the
/// paper's `Sum` function performs (Figure 2).
#[derive(Clone, PartialEq, Eq)]
pub struct Table {
    space: UnrollSpace,
    data: Vec<i64>,
}

impl Table {
    /// A table with every entry set to `fill`.
    pub fn filled(space: UnrollSpace, fill: i64) -> Table {
        let n = space.len();
        Table {
            space,
            data: vec![fill; n],
        }
    }

    /// The table's unroll space.
    pub fn space(&self) -> &UnrollSpace {
        &self.space
    }

    /// Entry at an offset.
    pub fn get(&self, offset: &[u32]) -> i64 {
        self.data[self.space.index(offset)]
    }

    /// Adds `delta` to the entry at an offset.
    pub fn add(&mut self, offset: &[u32], delta: i64) {
        let i = self.space.index(offset);
        self.data[i] += delta;
    }

    /// Adds `delta` to every entry in the *union of up-sets* of `points`:
    /// offsets `o` with `o ≥ p` (component-wise) for at least one `p`.
    ///
    /// This is the merge-region update of Figures 2/3/5: once a copy's
    /// offset dominates a merge point it stops contributing a new group,
    /// and dominating several merge points still merges it only once.
    pub fn add_upset_union(&mut self, points: &[Vec<u32>], delta: i64) {
        if points.is_empty() {
            return;
        }
        for o in self.space.offsets() {
            if points
                .iter()
                .any(|p| p.iter().zip(&o).all(|(&pi, &oi)| oi >= pi))
            {
                let i = self.space.index(&o);
                self.data[i] += delta;
            }
        }
    }

    /// The paper's `Sum`: total over the box `[0, u]` — the value of the
    /// tabulated quantity after unrolling by `u`.
    pub fn prefix_sum(&self, u: &[u32]) -> i64 {
        assert_eq!(u.len(), self.space.dims(), "offset arity mismatch");
        let mut total = 0;
        for o in self.space.offsets() {
            if o.iter().zip(u).all(|(&oi, &ui)| oi <= ui) {
                total += self.data[self.space.index(&o)];
            }
        }
        total
    }
}

impl fmt::Debug for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Table over {:?}: {:?}", self.space.loops(), self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_enumerate_lexicographically() {
        let s = UnrollSpace::new(3, &[0, 1], 1);
        let all: Vec<Vec<u32>> = s.offsets().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn zero_dimensional_space_has_one_offset() {
        let s = UnrollSpace::new(2, &[], 4);
        assert_eq!(s.len(), 1);
        let all: Vec<Vec<u32>> = s.offsets().collect();
        assert_eq!(all, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn index_is_row_major() {
        let s = UnrollSpace::new(3, &[0, 1], 2);
        assert_eq!(s.index(&[0, 0]), 0);
        assert_eq!(s.index(&[0, 2]), 2);
        assert_eq!(s.index(&[1, 0]), 3);
        assert_eq!(s.index(&[2, 2]), 8);
    }

    #[test]
    fn copies_and_full_vector() {
        let s = UnrollSpace::new(4, &[0, 2], 3);
        assert_eq!(s.copies(&[1, 2]), 6);
        assert_eq!(s.full_vector(&[1, 2]), vec![1, 0, 2, 0]);
    }

    #[test]
    fn prefix_sum_counts_box() {
        let s = UnrollSpace::new(2, &[0], 4);
        let t = Table::filled(s, 3);
        assert_eq!(t.prefix_sum(&[0]), 3);
        assert_eq!(t.prefix_sum(&[4]), 15);
    }

    #[test]
    fn upset_union_applies_once_per_point() {
        let s = UnrollSpace::new(3, &[0, 1], 2);
        let mut t = Table::filled(s, 2);
        // Merge regions from (1,0) and (0,2): their union covers 7 of the
        // 9 offsets ((0,0), (0,1) remain).
        t.add_upset_union(&[vec![1, 0], vec![0, 2]], -1);
        assert_eq!(t.get(&[0, 0]), 2);
        assert_eq!(t.get(&[0, 1]), 2);
        assert_eq!(t.get(&[0, 2]), 1);
        assert_eq!(t.get(&[1, 0]), 1);
        assert_eq!(t.get(&[2, 2]), 1, "overlap decremented once");
        assert_eq!(t.prefix_sum(&[2, 2]), 2 * 9 - 7);
    }

    #[test]
    #[should_panic(expected = "outer loops")]
    fn innermost_loop_rejected() {
        let _ = UnrollSpace::new(2, &[1], 4);
    }

    #[test]
    #[should_panic(expected = "outside the unroll space")]
    fn out_of_box_offset_panics() {
        let s = UnrollSpace::new(2, &[0], 2);
        let _ = s.index(&[3]);
    }
}
