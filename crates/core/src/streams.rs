//! Analytic copy-vector evaluation of an unrolled loop body.
//!
//! Unrolling by offset `u'` turns a reference `A(H·i + c)` into the copy
//! `A(H·i + c + H·u')` (§4.1) — so every quantity scalar replacement
//! derives from the unrolled body is a function of the multiset of constant
//! vectors `{ c + H·u' }`.  This module computes those quantities directly
//! from the vectors, without materialising any IR: it is the exact
//! *semantics* the paper's prefix-sum tables approximate in O(1), and it
//! doubles as the correctness oracle for them (property tests assert
//! `tables == analytic == scalar_replacement(unroll_and_jam(nest))`).

use crate::space::UnrollSpace;
use std::collections::BTreeMap;
use ujam_ir::LoopNest;
use ujam_linalg::Mat;
use ujam_reuse::UgsSet;

/// The per-iteration counts of an unrolled, scalar-replaced body.
///
/// Field meanings mirror `ujam_ir::transform::ReplacementStats`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CopyCounts {
    /// Array loads remaining per (unrolled) iteration.
    pub loads: usize,
    /// Array stores remaining.
    pub stores: usize,
    /// Loads removed by register reuse.
    pub replaced_loads: usize,
    /// Loads hoisted with innermost-invariant streams.
    pub hoisted_loads: usize,
    /// Stores hoisted with innermost-invariant streams.
    pub hoisted_stores: usize,
    /// Floating-point registers consumed by the replaced values.
    pub registers: usize,
    /// Number of value streams.
    pub streams: usize,
}

impl CopyCounts {
    /// Memory operations per iteration (`M` of §3.2).
    pub fn memory_ops(&self) -> usize {
        self.loads + self.stores
    }
}

/// One reference copy: its adjusted constant vector and body position.
#[derive(Clone, Debug)]
struct Copy {
    /// `c + H·u'` for the copy's offset.
    c: Vec<i64>,
    /// Lexicographic rank of the copy's offset (jam emits copies in this
    /// order), then original reference order — the unrolled body position.
    order: (usize, usize),
    is_def: bool,
}

/// Evaluates scalar-replacement counts for unrolling by `u`, analytically.
///
/// # Example
///
/// ```
/// use ujam_core::{streams::replacement_counts_at, UnrollSpace};
/// use ujam_ir::NestBuilder;
/// let nest = NestBuilder::new("intro")
///     .array("A", &[512]).array("B", &[512])
///     .loop_("J", 1, 512).loop_("I", 1, 512)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let space = UnrollSpace::new(2, &[0], 4);
/// let counts = replacement_counts_at(&nest, &space, &[1]);
/// // Two copies: A(J), A(J+1) hoisted; B(I) loads once, its copy reuses.
/// assert_eq!(counts.loads, 1);
/// assert_eq!(counts.replaced_loads, 1);
/// ```
pub fn replacement_counts_at(nest: &LoopNest, space: &UnrollSpace, u: &[u32]) -> CopyCounts {
    let ugs = UgsSet::partition(nest);
    let mut counts = CopyCounts::default();
    for set in &ugs {
        tally_ugs(set, space, u, nest.depth(), &mut counts);
    }
    counts
}

/// Builds the copies of one UGS at unroll `u` and tallies its streams.
fn tally_ugs(set: &UgsSet, space: &UnrollSpace, u: &[u32], depth: usize, counts: &mut CopyCounts) {
    let copies = materialize_copies(set, space, u, depth);
    let inner_col: Vec<i64> = set.h().col(depth - 1);
    let invariant = inner_col.iter().all(|&x| x == 0);

    // Partition copies into streams by canonical signature: two copies are
    // in the same stream iff `c₁ − c₂ = d·inner_col`, which holds exactly
    // when their signatures (c with the key quotient divided out) match.
    let mut groups: BTreeMap<Vec<i64>, Vec<(Copy, i64)>> = BTreeMap::new();
    for copy in copies {
        let (sig, key) = stream_signature(&copy.c, &inner_col);
        groups.entry(sig).or_default().push((copy, key));
    }

    for (_, mut members) in groups.into_values().map(|m| ((), m)) {
        counts.streams += 1;
        // Touch order: larger key first; ties by body order.
        members.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.order.cmp(&b.0.order)));
        if invariant {
            counts.registers += 1;
            for (m, _) in &members {
                if m.is_def {
                    counts.hoisted_stores += 1;
                } else {
                    counts.hoisted_loads += 1;
                }
            }
            continue;
        }
        // Split into register-reuse sets at defs.
        let mut sets: Vec<Vec<&(Copy, i64)>> = Vec::new();
        for m in &members {
            if m.0.is_def || sets.is_empty() {
                sets.push(vec![m]);
            } else {
                sets.last_mut().expect("non-empty").push(m);
            }
        }
        for rrs in sets {
            let leader = rrs[0];
            let rest = &rrs[1..];
            if leader.0.is_def {
                counts.stores += 1;
            } else {
                counts.loads += 1;
            }
            if rest.is_empty() {
                continue;
            }
            let span = (leader.1 - rest.iter().map(|m| m.1).min().expect("non-empty")) as usize;
            counts.registers += span + 1;
            counts.replaced_loads += rest.len();
        }
    }
}

/// The number of group-spatial sets of one UGS after unrolling by `u`,
/// evaluated analytically over copy vectors (greedy leader walk in
/// lexicographic order, exactly as `ujam_reuse::group_spatial_sets` walks
/// the unrolled nest's references).
pub fn gss_count_at(
    set: &UgsSet,
    space: &UnrollSpace,
    u: &[u32],
    depth: usize,
    line_elems: i64,
) -> usize {
    let mut copies = materialize_copies(set, space, u, depth);
    copies.sort_by(|a, b| a.c.cmp(&b.c).then(a.order.cmp(&b.order)));
    let h = set.h();
    let inner = depth - 1;
    let mut leaders: Vec<Vec<i64>> = Vec::new();
    'copies: for copy in &copies {
        for leader in &leaders {
            let delta: Vec<i64> = copy.c.iter().zip(leader).map(|(a, b)| a - b).collect();
            if spatially_related(h, &delta, inner, line_elems) {
                continue 'copies;
            }
        }
        leaders.push(copy.c.clone());
    }
    leaders.len()
}

/// The number of group-temporal sets (innermost-localized value streams)
/// after unrolling by `u`, evaluated analytically.
pub fn gts_count_at(set: &UgsSet, space: &UnrollSpace, u: &[u32], depth: usize) -> usize {
    let copies = materialize_copies(set, space, u, depth);
    let inner_col: Vec<i64> = set.h().col(depth - 1);
    let mut sigs: std::collections::BTreeSet<Vec<i64>> = std::collections::BTreeSet::new();
    for copy in &copies {
        sigs.insert(stream_signature(&copy.c, &inner_col).0);
    }
    sigs.len()
}

/// The canonical stream signature and key of a constant vector relative to
/// the innermost column of `H`: `c₁ − c₂ = d·col` iff the signatures agree,
/// in which case `key₁ − key₂ = d`.
///
/// For the all-zero column (innermost-invariant references) the signature
/// is `c` itself and the key is 0.
fn stream_signature(c: &[i64], col: &[i64]) -> (Vec<i64>, i64) {
    let Some(r) = col.iter().position(|&k| k != 0) else {
        return (c.to_vec(), 0);
    };
    let k = col[r];
    let key = c[r].div_euclid(k.abs()) * k.signum();
    let sig: Vec<i64> = c.iter().zip(col).map(|(&ci, &ki)| ci - key * ki).collect();
    (sig, key)
}

/// Instantiates every member copy of a UGS for unroll vector `u`.
///
/// Walks the box `0 ≤ o ≤ u` in lexicographic order with one reused
/// odometer and full-vector scratch buffer — the output `Vec<Copy>` is
/// the only allocation that scales with the box.
fn materialize_copies(set: &UgsSet, space: &UnrollSpace, u: &[u32], depth: usize) -> Vec<Copy> {
    let h = set.h();
    let copies: usize = u.iter().map(|&x| x as usize + 1).product();
    let mut out = Vec::with_capacity(copies * set.members().len());
    let mut offset = vec![0u32; u.len()];
    let mut full = vec![0i64; depth];
    let mut rank = 0usize;
    loop {
        // Embed the offset into a full iteration-space vector.
        for (&l, &o) in space.loops().iter().zip(&offset) {
            full[l] = o as i64;
        }
        let shift = h.mul_vec(&full);
        for (ord, m) in set.members().iter().enumerate() {
            let c: Vec<i64> = m.c.iter().zip(&shift).map(|(a, b)| a + b).collect();
            out.push(Copy {
                c,
                order: (rank, ord),
                is_def: m.is_def,
            });
        }
        rank += 1;
        let mut d = offset.len();
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            if offset[d] < u[d] {
                offset[d] += 1;
                break;
            }
            offset[d] = 0;
        }
    }
}

/// If `c1 - c2 == d * col` for an integer `d`, returns `d`.
fn inner_distance(c1: &[i64], c2: &[i64], col: &[i64]) -> Option<i64> {
    let mut d: Option<i64> = None;
    for ((&a, &b), &k) in c1.iter().zip(c2).zip(col) {
        let delta = a - b;
        if k == 0 {
            if delta != 0 {
                return None;
            }
        } else {
            if delta % k != 0 {
                return None;
            }
            let cand = delta / k;
            match d {
                None => d = Some(cand),
                Some(prev) if prev != cand => return None,
                Some(_) => {}
            }
        }
    }
    Some(d.unwrap_or(0))
}

/// Spatial relation between copy vectors: every subscript dimension except
/// the first closes along the innermost loop, and the first-dimension
/// residue (reduced modulo the innermost first-row stride, if any) fits in
/// a cache line.
fn spatially_related(h: &Mat, delta: &[i64], inner: usize, line_elems: i64) -> bool {
    if delta.is_empty() {
        return true;
    }
    // Rows below the first must close exactly along the inner column.
    let mut d: Option<i64> = None;
    for r in 1..h.rows() {
        let k = h[(r, inner)];
        if k == 0 {
            if delta[r] != 0 {
                return false;
            }
        } else {
            if delta[r] % k != 0 {
                return false;
            }
            let cand = delta[r] / k;
            match d {
                None => d = Some(cand),
                Some(prev) if prev != cand => return false,
                Some(_) => {}
            }
        }
    }
    let mut residual = delta[0];
    let a0 = h[(0, inner)];
    if a0 != 0 {
        match d {
            // The inner distance is pinned by the lower rows.
            Some(d) => residual -= a0 * d,
            // Free: reduce modulo the stride.
            None => residual = centered_mod(residual, a0.abs()),
        }
    }
    residual.abs() < line_elems
}

fn centered_mod(v: i64, m: i64) -> i64 {
    let mut r = v.rem_euclid(m);
    if r > m / 2 {
        r -= m;
    }
    r
}

/// Use-led (load-issuing) stream count of one UGS after unrolling by `u`:
/// streams whose earliest-touching member is a use.  Innermost-invariant
/// sets contribute nothing (their streams are hoisted).
pub fn ugs_loads_at(set: &UgsSet, space: &UnrollSpace, u: &[u32], depth: usize) -> usize {
    let inner_col: Vec<i64> = set.h().col(depth - 1);
    if inner_col.iter().all(|&x| x == 0) {
        return 0;
    }
    let copies = materialize_copies(set, space, u, depth);
    // Earliest toucher per stream signature: max key, ties by body order.
    let mut leaders: BTreeMap<Vec<i64>, (i64, (usize, usize), bool)> = BTreeMap::new();
    for copy in copies {
        let (sig, key) = stream_signature(&copy.c, &inner_col);
        let cand = (key, copy.order, copy.is_def);
        leaders
            .entry(sig)
            .and_modify(|cur| {
                if key > cur.0 || (key == cur.0 && copy.order < cur.1) {
                    *cur = cand;
                }
            })
            .or_insert(cand);
    }
    leaders.values().filter(|&&(_, _, is_def)| !is_def).count()
}

/// Registers one UGS consumes after unrolling by `u`, evaluated
/// analytically (the per-UGS slice of
/// [`replacement_counts_at`]`.registers`).
pub fn ugs_registers_at(set: &UgsSet, space: &UnrollSpace, u: &[u32], depth: usize) -> usize {
    let mut counts = CopyCounts::default();
    tally_ugs(set, space, u, depth, &mut counts);
    counts.registers
}

/// Shared helper for table construction: the map from each UGS member to
/// its innermost-stream key, plus the stream partition of the *original*
/// body (unroll offset zero).
pub(crate) fn original_streams(set: &UgsSet, depth: usize) -> Vec<Vec<(usize, i64)>> {
    let inner_col: Vec<i64> = set.h().col(depth - 1);
    let mut groups: BTreeMap<usize, Vec<(usize, i64)>> = BTreeMap::new();
    let mut bases: Vec<(Vec<i64>, usize)> = Vec::new();
    'members: for (idx, m) in set.members().iter().enumerate() {
        for (base, gid) in &bases {
            if let Some(d) = inner_distance(&m.c, base, &inner_col) {
                groups.entry(*gid).or_default().push((idx, d));
                continue 'members;
            }
        }
        let gid = bases.len();
        bases.push((m.c.clone(), gid));
        groups.entry(gid).or_default().push((idx, 0));
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::transform::{scalar_replacement, unroll_and_jam};
    use ujam_ir::NestBuilder;

    fn check_against_transform(nest: &ujam_ir::LoopNest, loops: &[usize], u: &[u32]) {
        let space = UnrollSpace::new(nest.depth(), loops, 8);
        let analytic = replacement_counts_at(nest, &space, u);
        let full = space.full_vector(u);
        let transformed = unroll_and_jam(nest, &full).expect("legal in tests");
        let actual = scalar_replacement(&transformed).stats;
        assert_eq!(analytic.loads, actual.loads, "loads @ {u:?}");
        assert_eq!(analytic.stores, actual.stores, "stores @ {u:?}");
        assert_eq!(
            analytic.replaced_loads, actual.replaced_loads,
            "replaced @ {u:?}"
        );
        assert_eq!(
            analytic.hoisted_loads, actual.hoisted_loads,
            "hoisted loads @ {u:?}"
        );
        assert_eq!(
            analytic.hoisted_stores, actual.hoisted_stores,
            "hoisted stores @ {u:?}"
        );
        assert_eq!(analytic.registers, actual.registers, "registers @ {u:?}");
    }

    #[test]
    fn intro_counts_match_real_transform() {
        let nest = NestBuilder::new("intro")
            .array("A", &[842])
            .array("B", &[64])
            .loop_("J", 1, 840)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        for u in 0..=7u32 {
            check_against_transform(&nest, &[0], &[u]);
        }
    }

    #[test]
    fn stencil_counts_match_real_transform() {
        let nest = NestBuilder::new("st")
            .array("A", &[70, 70])
            .array("B", &[70, 70])
            .loop_("J", 2, 49)
            .loop_("I", 2, 49)
            .stmt("B(I,J) = A(I,J-1) + A(I,J) + A(I,J+1) + A(I-1,J)")
            .build();
        for u in [0u32, 1, 2, 3, 5] {
            check_against_transform(&nest, &[0], &[u]);
        }
    }

    #[test]
    fn matmul_two_loop_counts_match() {
        let nest = NestBuilder::new("mm")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .array("C", &[64, 64])
            .loop_("J", 1, 24)
            .loop_("K", 1, 24)
            .loop_("I", 1, 24)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        for u in [[0u32, 0], [1, 0], [0, 1], [1, 1], [2, 3]] {
            check_against_transform(&nest, &[0, 1], &u);
        }
    }

    #[test]
    fn gss_count_matches_reuse_partition_on_unrolled_nest() {
        use ujam_reuse::{group_spatial_sets, Localized};
        let nest = NestBuilder::new("pair")
            .array("A", &[52, 424])
            .array("B", &[52, 424])
            .loop_("J", 1, 420)
            .loop_("I", 1, 48)
            .stmt("A(I,J) = B(I,J) + B(I,J+2)")
            .build();
        let space = UnrollSpace::new(2, &[0], 8);
        for u in 0..=6u32 {
            let transformed = unroll_and_jam(&nest, &[u, 0]).expect("legal");
            let l = Localized::innermost(2);
            let expected: usize = UgsSet::partition(&transformed)
                .iter()
                .filter(|s| s.array() == "B")
                .map(|s| group_spatial_sets(s, &l, 4).len())
                .sum();
            let b = UgsSet::partition(&nest)
                .into_iter()
                .find(|s| s.array() == "B")
                .expect("B");
            assert_eq!(
                gss_count_at(&b, &space, &[u], 2, 4),
                expected,
                "GSS count @ u={u}"
            );
        }
    }

    #[test]
    fn gts_count_tracks_merging() {
        // Figure 1's shape: A(I,J) and A(I-2,J) with the *J* loop unrolled
        // never merge; unrolling over I is not possible (innermost).  Use
        // the outer-difference pair instead: B(I,J) and B(I,J+2) merge at
        // unroll 2.
        let nest = NestBuilder::new("m")
            .array("A", &[70, 70])
            .array("B", &[70, 70])
            .loop_("J", 1, 48)
            .loop_("I", 1, 48)
            .stmt("A(I,J) = B(I,J) + B(I,J+2)")
            .build();
        let b = UgsSet::partition(&nest)
            .into_iter()
            .find(|s| s.array() == "B")
            .expect("B");
        let space = UnrollSpace::new(2, &[0], 8);
        // Distinct J-offsets covered: {0..u} ∪ {2..u+2} = u + 3 values;
        // from u = 2 on, each extra unroll adds one group instead of two
        // because B(I,J)'s new copy coincides with an existing B(I,J+2)
        // copy.
        assert_eq!(gts_count_at(&b, &space, &[0], 2), 3 - 1); // {0,2}
        assert_eq!(gts_count_at(&b, &space, &[1], 2), 4);
        assert_eq!(gts_count_at(&b, &space, &[2], 2), 5);
        assert_eq!(gts_count_at(&b, &space, &[3], 2), 6);
    }
}
