//! Lane-level kernels for the flat table hot path.
//!
//! Every primitive the summed-area tables hammer — the per-axis
//! inclusive prefix scans of [`crate::Table::finalize`], their inverses,
//! the corner gather of the inclusion–exclusion `get`, and the up-set
//! frontier OR/add sweeps — reduces to one of a handful of stride-1
//! inner loops over `i64` (or `bool`) runs.  This module owns those
//! loops in exactly three shapes:
//!
//! * **scalar** — the canonical reference, always compiled, and the
//!   only path on non-x86_64 targets or without the `simd` feature;
//! * **SSE2** — 2×`i64` lanes, unconditionally available on x86_64;
//! * **AVX2** — 4×`i64` lanes plus hardware gathers, selected at
//!   runtime via `is_x86_feature_detected!`.
//!
//! All kernels are pure integer arithmetic, so every level is
//! **bitwise-identical** by construction — the property tests in
//! `crates/core/tests/simd_props.rs` pin it anyway.  Dispatch is one
//! relaxed atomic load per call; the detected level is cached on first
//! use and can be forced down (never up) with the `UJAM_SIMD`
//! environment variable (`scalar`/`off`, `sse2`, `avx2`) or, for tests
//! and benches, with [`with_forced_level`].
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate is otherwise `deny(unsafe_code)`): each intrinsic block is a
//! leaf function whose safety contract is "slice bounds already
//! checked", stated at the call site.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// A lane width the kernels can run at.
///
/// Ordered: a level never dispatches *above* the detected capability,
/// and forcing via [`with_forced_level`] or `UJAM_SIMD` clamps to what
/// the CPU supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The canonical portable path (always available).
    Scalar,
    /// 2×`i64` SSE2 lanes (baseline on every x86_64).
    Sse2,
    /// 4×`i64` AVX2 lanes with hardware gathers.
    Avx2,
}

impl Level {
    /// The spelling accepted by `UJAM_SIMD` and [`Level::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Sse2 => "sse2",
            Level::Avx2 => "avx2",
        }
    }

    /// Parses a level name (`scalar`/`off`, `sse2`, `avx2`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "scalar" | "off" => Some(Level::Scalar),
            "sse2" => Some(Level::Sse2),
            "avx2" => Some(Level::Avx2),
            _ => None,
        }
    }
}

/// Encoding for the cached/override atomics: 0 = unset.
const fn level_code(level: Level) -> u8 {
    match level {
        Level::Scalar => 1,
        Level::Sse2 => 2,
        Level::Avx2 => 3,
    }
}

fn level_of(code: u8) -> Option<Level> {
    match code {
        1 => Some(Level::Scalar),
        2 => Some(Level::Sse2),
        3 => Some(Level::Avx2),
        _ => None,
    }
}

/// Detected-capability cache (0 until first use).
static DETECTED: AtomicU8 = AtomicU8::new(0);
/// Test/bench override (0 = none).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);
/// Serializes [`with_forced_level`] sections so concurrent tests cannot
/// observe each other's override.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// The best level this build + CPU supports, before overrides.
fn detect() -> Level {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Level::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline.
            Level::Sse2
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    Level::Scalar
}

fn detected() -> Level {
    if let Some(level) = level_of(DETECTED.load(Ordering::Relaxed)) {
        return level;
    }
    let mut level = detect();
    if let Ok(var) = std::env::var("UJAM_SIMD") {
        if let Some(forced) = Level::parse(&var) {
            level = forced.min(level);
        }
    }
    DETECTED.store(level_code(level), Ordering::Relaxed);
    level
}

/// The level the kernels currently dispatch at: the test override if
/// one is active, else the cached `UJAM_SIMD`-clamped detection result.
pub fn active_level() -> Level {
    match level_of(OVERRIDE.load(Ordering::Relaxed)) {
        Some(forced) => forced.min(detected()),
        None => detected(),
    }
}

/// Runs `f` with the dispatch level forced to `min(level, detected)`,
/// restoring the previous state afterwards (panic-safe).
///
/// Holds a global lock for the duration, so concurrent tests see a
/// consistent level; production code never calls this — it exists for
/// the scalar-vs-SIMD equivalence pins and the bench's per-arm runs.
pub fn with_forced_level<R>(level: Level, f: impl FnOnce() -> R) -> R {
    let _guard = match FORCE_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    struct Reset(u8);
    impl Drop for Reset {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _reset = Reset(OVERRIDE.swap(level_code(level), Ordering::Relaxed));
    f()
}

// ---------------------------------------------------------------------
// Scalar reference kernels — the canonical semantics of every op.
// ---------------------------------------------------------------------

mod scalar {
    /// `dst[i] += src[i]` — the vertical step of an axis scan.
    pub fn add_rows(dst: &mut [i64], src: &[i64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    /// `dst[i] -= src[i]` — the vertical step of an inverse scan.
    pub fn sub_rows(dst: &mut [i64], src: &[i64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d -= s;
        }
    }

    /// In-place inclusive prefix sum of one contiguous row.
    pub fn prefix_scan(row: &mut [i64]) {
        let mut acc = 0i64;
        for v in row {
            acc += *v;
            *v = acc;
        }
    }

    /// The inverse of [`prefix_scan`]: adjacent differences, in place.
    pub fn inverse_scan(row: &mut [i64]) {
        for i in (1..row.len()).rev() {
            row[i] -= row[i - 1];
        }
    }

    /// `dst[i] |= src[i]` — the vertical step of the up-set closure.
    pub fn or_rows(dst: &mut [bool], src: &[bool]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }

    /// `data[i] += delta` wherever `covered[i]` — the frontier add.
    pub fn add_masked(data: &mut [i64], covered: &[bool], delta: i64) {
        for (d, &c) in data.iter_mut().zip(covered) {
            // Branchless: `-(c as i64)` is an all-ones mask when covered.
            *d += delta & -(c as i64);
        }
    }

    /// Signed corner gather: `Σ ±data[base − deltas[i]]`, the negation
    /// chosen by `negmask[i]` (0 keeps, −1 negates: `(v ^ m) − m`).
    pub fn gather_signed(data: &[i64], base: usize, deltas: &[i64], negmask: &[i64]) -> i64 {
        let mut total = 0i64;
        for (&d, &m) in deltas.iter().zip(negmask) {
            let v = data[base - d as usize];
            total += (v ^ m) - m;
        }
        total
    }
}

// ---------------------------------------------------------------------
// x86_64 lane kernels (compiled only with the `simd` feature).
// ---------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod x86 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller guarantees `dst.len() == src.len()`; unaligned loads and
    /// stores stay inside the slices by the loop bounds.
    #[target_feature(enable = "sse2")]
    pub unsafe fn add_rows_sse2(dst: &mut [i64], src: &[i64]) {
        let n = dst.len();
        let mut i = 0;
        while i + 2 <= n {
            let p = dst.as_mut_ptr().add(i) as *mut __m128i;
            let a = _mm_loadu_si128(p as *const __m128i);
            let b = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(p, _mm_add_epi64(a, b));
            i += 2;
        }
        while i < n {
            dst[i] += src[i];
            i += 1;
        }
    }

    /// # Safety
    /// As [`add_rows_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_rows_avx2(dst: &mut [i64], src: &[i64]) {
        let n = dst.len();
        let mut i = 0;
        while i + 4 <= n {
            let p = dst.as_mut_ptr().add(i) as *mut __m256i;
            let a = _mm256_loadu_si256(p as *const __m256i);
            let b = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(p, _mm256_add_epi64(a, b));
            i += 4;
        }
        while i < n {
            dst[i] += src[i];
            i += 1;
        }
    }

    /// # Safety
    /// As [`add_rows_sse2`].
    #[target_feature(enable = "sse2")]
    pub unsafe fn sub_rows_sse2(dst: &mut [i64], src: &[i64]) {
        let n = dst.len();
        let mut i = 0;
        while i + 2 <= n {
            let p = dst.as_mut_ptr().add(i) as *mut __m128i;
            let a = _mm_loadu_si128(p as *const __m128i);
            let b = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(p, _mm_sub_epi64(a, b));
            i += 2;
        }
        while i < n {
            dst[i] -= src[i];
            i += 1;
        }
    }

    /// # Safety
    /// As [`add_rows_avx2`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_rows_avx2(dst: &mut [i64], src: &[i64]) {
        let n = dst.len();
        let mut i = 0;
        while i + 4 <= n {
            let p = dst.as_mut_ptr().add(i) as *mut __m256i;
            let a = _mm256_loadu_si256(p as *const __m256i);
            let b = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(p, _mm256_sub_epi64(a, b));
            i += 4;
        }
        while i < n {
            dst[i] -= src[i];
            i += 1;
        }
    }

    /// Inclusive prefix sum, 2 lanes at a time: a within-register
    /// shift-add turns `[a0, a1]` into `[a0, a0+a1]`, the running carry
    /// is broadcast in, and the new carry is the upper lane.
    ///
    /// # Safety
    /// Unaligned loads/stores stay inside `row` by the loop bounds.
    #[target_feature(enable = "sse2")]
    pub unsafe fn prefix_scan_sse2(row: &mut [i64]) {
        let n = row.len();
        let mut carry = _mm_setzero_si128();
        let mut i = 0;
        while i + 2 <= n {
            let p = row.as_mut_ptr().add(i) as *mut __m128i;
            let mut v = _mm_loadu_si128(p as *const __m128i);
            v = _mm_add_epi64(v, _mm_slli_si128(v, 8));
            v = _mm_add_epi64(v, carry);
            _mm_storeu_si128(p, v);
            carry = _mm_shuffle_epi32(v, 0b1110_1110); // broadcast upper i64
            i += 2;
        }
        let mut acc = if i > 0 { row[i - 1] } else { 0 };
        while i < n {
            acc += row[i];
            row[i] = acc;
            i += 1;
        }
    }

    /// Inclusive prefix sum, 4 lanes at a time: within-128-bit-lane
    /// shift-adds, a cross-lane broadcast of the low half's total, then
    /// the running carry.
    ///
    /// # Safety
    /// As [`prefix_scan_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn prefix_scan_avx2(row: &mut [i64]) {
        let n = row.len();
        let mut carry = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let p = row.as_mut_ptr().add(i) as *mut __m256i;
            let mut v = _mm256_loadu_si256(p as *const __m256i);
            // [a0, a0+a1 | a2, a2+a3] (slli shifts within 128-bit lanes)
            v = _mm256_add_epi64(v, _mm256_slli_si256(v, 8));
            // Add the low half's total (element 1) into the high half.
            let low_total = _mm256_permute4x64_epi64(v, 0b01_01_01_01);
            let high_only = _mm256_blend_epi32(_mm256_setzero_si256(), low_total, 0b1111_0000);
            v = _mm256_add_epi64(v, high_only);
            v = _mm256_add_epi64(v, carry);
            _mm256_storeu_si256(p, v);
            carry = _mm256_permute4x64_epi64(v, 0b11_11_11_11); // broadcast element 3
            i += 4;
        }
        let mut acc = if i > 0 { row[i - 1] } else { 0 };
        while i < n {
            acc += row[i];
            row[i] = acc;
            i += 1;
        }
    }

    /// Adjacent differences in place, processed right-to-left so every
    /// chunk reads original (not-yet-differenced) predecessors.
    ///
    /// # Safety
    /// Unaligned loads at `i−5` and stores at `i−4` stay inside `row`
    /// because the vector loop requires `i ≥ 5`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn inverse_scan_sse2(row: &mut [i64]) {
        let mut i = row.len();
        while i >= 3 {
            let cur = _mm_loadu_si128(row.as_ptr().add(i - 2) as *const __m128i);
            let prev = _mm_loadu_si128(row.as_ptr().add(i - 3) as *const __m128i);
            _mm_storeu_si128(
                row.as_mut_ptr().add(i - 2) as *mut __m128i,
                _mm_sub_epi64(cur, prev),
            );
            i -= 2;
        }
        while i > 1 {
            row[i - 1] -= row[i - 2];
            i -= 1;
        }
    }

    /// # Safety
    /// As [`inverse_scan_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn inverse_scan_avx2(row: &mut [i64]) {
        let mut i = row.len();
        while i >= 5 {
            let cur = _mm256_loadu_si256(row.as_ptr().add(i - 4) as *const __m256i);
            let prev = _mm256_loadu_si256(row.as_ptr().add(i - 5) as *const __m256i);
            _mm256_storeu_si256(
                row.as_mut_ptr().add(i - 4) as *mut __m256i,
                _mm256_sub_epi64(cur, prev),
            );
            i -= 4;
        }
        while i > 1 {
            row[i - 1] -= row[i - 2];
            i -= 1;
        }
    }

    /// `dst[i] |= src[i]` over `bool` runs, 16 bytes at a time.  `bool`
    /// is layout-identical to `u8` with values 0/1, and OR preserves
    /// that invariant.
    ///
    /// # Safety
    /// Caller guarantees `dst.len() == src.len()`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn or_rows_sse2(dst: &mut [bool], src: &[bool]) {
        let n = dst.len();
        let d = dst.as_mut_ptr() as *mut u8;
        let s = src.as_ptr() as *const u8;
        let mut i = 0;
        while i + 16 <= n {
            let p = d.add(i) as *mut __m128i;
            let a = _mm_loadu_si128(p as *const __m128i);
            let b = _mm_loadu_si128(s.add(i) as *const __m128i);
            _mm_storeu_si128(p, _mm_or_si128(a, b));
            i += 16;
        }
        while i < n {
            *d.add(i) |= *s.add(i);
            i += 1;
        }
    }

    /// # Safety
    /// As [`or_rows_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn or_rows_avx2(dst: &mut [bool], src: &[bool]) {
        let n = dst.len();
        let d = dst.as_mut_ptr() as *mut u8;
        let s = src.as_ptr() as *const u8;
        let mut i = 0;
        while i + 32 <= n {
            let p = d.add(i) as *mut __m256i;
            let a = _mm256_loadu_si256(p as *const __m256i);
            let b = _mm256_loadu_si256(s.add(i) as *const __m256i);
            _mm256_storeu_si256(p, _mm256_or_si256(a, b));
            i += 32;
        }
        while i < n {
            *d.add(i) |= *s.add(i);
            i += 1;
        }
    }

    /// Frontier add: widen 4 covered bytes to `i64` lanes, turn them
    /// into all-ones masks, AND with the broadcast delta, accumulate.
    ///
    /// # Safety
    /// Caller guarantees `data.len() == covered.len()`; the 4-byte
    /// unaligned read stays inside `covered` by the loop bound.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_masked_avx2(data: &mut [i64], covered: &[bool], delta: i64) {
        let n = data.len();
        let dv = _mm256_set1_epi64x(delta);
        let ones = _mm256_set1_epi64x(1);
        let mut i = 0;
        while i + 4 <= n {
            let bytes = (covered.as_ptr().add(i) as *const u32).read_unaligned();
            let lanes = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(bytes as i32));
            let mask = _mm256_cmpeq_epi64(lanes, ones);
            let p = data.as_mut_ptr().add(i) as *mut __m256i;
            let v = _mm256_loadu_si256(p as *const __m256i);
            _mm256_storeu_si256(p, _mm256_add_epi64(v, _mm256_and_si256(dv, mask)));
            i += 4;
        }
        while i < n {
            data[i] += delta & -(covered[i] as i64);
            i += 1;
        }
    }

    /// Signed corner gather with hardware gathers: 4 corners per step.
    ///
    /// # Safety
    /// Caller guarantees `deltas.len() == negmask.len()` and that every
    /// `base − deltas[i]` is a valid index into `data`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_signed_avx2(
        data: &[i64],
        base: usize,
        deltas: &[i64],
        negmask: &[i64],
    ) -> i64 {
        let n = deltas.len();
        let basev = _mm256_set1_epi64x(base as i64);
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let d = _mm256_loadu_si256(deltas.as_ptr().add(i) as *const __m256i);
            let idx = _mm256_sub_epi64(basev, d);
            let v = _mm256_i64gather_epi64(data.as_ptr(), idx, 8);
            let m = _mm256_loadu_si256(negmask.as_ptr().add(i) as *const __m256i);
            acc = _mm256_add_epi64(acc, _mm256_sub_epi64(_mm256_xor_si256(v, m), m));
            i += 4;
        }
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        while i < n {
            let m = negmask[i];
            total += (data[base - deltas[i] as usize] ^ m) - m;
            i += 1;
        }
        total
    }
}

// ---------------------------------------------------------------------
// Dispatchers — one relaxed load + match per call.
// ---------------------------------------------------------------------

macro_rules! dispatch {
    ($level:expr, $scalar:expr, $sse2:expr, $avx2:expr) => {{
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        match $level {
            // SAFETY: the level only reaches Sse2/Avx2 when
            // `is_x86_feature_detected!` confirmed the feature (SSE2 is
            // the x86_64 baseline), and every kernel's slice-bound
            // contract is upheld by the callers below.
            // (`unused_unsafe` allowed because a few ops share the
            // scalar loop at the Sse2 level — no gather/widen below AVX2.)
            #[allow(unsafe_code, unused_unsafe)]
            Level::Avx2 => unsafe { $avx2 },
            #[allow(unsafe_code, unused_unsafe)]
            Level::Sse2 => unsafe { $sse2 },
            Level::Scalar => $scalar,
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            let _ = $level;
            $scalar
        }
    }};
}

/// `dst[i] += src[i]`.  Panics if the lengths differ.
pub(crate) fn add_rows(dst: &mut [i64], src: &[i64]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    dispatch!(
        active_level(),
        scalar::add_rows(dst, src),
        x86::add_rows_sse2(dst, src),
        x86::add_rows_avx2(dst, src)
    )
}

/// `dst[i] -= src[i]`.  Panics if the lengths differ.
pub(crate) fn sub_rows(dst: &mut [i64], src: &[i64]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    dispatch!(
        active_level(),
        scalar::sub_rows(dst, src),
        x86::sub_rows_sse2(dst, src),
        x86::sub_rows_avx2(dst, src)
    )
}

/// In-place inclusive prefix sum of one contiguous row.
pub(crate) fn prefix_scan(row: &mut [i64]) {
    dispatch!(
        active_level(),
        scalar::prefix_scan(row),
        x86::prefix_scan_sse2(row),
        x86::prefix_scan_avx2(row)
    )
}

/// In-place adjacent differences (the inverse of [`prefix_scan`]).
pub(crate) fn inverse_scan(row: &mut [i64]) {
    dispatch!(
        active_level(),
        scalar::inverse_scan(row),
        x86::inverse_scan_sse2(row),
        x86::inverse_scan_avx2(row)
    )
}

/// `dst[i] |= src[i]` over covered-indicator runs.  Panics if the
/// lengths differ.
pub(crate) fn or_rows(dst: &mut [bool], src: &[bool]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    dispatch!(
        active_level(),
        scalar::or_rows(dst, src),
        x86::or_rows_sse2(dst, src),
        x86::or_rows_avx2(dst, src)
    )
}

/// `data[i] += delta` wherever `covered[i]`.  Panics if the lengths
/// differ.  (SSE2 lacks a 64-bit widen, so that level shares the
/// branchless scalar loop.)
pub(crate) fn add_masked(data: &mut [i64], covered: &[bool], delta: i64) {
    assert_eq!(data.len(), covered.len(), "row length mismatch");
    dispatch!(
        active_level(),
        scalar::add_masked(data, covered, delta),
        scalar::add_masked(data, covered, delta),
        x86::add_masked_avx2(data, covered, delta)
    )
}

/// Signed corner gather: `Σ ±data[base − deltas[i]]` with the sign
/// encoded as a 0/−1 mask in `negmask`.  The caller guarantees every
/// `base − deltas[i]` indexes into `data` (the corner map is built from
/// the table's own strides).  SSE2 has no gather, so only AVX2 lifts
/// off the scalar loop.
pub(crate) fn gather_signed(data: &[i64], base: usize, deltas: &[i64], negmask: &[i64]) -> i64 {
    assert_eq!(deltas.len(), negmask.len(), "corner map length mismatch");
    dispatch!(
        active_level(),
        scalar::gather_signed(data, base, deltas, negmask),
        scalar::gather_signed(data, base, deltas, negmask),
        x86::gather_signed_avx2(data, base, deltas, negmask)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<Level> {
        let mut all = vec![Level::Scalar];
        let top = detected();
        if top >= Level::Sse2 {
            all.push(Level::Sse2);
        }
        if top >= Level::Avx2 {
            all.push(Level::Avx2);
        }
        all
    }

    #[test]
    fn every_level_matches_scalar_on_all_kernels() {
        let sizes = [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 64, 100];
        for &n in &sizes {
            let src: Vec<i64> = (0..n as i64).map(|i| i * i - 7 * i + 3).collect();
            let base: Vec<i64> = (0..n as i64).map(|i| 11 * i - 5).collect();
            let cov: Vec<bool> = (0..n).map(|i| i % 3 == 0 || i % 7 == 2).collect();
            for &level in &levels() {
                with_forced_level(level, || {
                    let mut a = base.clone();
                    add_rows(&mut a, &src);
                    let expect: Vec<i64> = base.iter().zip(&src).map(|(b, s)| b + s).collect();
                    assert_eq!(a, expect, "add_rows n={n} {level:?}");

                    let mut s = base.clone();
                    sub_rows(&mut s, &src);
                    let expect: Vec<i64> = base.iter().zip(&src).map(|(b, s)| b - s).collect();
                    assert_eq!(s, expect, "sub_rows n={n} {level:?}");

                    let mut p = base.clone();
                    prefix_scan(&mut p);
                    let mut expect = base.clone();
                    super::scalar::prefix_scan(&mut expect);
                    assert_eq!(p, expect, "prefix_scan n={n} {level:?}");

                    // Inverse round-trips the scan exactly.
                    inverse_scan(&mut p);
                    assert_eq!(p, base, "inverse_scan n={n} {level:?}");

                    let mut o = cov.clone();
                    let flip: Vec<bool> = cov.iter().map(|&c| !c).collect();
                    or_rows(&mut o, &flip);
                    assert!(o.iter().all(|&c| c), "or_rows n={n} {level:?}");

                    let mut m = base.clone();
                    add_masked(&mut m, &cov, 13);
                    let expect: Vec<i64> = base
                        .iter()
                        .zip(&cov)
                        .map(|(b, &c)| b + if c { 13 } else { 0 })
                        .collect();
                    assert_eq!(m, expect, "add_masked n={n} {level:?}");

                    if n > 0 {
                        let deltas: Vec<i64> = (0..n as i64).collect();
                        let negmask: Vec<i64> =
                            (0..n).map(|i| if i % 2 == 0 { 0 } else { -1 }).collect();
                        let got = gather_signed(&base, n - 1, &deltas, &negmask);
                        let expect = super::scalar::gather_signed(&base, n - 1, &deltas, &negmask);
                        assert_eq!(got, expect, "gather_signed n={n} {level:?}");
                    }
                });
            }
        }
    }

    #[test]
    fn forcing_clamps_to_detected_capability() {
        // Forcing *up* beyond the hardware (or a non-simd build) must
        // clamp: active_level() never exceeds the detected level.
        with_forced_level(Level::Avx2, || {
            assert!(active_level() <= detected());
        });
        with_forced_level(Level::Scalar, || {
            assert_eq!(active_level(), Level::Scalar);
        });
    }

    #[test]
    fn level_names_round_trip() {
        for level in [Level::Scalar, Level::Sse2, Level::Avx2] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("off"), Some(Level::Scalar));
        assert_eq!(Level::parse("avx512"), None);
    }
}
