//! The precomputed unroll tables of Carr & Guan (Figures 2–5, §4.2–§4.4).
//!
//! Each table is indexed by *copy offset* `u'` and holds the number of new
//! groups the copy at that offset contributes; the value of the tabulated
//! quantity after unrolling by `u` is the prefix sum over the box
//! `[0, u]` (the paper's `Sum`, Figure 2).  Construction solves, once per
//! ordered leader pair, the merge equation `H·x = Δc` over the unrolled
//! loops plus the innermost loop: a copy whose offset dominates the merge
//! point no longer starts a new group.  Dominating several merge points
//! still merges a copy only once — the union-of-up-sets update
//! ([`crate::Table::add_upset_union`]) realizes the paper's
//! previous-superleader bookkeeping.
//!
//! Scope: like the paper (§3.5, §5), the closed-form table construction
//! targets **separable SIV** references; [`CostTables::siv`] reports
//! whether a nest qualifies.  Where the up-set region structure breaks
//! (line chains, reverse providers, provider switches), construction
//! falls back to exact tabulation of the analytic evaluator, storing
//! the `Sum` values directly ([`Table::from_sums`]) — see DESIGN.md §5.
//!
//! Every table this module returns is **finalized** (a summed-area
//! table), so each `prefix_sum` query downstream is a single lookup;
//! merge solves are memoized per construction, keyed by the leader-pair
//! difference `Δc` (identical deltas recur across pairs).

use crate::space::{Table, UnrollSpace};
use crate::streams;
use std::collections::HashMap;
use ujam_ir::LoopNest;
use ujam_linalg::{solve_unique, Mat, SolveOutcome};
use ujam_reuse::{group_spatial_sets, has_self_spatial, has_self_temporal, Localized, UgsSet};

/// Memoizes [`merge_point`] solves within one table construction, keyed
/// by the leader-pair delta — `H` and the space are fixed per set, and
/// identical deltas are re-solved many times across leader pairs.
struct MergeMemo {
    cache: HashMap<Vec<i64>, Option<(Vec<u32>, i64)>>,
}

impl MergeMemo {
    fn new() -> MergeMemo {
        MergeMemo {
            cache: HashMap::new(),
        }
    }

    fn solve(&mut self, h: &Mat, delta: &[i64], space: &UnrollSpace) -> Option<(Vec<u32>, i64)> {
        if let Some(hit) = self.cache.get(delta) {
            return hit.clone();
        }
        let solved = merge_point(h, delta, space);
        self.cache.insert(delta.to_vec(), solved.clone());
        solved
    }
}

/// Solves the merge equation `H·x = delta` with `x` supported on the
/// unrolled loops and the innermost loop.  Returns the unroll components
/// (the merge point) and the innermost component (any sign) when the
/// solution exists, is integral, and is non-negative on every unrolled
/// loop.
fn merge_point(h: &Mat, delta: &[i64], space: &UnrollSpace) -> Option<(Vec<u32>, i64)> {
    let inner = space.depth() - 1;
    let mut cols: Vec<usize> = space.loops().to_vec();
    cols.push(inner);
    // Drop all-zero columns: they are unconstrained and take value 0.
    let nonzero: Vec<usize> = cols
        .iter()
        .copied()
        .filter(|&c| (0..h.rows()).any(|r| h[(r, c)] != 0))
        .collect();
    let SolveOutcome::Unique(x) = solve_unique(h, delta, &nonzero) else {
        return None;
    };
    let mut point = vec![0u32; space.dims()];
    for (k, &l) in space.loops().iter().enumerate() {
        if let Some(p) = nonzero.iter().position(|&c| c == l) {
            point[k] = u32::try_from(x[p]).ok()?;
        }
    }
    let mut inner_val = 0;
    if let Some(p) = nonzero.iter().position(|&c| c == inner) {
        inner_val = x[p];
    }
    Some((point, inner_val))
}

/// Offsets at which *every* copy of this UGS coincides with an earlier
/// copy of itself: the unit vectors of unrolled loops whose `H` column is
/// zero (the reference ignores that loop, so unrolling duplicates it).
fn self_merge_points(h: &Mat, space: &UnrollSpace) -> Vec<Vec<u32>> {
    space
        .loops()
        .iter()
        .enumerate()
        .filter(|&(_, &l)| (0..h.rows()).all(|r| h[(r, l)] == 0))
        .map(|(d, _)| {
            let mut e = vec![0u32; space.dims()];
            e[d] = 1;
            e
        })
        .collect()
}

/// Figure 2: the table of new group-temporal sets per copy offset for one
/// uniformly generated set, under innermost localization (the localized
/// space of an unrolled loop's body).
///
/// `gts_table(set, space).prefix_sum(u)` equals the number of GTSs of the
/// unrolled loop — validated against [`streams::gts_count_at`] and against
/// re-partitioning the actually-unrolled IR.
///
/// # Example
///
/// ```
/// use ujam_core::{gts_table, UnrollSpace};
/// use ujam_ir::NestBuilder;
/// use ujam_reuse::UgsSet;
/// let nest = NestBuilder::new("fig1")
///     .array("A", &[66, 66]).array("B", &[66, 66])
///     .loop_("J", 1, 64).loop_("I", 1, 64)
///     .stmt("A(I,J) = B(I,J) + B(I,J+2)")
///     .build();
/// let b = UgsSet::partition(&nest).into_iter()
///     .find(|s| s.array() == "B").unwrap();
/// let t = gts_table(&b, &UnrollSpace::new(2, &[0], 4));
/// assert_eq!(t.prefix_sum(&[0]), 2);
/// assert_eq!(t.prefix_sum(&[2]), 5); // merging begins at offset 2
/// ```
pub fn gts_table(set: &UgsSet, space: &UnrollSpace) -> Table {
    let depth = space.depth();
    let groups = streams::original_streams(set, depth);
    let self_points = self_merge_points(set.h(), space);
    let mut t = Table::filled(space.clone(), groups.len() as i64);
    let mut memo = MergeMemo::new();

    for (j, gj) in groups.iter().enumerate() {
        let cj = &set.members()[gj[0].0].c;
        let mut points = self_points.clone();
        for (i, gi) in groups.iter().enumerate() {
            if i == j {
                continue;
            }
            let ci = &set.members()[gi[0].0].c;
            let delta: Vec<i64> = cj.iter().zip(ci).map(|(a, b)| a - b).collect();
            if let Some((point, _)) = memo.solve(set.h(), &delta, space) {
                if point.iter().any(|&p| p > 0) {
                    points.push(point);
                }
            }
        }
        t.add_upset_union(&points, -1);
    }
    t.finalize();
    t
}

/// Figure 3: the table of new group-spatial sets per copy offset.
///
/// Same structure as [`gts_table`] with the spatial merge relation: the
/// subscript rows below the first must close exactly, while the
/// first-dimension (column-contiguous) residue only has to fall within the
/// cache line.  Unrolled loops appearing in the first subscript produce
/// line *chains*: a new leader every `ceil(line/|a|)` copies.
pub fn gss_table(set: &UgsSet, space: &UnrollSpace, line_elems: i64) -> Table {
    assert!(line_elems >= 1, "cache line must hold at least one element");
    let depth = space.depth();
    let h = set.h();
    let inner = depth - 1;

    // Line *chains*: an unrolled loop that drives the first (contiguous)
    // subscript walks copies along cache lines, and the greedy leader walk
    // over the combined value stream does not decompose into up-sets.
    // Tabulate such sets exactly by direct counting, storing the counts
    // as already-finalized sums so the prefix-sum interface (and its O(1)
    // query cost) is preserved.
    let chained = space.loops().iter().any(|&lp| h[(0, lp)] != 0);
    if chained {
        return Table::from_sums(space.clone(), |u| {
            streams::gss_count_at(set, space, u, depth, line_elems) as i64
        });
    }

    let l = Localized::innermost(depth);
    let groups = group_spatial_sets(set, &l, line_elems);
    let mut t = Table::filled(space.clone(), groups.len() as i64);

    let self_points = self_merge_points(h, space);
    let mut memo: HashMap<Vec<i64>, Option<Vec<u32>>> = HashMap::new();
    for (j, gj) in groups.iter().enumerate() {
        let cj = &set.members()[gj[0]].c;
        let mut points = self_points.clone();
        for (i, gi) in groups.iter().enumerate() {
            if i == j {
                continue;
            }
            let ci = &set.members()[gi[0]].c;
            let delta: Vec<i64> = cj.iter().zip(ci).map(|(a, b)| a - b).collect();
            let point = memo
                .entry(delta)
                .or_insert_with_key(|d| spatial_merge_point(h, d, space, inner, line_elems));
            if let Some(point) = point {
                if point.iter().any(|&p| p > 0) {
                    points.push(point.clone());
                }
            }
        }
        t.add_upset_union(&points, -1);
    }
    t.finalize();
    t
}

/// The spatial merge point: rows below the first close exactly over
/// (unrolled ∪ innermost), the first row up to a residue `< line`.
fn spatial_merge_point(
    h: &Mat,
    delta: &[i64],
    space: &UnrollSpace,
    inner: usize,
    line_elems: i64,
) -> Option<Vec<u32>> {
    if h.rows() == 0 {
        return Some(vec![0; space.dims()]);
    }
    // Build the sub-system of rows 1.. and solve it.
    let sub_rows: Vec<&[i64]> = (1..h.rows()).map(|r| h.row(r)).collect();
    let sub = Mat::from_rows(&sub_rows);
    let sub_delta = &delta[1..];
    let mut cols: Vec<usize> = space.loops().to_vec();
    cols.push(inner);
    let nonzero: Vec<usize> = cols
        .iter()
        .copied()
        .filter(|&c| (0..sub.rows()).any(|r| sub[(r, c)] != 0))
        .collect();
    let x = match solve_unique(&sub, sub_delta, &nonzero) {
        SolveOutcome::Unique(x) => x,
        SolveOutcome::Underdetermined => vec![0; nonzero.len()],
        _ => return None,
    };
    let mut point = vec![0u32; space.dims()];
    for (k, &l) in space.loops().iter().enumerate() {
        if let Some(p) = nonzero.iter().position(|&c| c == l) {
            point[k] = u32::try_from(x[p]).ok()?;
        }
    }
    // First-row residue: localized loops appearing (only) in row 0 can
    // absorb part of the difference.
    let mut residual = delta[0];
    for (p, &c) in nonzero.iter().enumerate() {
        residual -= h[(0, c)] * x[p];
    }
    // A free unrolled loop in row 0: pick the smallest non-negative copy
    // distance that brings the residue within the line.  The search is
    // per-dimension bounded — with heterogeneous bounds a distance only
    // counts if this loop's own axis can reach it.
    for (d, &l) in space.loops().iter().enumerate() {
        let a = h[(0, l)];
        if a == 0 || nonzero.contains(&l) {
            continue;
        }
        let chosen =
            (0..=space.bounds()[d] as i64).find(|&xl| (residual - a * xl).abs() < line_elems)?;
        point[d] = chosen as u32;
        residual -= a * chosen;
    }
    // A free innermost loop in row 0 reduces the residue modulo |a|.
    let a_in = h[(0, inner)];
    if a_in != 0 && !nonzero.contains(&inner) {
        residual = centered_mod(residual, a_in.abs());
    }
    (residual.abs() < line_elems).then_some(point)
}

fn centered_mod(v: i64, m: i64) -> i64 {
    let mut r = v.rem_euclid(m);
    if r > m / 2 {
        r -= m;
    }
    r
}

/// The tables driving the memory-operation count `M(u)` (§4.3, Figures
/// 4–5): stores scale with the number of copies; loads are one per
/// *use-led* register-reuse stream, tabulated with merge regions.
#[derive(Clone, Debug)]
pub struct RrsTables {
    use_led: Table,
    stores_per_copy: i64,
}

impl RrsTables {
    /// Loads per unrolled iteration after scalar replacement.
    pub fn loads(&self, u: &[u32]) -> i64 {
        self.use_led.prefix_sum(u)
    }

    /// Stores per unrolled iteration.
    pub fn stores(&self, u: &[u32]) -> i64 {
        self.stores_per_copy * self.use_led.space().copies(u) as i64
    }

    /// Memory operations per unrolled iteration (`M`).
    pub fn memory_ops(&self, u: &[u32]) -> i64 {
        self.loads(u) + self.stores(u)
    }

    /// [`RrsTables::loads`] by precomputed flat index (finalized tables
    /// only — see [`Table::prefix_sum_flat`]).
    pub fn loads_flat(&self, idx: usize) -> i64 {
        self.use_led.prefix_sum_flat(idx)
    }

    /// [`RrsTables::memory_ops`] by precomputed flat index plus the
    /// candidate's copy count `Π (u_d + 1)` (stores scale with copies,
    /// not with the tables).
    pub fn memory_ops_flat(&self, idx: usize, copies: usize) -> i64 {
        self.loads_flat(idx) + self.stores_per_copy * copies as i64
    }
}

/// Figures 4–5: builds the register-reuse-stream tables for a whole nest.
///
/// Each use-led register-reuse set issues one load per iteration until a
/// copy of an *earlier-touching* reference (its provider) appears at a
/// dominated offset; defs always keep their store.  Innermost-invariant
/// streams are hoisted and issue nothing per iteration.
pub fn rrs_tables(nest: &LoopNest, space: &UnrollSpace) -> RrsTables {
    rrs_tables_from(&UgsSet::partition(nest), nest.depth(), space)
}

/// [`rrs_tables`] over an already-computed UGS partition (the analysis
/// context caches one partition per nest and shares it across passes).
pub fn rrs_tables_from(sets: &[UgsSet], depth: usize, space: &UnrollSpace) -> RrsTables {
    let mut use_led = Table::filled(space.clone(), 0);
    use_led.finalize(); // zeros; per-set contributions accumulate as sums
    let mut stores_per_copy = 0i64;

    for set in sets {
        let inner_col: Vec<i64> = set.h().col(depth - 1);
        if inner_col.iter().all(|&x| x == 0) {
            // Invariant UGS: every stream is hoisted.
            continue;
        }
        // Defs always store, regardless of merging.
        stores_per_copy += set.members().iter().filter(|m| m.is_def).count() as i64;

        // A *reverse provider* — a reference whose copy at a HIGHER unroll
        // offset touches the shared cells earlier — makes absorption depend
        // on the query box, not just the copy offset, so the up-set region
        // algorithm cannot express it (the merge comes "from above").
        // Tabulate such sets exactly, directly in the `Sum` domain.
        if has_reverse_provider(set, space, depth) {
            use_led.accumulate(&Table::from_sums(space.clone(), |u| {
                streams::ugs_loads_at(set, space, u, depth) as i64
            }));
            continue;
        }

        let mut memo = MergeMemo::new();
        let groups = streams::original_streams(set, depth);
        for (g_idx, g) in groups.iter().enumerate() {
            // Sort members by touch order (key desc, reference order asc).
            let mut ms: Vec<(usize, i64)> = g.clone();
            ms.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for (pos, &(idx, _key)) in ms.iter().enumerate() {
                if set.members()[idx].is_def {
                    // Stores were counted at the UGS level.
                } else if pos == 0 {
                    // A use-led stream: one load per copy until absorbed.
                    let cj = &set.members()[idx].c;
                    let mut points = self_merge_points(set.h(), space);
                    for (i, gi) in groups.iter().enumerate() {
                        if i == g_idx {
                            continue;
                        }
                        for &(m_idx, _) in gi {
                            let cm = &set.members()[m_idx].c;
                            let delta: Vec<i64> = cm.iter().zip(cj).map(|(a, b)| a - b).collect();
                            // Solve H·x = c_m − c_j: the provider copy sits
                            // at `u' − x_unroll` and touches `x_inner`
                            // iterations earlier than the leader; it
                            // provides when it touches no later.
                            if let Some((point, inner_val)) = memo.solve(set.h(), &delta, space) {
                                if inner_val >= 0 && point.iter().any(|&p| p > 0) {
                                    points.push(point);
                                }
                            }
                        }
                    }
                    let mut contrib = Table::filled(space.clone(), 1);
                    contrib.add_upset_union(&points, -1);
                    contrib.finalize();
                    use_led.accumulate(&contrib);
                }
            }
        }
    }
    RrsTables {
        use_led,
        stores_per_copy,
    }
}

/// Like [`merge_point`] but without any sign restriction: the raw unique
/// integral solution's unroll components and innermost component.
fn merge_point_raw(h: &Mat, delta: &[i64], space: &UnrollSpace) -> Option<(Vec<i64>, i64)> {
    let inner = space.depth() - 1;
    let mut cols: Vec<usize> = space.loops().to_vec();
    cols.push(inner);
    let nonzero: Vec<usize> = cols
        .iter()
        .copied()
        .filter(|&c| (0..h.rows()).any(|r| h[(r, c)] != 0))
        .collect();
    let SolveOutcome::Unique(x) = solve_unique(h, delta, &nonzero) else {
        return None;
    };
    let mut unroll_parts = vec![0i64; space.dims()];
    for (k, &l) in space.loops().iter().enumerate() {
        if let Some(p) = nonzero.iter().position(|&c| c == l) {
            unroll_parts[k] = x[p];
        }
    }
    let mut inner_val = 0;
    if let Some(p) = nonzero.iter().position(|&c| c == inner) {
        inner_val = x[p];
    }
    Some((unroll_parts, inner_val))
}

/// Detects absorptions the up-set region algorithm cannot express:
///
/// * a *reverse provider* — a reference whose copy at a strictly higher
///   unroll offset touches the shared cells strictly earlier — or
/// * a *mixed-sign* merge offset (partner above in one unrolled dimension
///   and below in another).
///
/// Either makes the absorbed-copy set depend on the query box, so the UGS
/// is tabulated exactly by Möbius inversion instead (see DESIGN.md §5).
fn has_reverse_provider(set: &UgsSet, space: &UnrollSpace, _depth: usize) -> bool {
    let members = set.members();
    let mut memo: HashMap<Vec<i64>, Option<(Vec<i64>, i64)>> = HashMap::new();
    for j in members {
        for m in members {
            // `m` as a candidate provider for `j`: the solve is over
            // c_m − c_j; its unroll part locates the provider copy at
            // `u' − x` (negative components = above).
            let delta: Vec<i64> = m.c.iter().zip(&j.c).map(|(a, b)| a - b).collect();
            if delta.iter().all(|&d| d == 0) {
                continue;
            }
            let solved = memo
                .entry(delta)
                .or_insert_with_key(|d| merge_point_raw(set.h(), d, space));
            let Some((x, inner_val)) = solved.clone() else {
                continue;
            };
            let has_neg = x.iter().any(|&v| v < 0);
            let has_pos = x.iter().any(|&v| v > 0);
            if has_neg && has_pos {
                return true; // mixed sign
            }
            if has_neg && inner_val > 0 {
                return true; // provider strictly above, touching earlier
            }
        }
    }
    false
}

/// Figure 7: the register-pressure table `RL(u)` for one UGS, built with
/// the same per-offset region discipline as the other tables.
///
/// The closed-form construction applies to def-free, non-invariant,
/// chain-free sets whose merges are pairwise (each group has at most one
/// provider): the common stencil-read case that actually drives register
/// pressure.  Everything else — defs re-splitting streams, invariant
/// sets, line chains, reverse providers, provider switches (the paper's
/// Figure 6) — falls back to exact tabulation of the analytic count in
/// the `Sum` domain, preserving the prefix-sum interface.
pub fn reg_table(set: &UgsSet, space: &UnrollSpace) -> Table {
    let depth = space.depth();
    let h = set.h();
    let inner_col: Vec<i64> = h.col(depth - 1);

    let analytic_fallback = || {
        Table::from_sums(space.clone(), |u| {
            streams::ugs_registers_at(set, space, u, depth) as i64
        })
    };

    // Invariant sets, sets with defs, row-0 unrolled loops (chains), or
    // reverse providers: fall back.
    if inner_col.iter().all(|&x| x == 0)
        || set.members().iter().any(|m| m.is_def)
        || space.loops().iter().any(|&l| h[(0, l)] != 0)
        || has_reverse_provider(set, space, depth)
        || !self_merge_points(h, space).is_empty()
    {
        return analytic_fallback();
    }

    // Streams with their touch keys, leaders first (key descending).
    let groups = streams::original_streams(set, depth);
    struct StreamInfo {
        c: Vec<i64>,
        key_max: i64,
        key_min: i64,
        members: usize,
    }
    let infos: Vec<StreamInfo> = groups
        .iter()
        .map(|g| {
            let keys: Vec<i64> = g.iter().map(|&(_, k)| k).collect();
            StreamInfo {
                c: set.members()[g[0].0].c.clone(),
                key_max: *keys.iter().max().expect("non-empty"),
                key_min: *keys.iter().min().expect("non-empty"),
                members: g.len(),
            }
        })
        .collect();
    let base_cost = |s: &StreamInfo| {
        if s.members >= 2 {
            s.key_max - s.key_min + 1
        } else {
            0
        }
    };

    // Pairwise merges: j absorbed into i at unroll point x with key shift
    // δ = −x_inner of the solve H·x = c_i − c_j (provider below, earlier).
    struct Merge {
        j: usize,
        i: usize,
        point: Vec<u32>,
        shift: i64,
    }
    let mut merges: Vec<Merge> = Vec::new();
    let mut memo = MergeMemo::new();
    for (j, sj) in infos.iter().enumerate() {
        for (i, si) in infos.iter().enumerate() {
            if i == j {
                continue;
            }
            let delta: Vec<i64> = si.c.iter().zip(&sj.c).map(|(a, b)| a - b).collect();
            if let Some((point, inner_val)) = memo.solve(h, &delta, space) {
                // Provider below and earlier-or-equal in touch order.
                if inner_val >= 0 && point.iter().any(|&p| p > 0) {
                    merges.push(Merge {
                        j,
                        i,
                        point,
                        shift: -inner_val,
                    });
                }
            }
        }
    }
    // Chain detection: a group with several providers, or a group that is
    // both absorbed and absorbing, needs the provider-switch walk — fall
    // back rather than approximate.
    let mut absorbed = vec![0usize; infos.len()];
    let mut providing = vec![0usize; infos.len()];
    for m in &merges {
        absorbed[m.j] += 1;
        providing[m.i] += 1;
    }
    if absorbed.iter().any(|&a| a > 1)
        || (0..infos.len()).any(|g| absorbed[g] > 0 && providing[g] > 0)
    {
        return analytic_fallback();
    }

    // Base contributions: every copy of every stream pays its own cost.
    let mut t = Table::filled(space.clone(), infos.iter().map(base_cost).sum());
    // Merge deltas: for offsets dominating the merge point, the pair
    // (i @ u'−x, j @ u') costs span(union)+1 instead of the two separate
    // costs; attribute the delta to j's copy offset.
    for m in &merges {
        let (si, sj) = (&infos[m.i], &infos[m.j]);
        let merged_max = si.key_max.max(sj.key_max + m.shift);
        let merged_min = si.key_min.min(sj.key_min + m.shift);
        let merged_cost = merged_max - merged_min + 1;
        let delta = merged_cost - base_cost(si) - base_cost(sj);
        t.add_upset_union(std::slice::from_ref(&m.point), delta);
    }
    t.finalize();
    t
}

/// The complete per-nest query interface the optimizer searches over:
/// flops, memory operations, cache misses, and registers as functions of
/// the unroll vector — all from precomputed tables.
#[derive(Clone, Debug)]
pub struct CostTables {
    space: UnrollSpace,
    flops_per_copy: usize,
    rrs: RrsTables,
    /// Per-UGS `(line cost factor, GSS table)`.
    gss: Vec<(f64, Table)>,
    /// Per-UGS register tables (Figure 7).
    registers: Vec<Table>,
    siv: bool,
    /// Whether every register table's sums are axis-monotone — the
    /// soundness condition for up-set pruning in the search.
    registers_monotone: bool,
}

impl CostTables {
    /// Builds every table for a nest over an unroll space.
    ///
    /// `line_elems` is the cache line size in array elements (Equation 1's
    /// `C`).  The closed-form tables assume separable SIV references
    /// (§3.5); [`CostTables::siv`] reports whether the nest qualifies.
    pub fn build(nest: &LoopNest, space: &UnrollSpace, line_elems: i64) -> CostTables {
        Self::build_with_sets(nest, &UgsSet::partition(nest), space, line_elems)
    }

    /// [`CostTables::build`] over an already-computed UGS partition.
    ///
    /// The seed optimizer partitioned the nest three times per table
    /// build (GSS, RRS, registers); the analysis context computes the
    /// partition once per nest and shares it here and with the
    /// loop-selection scoring.
    pub fn build_with_sets(
        nest: &LoopNest,
        sets: &[UgsSet],
        space: &UnrollSpace,
        line_elems: i64,
    ) -> CostTables {
        let siv = nest.is_siv_separable();
        let l = Localized::innermost(nest.depth());
        let gss = sets
            .iter()
            .map(|set| {
                let f = if has_self_temporal(set.h(), &l) {
                    0.0
                } else if has_self_spatial(set.h(), &l) {
                    1.0 / line_elems as f64
                } else {
                    1.0
                };
                let t = gss_table(set, space, line_elems);
                (f, t)
            })
            .collect();
        let rrs = rrs_tables_from(sets, nest.depth(), space);
        let registers: Vec<Table> = sets.iter().map(|set| reg_table(set, space)).collect();
        let registers_monotone = registers.iter().all(Table::is_monotone);
        CostTables {
            space: space.clone(),
            flops_per_copy: nest.flops_per_iter(),
            rrs,
            gss,
            registers,
            siv,
            registers_monotone,
        }
    }

    /// The table's unroll space.
    pub fn space(&self) -> &UnrollSpace {
        &self.space
    }

    /// `true` when the nest satisfies the separable-SIV restriction the
    /// closed-form tables assume.
    pub fn siv(&self) -> bool {
        self.siv
    }

    /// Floating-point operations per unrolled iteration.
    pub fn flops(&self, u: &[u32]) -> usize {
        self.flops_per_copy * self.space.copies(u)
    }

    /// [`CostTables::flops`] by precomputed copy count, for callers that
    /// already hold `space.copies(u)`.
    pub fn flops_of_copies(&self, copies: usize) -> usize {
        self.flops_per_copy * copies
    }

    /// Memory operations per unrolled iteration (`M` of §3.2).
    pub fn memory_ops(&self, u: &[u32]) -> i64 {
        self.rrs.memory_ops(u)
    }

    /// Loads per unrolled iteration.
    pub fn loads(&self, u: &[u32]) -> i64 {
        self.rrs.loads(u)
    }

    /// Stores per unrolled iteration.
    pub fn stores(&self, u: &[u32]) -> i64 {
        self.rrs.stores(u)
    }

    /// Cache lines fetched per unrolled iteration (Equation 1 summed over
    /// the uniformly generated sets).
    pub fn cache_lines(&self, u: &[u32]) -> f64 {
        self.gss
            .iter()
            .map(|(f, t)| f * t.prefix_sum(u) as f64)
            .sum()
    }

    /// Floating-point registers required by scalar replacement (`R(u)`).
    pub fn registers(&self, u: &[u32]) -> i64 {
        self.registers.iter().map(|t| t.prefix_sum(u)).sum()
    }

    /// Whether the flat-index query variants are available: every
    /// underlying table finalized (always true for tables built by
    /// [`CostTables::build`]; false after [`CostTables::definalized`]).
    pub fn flat_queryable(&self) -> bool {
        self.rrs.use_led.is_finalized()
            && self.gss.iter().all(|(_, t)| t.is_finalized())
            && self.registers.iter().all(Table::is_finalized)
    }

    /// [`CostTables::memory_ops`] by precomputed flat index and copy
    /// count — the pruned search walk tracks both incrementally during
    /// descent, skipping the per-query re-indexing entirely.
    pub fn memory_ops_flat(&self, idx: usize, copies: usize) -> i64 {
        self.rrs.memory_ops_flat(idx, copies)
    }

    /// [`CostTables::loads`] by precomputed flat index.
    pub fn loads_flat(&self, idx: usize) -> i64 {
        self.rrs.loads_flat(idx)
    }

    /// [`CostTables::cache_lines`] by precomputed flat index.
    pub fn cache_lines_flat(&self, idx: usize) -> f64 {
        self.gss
            .iter()
            .map(|(f, t)| f * t.prefix_sum_flat(idx) as f64)
            .sum()
    }

    /// [`CostTables::registers`] by precomputed flat index.
    pub fn registers_flat(&self, idx: usize) -> i64 {
        self.registers.iter().map(|t| t.prefix_sum_flat(idx)).sum()
    }

    /// `true` when [`CostTables::registers`] is monotone in `u` (every
    /// per-UGS register table's sums grow along every axis) — checked
    /// once at build time.  When it holds, a candidate over the register
    /// budget rules out its entire up-set, so the search may prune
    /// whole subtrees without changing the winner.
    pub fn registers_monotone(&self) -> bool {
        self.registers_monotone
    }

    /// A copy of these tables back in the density domain, so every query
    /// re-enumerates its box — the seed's O(N)-per-query behaviour.
    /// Exists for the `search_scaling` bench and round-trip tests; the
    /// optimizer never uses it.
    pub fn definalized(&self) -> CostTables {
        CostTables {
            space: self.space.clone(),
            flops_per_copy: self.flops_per_copy,
            rrs: RrsTables {
                use_led: self.rrs.use_led.definalized(),
                stores_per_copy: self.rrs.stores_per_copy,
            },
            gss: self
                .gss
                .iter()
                .map(|(f, t)| (*f, t.definalized()))
                .collect(),
            registers: self.registers.iter().map(Table::definalized).collect(),
            siv: self.siv,
            registers_monotone: self.registers_monotone,
        }
    }
}

/// The one shared accumulation loop behind every table property test:
/// walks each offset of `space` once (tracking the running flat index,
/// so finalized queries can be cross-checked against their flat-index
/// variants) and asserts `got(u, flat) == want(u)`.
///
/// Both `tests` and `reg_table_tests` previously carried near-identical
/// copies of this walk; keeping it in one place means layout changes
/// land exactly once.
#[cfg(test)]
fn assert_counts_match(
    space: &UnrollSpace,
    label: &str,
    mut got: impl FnMut(&[u32], usize) -> i64,
    mut want: impl FnMut(&[u32]) -> i64,
) {
    let mut flat = 0usize;
    space.for_each_offset(|u| {
        assert_eq!(got(u, flat), want(u), "{label} mismatch at {u:?}");
        flat += 1;
    });
}

/// [`assert_counts_match`] for a [`Table`]'s `Sum` query, additionally
/// pinning `prefix_sum_flat` ≡ `prefix_sum` on finalized tables.
#[cfg(test)]
fn assert_table_matches(table: &Table, label: &str, want: impl FnMut(&[u32]) -> i64) {
    assert_counts_match(
        table.space(),
        label,
        |u, flat| {
            let sum = table.prefix_sum(u);
            if table.is_finalized() {
                assert_eq!(table.prefix_sum_flat(flat), sum, "{label} flat at {u:?}");
            }
            sum
        },
        want,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::{gss_count_at, gts_count_at, replacement_counts_at};
    use ujam_ir::NestBuilder;

    fn check_all_tables(nest: &LoopNest, loops: &[usize], bound: u32, line: i64) {
        let space = UnrollSpace::new(nest.depth(), loops, bound);
        let sets = UgsSet::partition(nest);
        for set in &sets {
            let gts = gts_table(set, &space);
            let gss = gss_table(set, &space, line);
            assert_table_matches(&gts, &format!("GTS for {}", set.array()), |u| {
                gts_count_at(set, &space, u, nest.depth()) as i64
            });
            assert_table_matches(&gss, &format!("GSS for {}", set.array()), |u| {
                gss_count_at(set, &space, u, nest.depth(), line) as i64
            });
        }
        let rrs = rrs_tables(nest, &space);
        assert_counts_match(
            &space,
            "loads",
            |u, flat| {
                assert_eq!(rrs.loads_flat(flat), rrs.loads(u), "flat loads at {u:?}");
                rrs.loads(u)
            },
            |u| replacement_counts_at(nest, &space, u).loads as i64,
        );
        assert_counts_match(
            &space,
            "stores",
            |u, _| rrs.stores(u),
            |u| replacement_counts_at(nest, &space, u).stores as i64,
        );
    }

    #[test]
    fn intro_loop_tables_match_analytic() {
        let nest = NestBuilder::new("intro")
            .array("A", &[840])
            .array("B", &[64])
            .loop_("J", 1, 840)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        check_all_tables(&nest, &[0], 6, 4);
    }

    #[test]
    fn stencil_tables_match_analytic() {
        let nest = NestBuilder::new("st")
            .array("A", &[70, 70])
            .array("B", &[70, 70])
            .loop_("J", 2, 49)
            .loop_("I", 2, 49)
            .stmt("B(I,J) = A(I,J-1) + A(I,J) + A(I,J+1) + A(I-1,J)")
            .build();
        check_all_tables(&nest, &[0], 6, 4);
    }

    #[test]
    fn matmul_two_loop_tables_match_analytic() {
        let nest = NestBuilder::new("mm")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .array("C", &[64, 64])
            .loop_("J", 1, 24)
            .loop_("K", 1, 24)
            .loop_("I", 1, 24)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        check_all_tables(&nest, &[0, 1], 3, 4);
    }

    #[test]
    fn strided_tables_match_analytic() {
        let nest = NestBuilder::new("strided")
            .array("A", &[200])
            .array("B", &[100, 100])
            .loop_("J", 1, 48)
            .loop_("I", 1, 48)
            .stmt("B(I,J) = A(2J-1) + A(2J+3)")
            .build();
        check_all_tables(&nest, &[0], 5, 8);
    }

    #[test]
    fn def_use_streams_tabulate() {
        let nest = NestBuilder::new("fwd")
            .array("A", &[70, 70])
            .array("B", &[70, 70])
            .loop_("J", 2, 49)
            .loop_("I", 2, 49)
            .stmt("A(I,J) = B(I,J) * 2.0")
            .stmt("B(I,J) = A(I,J-1) + A(I-1,J)")
            .build();
        check_all_tables(&nest, &[0], 4, 4);
    }

    #[test]
    fn cost_tables_queries_are_consistent() {
        let nest = NestBuilder::new("mm")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .array("C", &[64, 64])
            .loop_("J", 1, 24)
            .loop_("K", 1, 24)
            .loop_("I", 1, 24)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        let space = UnrollSpace::new(3, &[0, 1], 3);
        let ct = CostTables::build(&nest, &space, 4);
        assert!(ct.siv());
        assert_eq!(ct.flops(&[0, 0]), 2);
        assert_eq!(ct.flops(&[1, 1]), 8);
        // Unrolling improves the memory-op to flop ratio.
        let r0 = ct.memory_ops(&[0, 0]) as f64 / ct.flops(&[0, 0]) as f64;
        let r3 = ct.memory_ops(&[3, 3]) as f64 / ct.flops(&[3, 3]) as f64;
        assert!(r3 < r0, "unrolling must improve the op ratio: {r3} vs {r0}");
        // Registers grow with the unroll amounts.
        assert!(ct.registers(&[3, 3]) > ct.registers(&[0, 0]));
        // Cache lines per iteration grow, but slower than copies.
        let lines0 = ct.cache_lines(&[0, 0]);
        let lines3 = ct.cache_lines(&[3, 3]);
        assert!(lines3 < lines0 * 16.0);
    }
}

#[cfg(test)]
mod reg_table_tests {
    use super::*;
    use crate::streams::ugs_registers_at;
    use ujam_ir::NestBuilder;

    fn check_registers(nest: &ujam_ir::LoopNest, loops: &[usize], bound: u32) {
        let space = UnrollSpace::new(nest.depth(), loops, bound);
        for set in UgsSet::partition(nest) {
            let t = reg_table(&set, &space);
            super::assert_table_matches(&t, &format!("registers for {}", set.array()), |u| {
                ugs_registers_at(&set, &space, u, nest.depth()) as i64
            });
        }
        // And the whole-nest query agrees with the analytic evaluator.
        let ct = CostTables::build(nest, &space, 4);
        super::assert_counts_match(
            &space,
            "CostTables registers",
            |u, flat| {
                assert_eq!(ct.registers_flat(flat), ct.registers(u), "flat at {u:?}");
                ct.registers(u)
            },
            |u| streams::replacement_counts_at(nest, &space, u).registers as i64,
        );
    }

    #[test]
    fn stencil_reads_use_the_region_path() {
        // Def-free pairwise merges along the unrolled loop: the closed
        // form applies.
        let nest = NestBuilder::new("st")
            .array("A", &[70, 70])
            .array("B", &[70, 70])
            .loop_("J", 2, 49)
            .loop_("I", 2, 49)
            .stmt("B(I,J) = A(I,J-1) + A(I,J) + A(I,J+1) + A(I-1,J)")
            .build();
        check_registers(&nest, &[0], 6);
    }

    #[test]
    fn reductions_and_defs_fall_back_exactly() {
        let nest = NestBuilder::new("fwd")
            .array("A", &[70, 70])
            .array("B", &[70, 70])
            .loop_("J", 2, 49)
            .loop_("I", 2, 49)
            .stmt("A(I,J) = B(I,J) * 2.0")
            .stmt("B(I,J) = A(I,J-1) + A(I-1,J)")
            .build();
        check_registers(&nest, &[0], 4);
    }

    #[test]
    fn invariant_and_jacobi_cases() {
        let intro = NestBuilder::new("intro")
            .array("A", &[840])
            .array("B", &[64])
            .loop_("J", 1, 840)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        check_registers(&intro, &[0], 6);

        let jacobi = NestBuilder::new("jacobi")
            .array("A", &[52, 52])
            .array("B", &[52, 52])
            .loop_("J", 2, 49)
            .loop_("I", 2, 49)
            .stmt("B(I,J) = 0.25 * (A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1))")
            .build();
        check_registers(&jacobi, &[0], 5);
    }

    #[test]
    fn two_loop_spaces_match() {
        let nest = NestBuilder::new("mm")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .array("C", &[64, 64])
            .loop_("J", 1, 24)
            .loop_("K", 1, 24)
            .loop_("I", 1, 24)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        check_registers(&nest, &[0, 1], 3);
    }
}
