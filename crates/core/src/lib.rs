//! Unroll-and-jam guided by uniformly generated sets — the algorithm of
//! Carr & Guan (MICRO 1997).
//!
//! Unroll-and-jam lowers a loop's *balance* — memory operations (plus cache
//! penalties) per flop — toward the machine's balance, subject to register
//! pressure.  The expensive part is predicting, for every candidate unroll
//! vector `u`, how many memory operations, cache lines, and registers the
//! unrolled loop will need.  Previous approaches either stored read–read
//! *input dependences* (most of the dependence graph; see `ujam-dep`) or
//! materialised every candidate body and re-analysed it (Wolf, Maydan &
//! Chen).  This crate implements the paper's alternative:
//!
//! 1. partition references into uniformly generated sets (`ujam-reuse`),
//! 2. precompute small **tables indexed by copy offset** whose prefix sums
//!    give the number of group-temporal sets ([`gts_table`]), group-spatial
//!    sets ([`gss_table`]), and register-reuse streams ([`rrs_tables`])
//!    after unrolling by any `u` — Figures 2–5 of the paper,
//! 3. evaluate loop balance from those tables ([`balance`]) and search the
//!    whole unroll space for the best legal vector ([`optimize`], §4.5).
//!
//! The brute-force comparator ([`brute`]) and the analytic copy-vector
//! evaluator ([`streams`]) double as correctness oracles: property tests
//! assert `tables == analytic == full-IR-transform` on the paper's loop
//! class.
//!
//! # Architecture
//!
//! The optimizer is a pipeline of named passes over a shared, memoizing
//! [`pipeline::AnalysisCtx`]:
//!
//! ```text
//! SelectLoops ──► BuildTables ──► SearchSpace ──► ApplyTransform
//!       └──────────── all querying one AnalysisCtx ───────────┘
//!            (DepGraph, safety bounds, UGS partition,
//!             locality scores, CostTables — each built ≤ once)
//! ```
//!
//! [`optimize`] and friends are thin wrappers over that sequence and
//! return `Result` — malformed nests yield a
//! [`pipeline::OptimizeError`], never a panic.  [`optimize_batch`] fans
//! a slice of nests out across scoped threads, one context per nest.
//!
//! Every entry point has a `*_traced` variant taking a
//! [`ujam_trace::TraceSink`] that records per-pass timing spans, cache
//! hit/miss counters, and per-candidate decision provenance (why each
//! unroll vector won, was pruned, or was dominated) without changing
//! the optimization result.
//!
//! # Example
//!
//! ```
//! use ujam_ir::NestBuilder;
//! use ujam_machine::MachineModel;
//! use ujam_core::optimize;
//!
//! // The paper's §3.3 example: DO J; DO I; A(J) = A(J) + B(I).
//! let nest = NestBuilder::new("intro")
//!     .array("A", &[512]).array("B", &[512])
//!     .loop_("J", 1, 512).loop_("I", 1, 512)
//!     .stmt("A(J) = A(J) + B(I)")
//!     .build();
//! let plan = optimize(&nest, &MachineModel::dec_alpha()).expect("valid nest");
//! // Unrolling J improves balance: the optimizer picks a non-trivial u.
//! assert!(plan.unroll[0] >= 1);
//! assert!(plan.predicted.balance <= 1.0);
//! ```
//!
//! Batches go through [`optimize_batch`]:
//!
//! ```
//! use ujam_ir::NestBuilder;
//! use ujam_machine::MachineModel;
//! use ujam_core::optimize_batch;
//!
//! let nests: Vec<_> = (0..3).map(|k| {
//!     NestBuilder::new(&format!("n{k}"))
//!         .array("A", &[242]).array("B", &[242])
//!         .loop_("J", 1, 240).loop_("I", 1, 240)
//!         .stmt("A(J) = A(J) + B(I)")
//!         .build()
//! }).collect();
//! let plans = optimize_batch(&nests, &MachineModel::dec_alpha());
//! assert!(plans.iter().all(|p| p.is_ok()));
//! ```

// `deny` rather than `forbid`: the `simd` module (and only it) opts
// back in with a scoped `#[allow(unsafe_code)]` for its
// `core::arch::x86_64` kernels.  Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod brute;
mod costmodel;
mod driver;
pub mod pipeline;
pub mod simd;
mod space;
pub mod streams;
pub mod tables;

pub use balance::{loop_balance, BalanceInputs};
pub use costmodel::{CostModel, CostModelKind, CostModelStats};
pub use driver::{
    optimize, optimize_cancellable, optimize_configured, optimize_costed, optimize_in_space,
    optimize_in_space_with, optimize_observed, optimize_traced, optimize_with, BalanceModel,
    Optimized, Prediction, SearchConfig,
};
pub use pipeline::{
    optimize_batch, optimize_batch_traced, optimize_batch_traced_with_workers, optimize_batch_with,
    optimize_batch_with_workers, parallel_map_indexed, search_tables, AnalysisCtx, CancelToken,
    CtxStats, CtxTimings, OptimizeError,
};
pub use space::{OffsetIter, Table, UnrollSpace};
pub use tables::{gss_table, gts_table, rrs_tables, CostTables, RrsTables};
