//! Pluggable cache-cost backends for the unroll search.
//!
//! The paper's Eq. 1 predicts the cache lines a candidate fetches per
//! iteration *analytically*, from the uniformly generated sets.  The
//! reuse-distance profiler (`ujam_sim::profile_nest`) *measures* the
//! same quantity by running the candidate under the interpreter's
//! memory tap.  A [`CostModel`] abstracts over the two (plus a blend),
//! so the search can be driven by the model, by measurement, or by
//! their average — and the divergence between them becomes a reported,
//! first-class quantity instead of an assumption.
//!
//! The backend only replaces the `cache_lines` input of the balance
//! computation; flops, memory ops and registers always come from the
//! analytic tables (profiling does not observe them any better).

use std::collections::HashMap;
use std::time::Instant;

use ujam_ir::transform::unroll_and_jam;
use ujam_ir::LoopNest;
use ujam_machine::MachineModel;
use ujam_sim::profile_nest;

/// Which cache-cost backend scores candidates during the search.
///
/// [`CostModelKind::Analytic`] is the default everywhere and leaves the
/// search bitwise-identical to the classic pipeline; the other two run
/// the reuse-distance profiler per candidate and are materially slower
/// (full interpretation of the nest) — intended for offline studies,
/// not the serving hot path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CostModelKind {
    /// The paper's Eq. 1 line counts from the precomputed tables.
    #[default]
    Analytic,
    /// Measured set-associative misses per iteration from the
    /// reuse-distance profiler.
    Profiled,
    /// The arithmetic mean of the two — a hedge when neither is
    /// trusted alone.
    Blended,
}

impl CostModelKind {
    /// Parses the wire/CLI spelling (`analytic`, `profiled`,
    /// `blended`).
    pub fn parse(s: &str) -> Option<CostModelKind> {
        match s {
            "analytic" => Some(CostModelKind::Analytic),
            "profiled" => Some(CostModelKind::Profiled),
            "blended" => Some(CostModelKind::Blended),
            _ => None,
        }
    }

    /// The canonical spelling accepted by [`CostModelKind::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            CostModelKind::Analytic => "analytic",
            CostModelKind::Profiled => "profiled",
            CostModelKind::Blended => "blended",
        }
    }

    /// Builds the backend for this kind.  `nest` must be the original
    /// (untransformed) nest the search runs over; profiling backends
    /// clone it so they can materialize candidates independently of the
    /// analysis context's borrows.
    pub fn backend(&self, nest: &LoopNest, machine: &MachineModel) -> Box<dyn CostModel> {
        self.backend_sized(nest, machine, 0)
    }

    /// [`CostModelKind::backend`] with the candidate-space size known up
    /// front: profiling backends then memoize in a dense flat-indexed
    /// array (one `f64` per candidate, NaN = unmeasured) instead of
    /// hashing the unroll vector per query.
    pub fn backend_sized(
        &self,
        nest: &LoopNest,
        machine: &MachineModel,
        candidates: usize,
    ) -> Box<dyn CostModel> {
        match self {
            CostModelKind::Analytic => Box::new(Analytic),
            CostModelKind::Profiled => Box::new(Profiled::new(nest, machine, candidates)),
            CostModelKind::Blended => Box::new(Blended(Profiled::new(nest, machine, candidates))),
        }
    }
}

/// Work a cost backend performed, for observability: zero across the
/// board for [`CostModelKind::Analytic`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostModelStats {
    /// Candidates actually profiled (memo misses).
    pub profiles: u64,
    /// Total tapped memory accesses across those profiles.
    pub accesses: u64,
    /// Wall time spent profiling, in nanoseconds.
    pub profile_ns: u64,
}

/// A cache-cost backend: given a candidate's full unroll vector and the
/// analytic Eq. 1 line count, produce the cache-lines-per-iteration
/// figure the balance computation should use.
pub trait CostModel {
    /// The backend's canonical name (matches [`CostModelKind::as_str`]).
    fn name(&self) -> &'static str;

    /// Cache lines fetched per (unrolled) innermost iteration for the
    /// candidate with full per-nest-loop unroll vector `full_u`.
    /// `analytic_lines` is the Eq. 1 prediction for the same candidate.
    fn lines_per_iter(&mut self, full_u: &[u32], analytic_lines: f64) -> f64;

    /// [`CostModel::lines_per_iter`] keyed by the candidate's flat index
    /// in the search space.  `full_u` builds the full unroll vector
    /// lazily — backends that answer from a memo (or ignore the vector
    /// entirely) never invoke it, so the search's hot path stays
    /// allocation-free.  The default just forwards to the vector form.
    fn lines_per_iter_flat(
        &mut self,
        flat: usize,
        full_u: &mut dyn FnMut() -> Vec<u32>,
        analytic_lines: f64,
    ) -> f64 {
        let _ = flat;
        self.lines_per_iter(&full_u(), analytic_lines)
    }

    /// Profiling work performed so far.
    fn stats(&self) -> CostModelStats;
}

/// Eq. 1 verbatim: the analytic prediction passes through untouched, so
/// a search driven by this backend is bitwise-identical to the classic
/// pipeline.
struct Analytic;

impl CostModel for Analytic {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn lines_per_iter(&mut self, _full_u: &[u32], analytic_lines: f64) -> f64 {
        analytic_lines
    }

    fn lines_per_iter_flat(
        &mut self,
        _flat: usize,
        _full_u: &mut dyn FnMut() -> Vec<u32>,
        analytic_lines: f64,
    ) -> f64 {
        analytic_lines
    }

    fn stats(&self) -> CostModelStats {
        CostModelStats::default()
    }
}

/// Measured misses: materialize the candidate with `unroll_and_jam`
/// (*without* scalar replacement, so the cache sees the full semantic
/// access stream — the same convention as the cycle simulator) and run
/// the reuse profiler against the machine's cache geometry.
///
/// Results are memoized per unroll vector: the search visits each
/// candidate once, but `u = 0` is also queried for the baseline.
struct Profiled {
    nest: LoopNest,
    machine: MachineModel,
    /// Coordinate-keyed memo, the fallback when a query arrives without
    /// a usable flat index (or the backend was built unsized).
    memo: HashMap<Vec<u32>, f64>,
    /// Dense flat-indexed memo (NaN = unmeasured), sized to the search
    /// space by [`CostModelKind::backend_sized`]; empty when unsized.
    /// Measured lines are finite by construction, so NaN is a safe
    /// sentinel.
    flat_memo: Vec<f64>,
    stats: CostModelStats,
}

impl Profiled {
    fn new(nest: &LoopNest, machine: &MachineModel, candidates: usize) -> Profiled {
        Profiled {
            nest: nest.clone(),
            machine: machine.clone(),
            memo: HashMap::new(),
            flat_memo: vec![f64::NAN; candidates],
            stats: CostModelStats::default(),
        }
    }

    /// The un-memoized core: materialize and profile one candidate.
    fn profile(&mut self, full_u: &[u32], analytic_lines: f64) -> f64 {
        let t0 = Instant::now();
        // Candidates reaching the cost query already passed the
        // dependence-safety and divisibility gates, so the transform
        // cannot fail here; fall back to the analytic figure anyway
        // rather than poisoning the search.
        let lines = match unroll_and_jam(&self.nest, full_u) {
            Ok(unrolled) => {
                let report = profile_nest(&unrolled, &self.machine);
                self.stats.profiles += 1;
                self.stats.accesses += report.accesses;
                let iters = unrolled.iterations().max(1) as f64;
                report.sa_misses as f64 / iters
            }
            Err(_) => analytic_lines,
        };
        self.stats.profile_ns += t0.elapsed().as_nanos() as u64;
        lines
    }

    fn measure(&mut self, full_u: &[u32], analytic_lines: f64) -> f64 {
        if let Some(&lines) = self.memo.get(full_u) {
            return lines;
        }
        let lines = self.profile(full_u, analytic_lines);
        self.memo.insert(full_u.to_vec(), lines);
        lines
    }

    fn measure_flat(
        &mut self,
        flat: usize,
        full_u: &mut dyn FnMut() -> Vec<u32>,
        analytic_lines: f64,
    ) -> f64 {
        match self.flat_memo.get(flat) {
            Some(lines) if !lines.is_nan() => *lines,
            Some(_) => {
                let lines = self.profile(&full_u(), analytic_lines);
                self.flat_memo[flat] = lines;
                lines
            }
            // Out of range: the backend was built for a smaller (or no)
            // space; degrade to the coordinate memo.
            None => self.measure(&full_u(), analytic_lines),
        }
    }
}

impl CostModel for Profiled {
    fn name(&self) -> &'static str {
        "profiled"
    }

    fn lines_per_iter(&mut self, full_u: &[u32], analytic_lines: f64) -> f64 {
        self.measure(full_u, analytic_lines)
    }

    fn lines_per_iter_flat(
        &mut self,
        flat: usize,
        full_u: &mut dyn FnMut() -> Vec<u32>,
        analytic_lines: f64,
    ) -> f64 {
        self.measure_flat(flat, full_u, analytic_lines)
    }

    fn stats(&self) -> CostModelStats {
        self.stats
    }
}

/// The mean of [`Profiled`] and the analytic prediction.
struct Blended(Profiled);

impl CostModel for Blended {
    fn name(&self) -> &'static str {
        "blended"
    }

    fn lines_per_iter(&mut self, full_u: &[u32], analytic_lines: f64) -> f64 {
        0.5 * self.0.measure(full_u, analytic_lines) + 0.5 * analytic_lines
    }

    fn lines_per_iter_flat(
        &mut self,
        flat: usize,
        full_u: &mut dyn FnMut() -> Vec<u32>,
        analytic_lines: f64,
    ) -> f64 {
        0.5 * self.0.measure_flat(flat, full_u, analytic_lines) + 0.5 * analytic_lines
    }

    fn stats(&self) -> CostModelStats {
        self.0.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::NestBuilder;

    fn stream() -> LoopNest {
        NestBuilder::new("stream")
            .array("A", &[66])
            .array("B", &[66])
            .loop_("J", 1, 8)
            .loop_("I", 1, 64)
            .stmt("A(I) = A(I) + B(I)")
            .build()
    }

    #[test]
    fn kind_round_trips_through_parse() {
        for kind in [
            CostModelKind::Analytic,
            CostModelKind::Profiled,
            CostModelKind::Blended,
        ] {
            assert_eq!(CostModelKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(CostModelKind::parse("exact"), None);
        assert_eq!(CostModelKind::default(), CostModelKind::Analytic);
    }

    #[test]
    fn analytic_backend_is_the_identity() {
        let nest = stream();
        let machine = MachineModel::dec_alpha();
        let mut b = CostModelKind::Analytic.backend(&nest, &machine);
        assert_eq!(b.lines_per_iter(&[0, 0], 3.25), 3.25);
        assert_eq!(b.stats(), CostModelStats::default());
        assert_eq!(b.name(), "analytic");
    }

    #[test]
    fn profiled_backend_measures_and_memoizes() {
        let nest = stream();
        let machine = MachineModel::dec_alpha();
        let mut b = CostModelKind::Profiled.backend(&nest, &machine);
        let lines = b.lines_per_iter(&[0, 0], 99.0);
        // 64 doubles of A (16 aligned 32-byte lines) + 64 of B (whose
        // guard-layout base lands mid-line: 17 lines), all touched once
        // cold and re-hit on the remaining 7 J sweeps: 33 misses over
        // 512 iterations.
        assert!((lines - 33.0 / 512.0).abs() < 1e-12, "lines = {lines}");
        assert_eq!(b.stats().profiles, 1);
        // Second query hits the memo: no new profile.
        let again = b.lines_per_iter(&[0, 0], 99.0);
        assert_eq!(again, lines);
        assert_eq!(b.stats().profiles, 1);
        assert!(b.stats().accesses > 0);
    }

    #[test]
    fn blended_backend_averages() {
        let nest = stream();
        let machine = MachineModel::dec_alpha();
        let mut p = CostModelKind::Profiled.backend(&nest, &machine);
        let mut b = CostModelKind::Blended.backend(&nest, &machine);
        let measured = p.lines_per_iter(&[0, 0], 1.0);
        let blended = b.lines_per_iter(&[0, 0], 1.0);
        assert!((blended - 0.5 * (measured + 1.0)).abs() < 1e-12);
    }
}
