//! Robustness of the JSON parser against damaged trace documents.
//!
//! The serve daemon and the `--trace=json` consumers both feed
//! machine-generated documents back through [`ujam_trace::json::parse`].
//! A damaged document — truncated mid-stream, or corrupted by a flipped
//! byte — must come back as `Err`, never as a panic, an infinite loop,
//! a stack overflow, or a bogus `Ok`.

use ujam_trace::{json, ExplainRecord, Trace, TraceRecord, Verdict};

/// A trace exercising every record shape the renderer can emit,
/// including strings that need escaping.
fn sample_trace() -> Trace {
    Trace::new(vec![
        TraceRecord::span("dmxpy", "select-loops", 1_234),
        TraceRecord::span("dmxpy", "search-space", 56_789),
        TraceRecord::counter("dmxpy", "sum.queries", 42),
        TraceRecord::counter("dmxpy", "serve.cache.hit", 7),
        TraceRecord::event("dmxpy", "hostile \"quoted\" \\ and control \u{1} text"),
        TraceRecord::Explain(ExplainRecord {
            nest: "dmxpy".to_string(),
            pass: "search-space".to_string(),
            u: vec![3, 0],
            beta: Some(1.5),
            beta_m: 1.0,
            registers: Some(12),
            verdict: Verdict::Won,
        }),
        TraceRecord::Explain(ExplainRecord {
            nest: "dmxpy".to_string(),
            pass: "search-space".to_string(),
            u: vec![7, 0],
            beta: None,
            beta_m: 1.0,
            registers: None,
            verdict: Verdict::PrunedDivisibility,
        }),
    ])
}

#[test]
fn renderer_output_round_trips_through_the_parser() {
    let t = sample_trace();
    let doc = json::parse(&t.render_json()).expect("renderer emits valid JSON");
    for key in ["spans", "counters", "events", "explain"] {
        assert!(
            doc.get(key).and_then(json::Value::as_array).is_some(),
            "missing {key} array"
        );
    }
    let spans = doc.get("spans").and_then(json::Value::as_array).unwrap();
    assert_eq!(spans.len(), 2);
    // The hostile event text survives escaping and parses back intact.
    let events = doc.get("events").and_then(json::Value::as_array).unwrap();
    let message = events[0]
        .get("message")
        .and_then(json::Value::as_str)
        .expect("message string");
    assert_eq!(message, "hostile \"quoted\" \\ and control \u{1} text");
    // The pruned candidate's absent measurements parse back as nulls.
    let explains = doc.get("explain").and_then(json::Value::as_array).unwrap();
    assert_eq!(explains[1].get("beta"), Some(&json::Value::Null));
    assert_eq!(explains[1].get("registers"), Some(&json::Value::Null));
}

#[test]
fn every_truncation_of_a_rendered_trace_is_an_error_not_a_panic() {
    let doc = sample_trace().render_json();
    let doc = doc.trim_end();
    for len in 0..doc.len() {
        if !doc.is_char_boundary(len) {
            continue;
        }
        assert!(
            json::parse(&doc[..len]).is_err(),
            "prefix of {len} bytes parsed as a complete document"
        );
    }
}

#[test]
fn single_byte_mutations_never_panic_or_hang() {
    let doc = sample_trace().render_json();
    let bytes = doc.as_bytes();
    // Swap every position for a handful of hostile bytes; whatever
    // results must come back as Ok or Err — completing the sweep at all
    // is the no-panic/no-hang assertion.
    let (mut accepted, mut rejected) = (0usize, 0usize);
    for pos in 0..bytes.len() {
        for evil in [b'"', b'\\', b'{', b']', b':', 0x00, b'9'] {
            if bytes[pos] == evil {
                continue;
            }
            let mut mutated = bytes.to_vec();
            mutated[pos] = evil;
            let Ok(text) = String::from_utf8(mutated) else {
                continue;
            };
            match json::parse(&text) {
                Ok(_) => accepted += 1,
                Err(_) => rejected += 1,
            }
        }
    }
    // Sanity: the sweep exercised both paths (a digit swapped for
    // another digit stays valid; structural damage must not).
    assert!(accepted > 0, "no mutation stayed valid");
    assert!(
        rejected > accepted,
        "most mutations must be rejected ({rejected} vs {accepted})"
    );
}

#[test]
fn hostile_non_json_inputs_are_errors() {
    for input in [
        "",
        " ",
        "null extra",
        "{\"a\":}",
        "{\"a\":1,}",
        "[1,2",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"bad unicode \\uZZZZ\"",
        "\"surrogate \\ud800\"",
        "{\"missing\":1 \"comma\":2}",
        "nul\u{0}l",
        "-",
        "00",
        "01",
        "1.",
        "1e",
        "{]",
        "\u{feff}{}",
    ] {
        assert!(json::parse(input).is_err(), "accepted {input:?}");
    }
}

#[test]
fn pathological_nesting_is_rejected_not_a_stack_overflow() {
    // The parser is recursive descent; without a depth bound, input this
    // deep would crash the daemon rather than answer with an error.
    let depth = 50_000;
    let mut doc = "[".repeat(depth);
    doc.push_str(&"]".repeat(depth));
    let err = json::parse(&doc).expect_err("pathological nesting rejected");
    assert!(err.contains("nested too deeply"), "{err}");

    // Sane nesting (far deeper than any real trace) still parses.
    let depth = 64;
    let mut doc = "[".repeat(depth);
    doc.push_str(&"]".repeat(depth));
    json::parse(&doc).expect("reasonable nesting accepted");
}
