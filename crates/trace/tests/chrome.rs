//! Chrome trace-event export: RFC 8259 validity (via the in-tree strict
//! parser) and span round-tripping from a [`CollectingSink`] fixture.

use ujam_trace::json::{self, Value};
use ujam_trace::{ChromeTraceRenderer, CollectingSink, TraceRecord, TraceSink};

/// A realistic collected trace: two nests, the four standard passes on
/// one and a partial pipeline on the other, with counters and events
/// interleaved the way the real pipeline emits them (the renderer must
/// ignore everything that is not a span).
fn fixture() -> ujam_trace::Trace {
    let sink = CollectingSink::new();
    for (pass, nanos) in [
        ("select-loops", 12_345),
        ("build-tables", 456_789),
        ("search-space", 1_234_567),
        ("apply-transform", 89_012),
    ] {
        sink.record(TraceRecord::span("dmxpy1", pass, nanos));
        sink.record(TraceRecord::counter("dmxpy1", "ugs.hit", 1));
    }
    sink.record(TraceRecord::event("dmxpy1", "selected loops [0]"));
    sink.record(TraceRecord::span("mm\"quoted", "select-loops", 999));
    sink.take()
}

#[test]
fn chrome_output_is_rfc8259_valid() {
    let trace = fixture();
    let doc = ChromeTraceRenderer::render(&trace);
    let v = json::parse(&doc).expect("strict parse accepts the document");
    assert!(v.as_array().is_some(), "top level is a bare JSON array");
}

#[test]
fn complete_event_count_equals_collected_span_count() {
    let trace = fixture();
    let doc = ChromeTraceRenderer::render(&trace);
    let v = json::parse(&doc).expect("valid");
    let complete = v
        .as_array()
        .expect("array")
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .count();
    assert_eq!(complete, trace.spans().count());
}

#[test]
fn span_names_and_durations_round_trip() {
    let trace = fixture();
    let doc = ChromeTraceRenderer::render(&trace);
    let v = json::parse(&doc).expect("valid");
    let events = v.as_array().expect("array");
    let xs: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    // The X events appear in span emission order; `dur` is µs, spans
    // are ns, and every fixture duration is exactly representable.
    for (event, (_, name, nanos)) in xs.iter().zip(trace.spans()) {
        assert_eq!(event.get("name").and_then(Value::as_str), Some(name));
        let dur = event.get("dur").and_then(Value::as_f64).expect("dur");
        assert_eq!(dur * 1000.0, nanos as f64, "span {name}");
        assert!(event.get("ts").and_then(Value::as_f64).is_some());
        assert!(event.get("pid").and_then(Value::as_f64).is_some());
        assert!(event.get("tid").and_then(Value::as_f64).is_some());
    }
    // Nest names survive escaping: the quoted nest labels its thread.
    let quoted_meta = events.iter().any(|e| {
        e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                == Some("mm\"quoted")
    });
    assert!(quoted_meta, "escaped nest name round-trips");
}

#[test]
fn events_and_counters_do_not_leak_into_the_timeline() {
    let trace = fixture();
    let doc = ChromeTraceRenderer::render(&trace);
    let v = json::parse(&doc).expect("valid");
    for event in v.as_array().expect("array") {
        let ph = event.get("ph").and_then(Value::as_str).expect("ph");
        assert!(matches!(ph, "X" | "M"), "unexpected phase {ph:?}");
    }
}
