//! In-tree tracing, metrics, and decision provenance for the optimizer
//! pipeline — zero external dependencies.
//!
//! The paper's central claim is *amortization*: the UGS tables are built
//! once per nest and queried across the whole unroll space.  The build
//! counters of `ujam-core`'s `CtxStats` assert that indirectly; this
//! crate makes it observable directly — where time goes per pass, how
//! often each cached analysis is hit, and **why** each candidate unroll
//! vector won or was pruned.
//!
//! Three primitives flow through one [`TraceSink`]:
//!
//! * **spans** — per-pass wall time ([`TraceRecord::Span`]),
//! * **counters** — monotonic increments such as cache hits/misses
//!   ([`TraceRecord::Counter`]; renderers aggregate them by name),
//! * **explain records** — per-candidate decision provenance
//!   ([`ExplainRecord`]): the unroll vector, its balance `β` against the
//!   machine balance `β_M`, its register pressure, and a [`Verdict`].
//!
//! Two sinks ship in-tree: [`NullSink`] (tracing disabled; every record
//! call is a no-op and [`TraceSink::enabled`] lets emitters skip record
//! construction entirely, so the instrumented pipeline stays within
//! noise of an uninstrumented one) and [`CollectingSink`] (thread-safe
//! accumulation, used by `optimize_batch`).  [`Trace`] holds collected
//! records and renders them for humans ([`Trace::render_human`]) or
//! machines ([`Trace::render_json`]); the [`json`] module's std-only
//! parser validates the latter without any external crate.
//!
//! # Example
//!
//! ```
//! use ujam_trace::{CollectingSink, TraceRecord, TraceSink, Verdict};
//!
//! let sink = CollectingSink::new();
//! sink.record(TraceRecord::span("intro", "select-loops", 1_250));
//! sink.record(TraceRecord::counter("intro", "ugs.build", 1));
//! let trace = sink.take();
//! assert_eq!(trace.spans().count(), 1);
//! ujam_trace::json::parse(&trace.render_json()).expect("valid JSON");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
pub mod json;
mod render;
pub mod timeline;

pub use chrome::ChromeTraceRenderer;
pub use timeline::{Anomaly, AnomalyReason, RequestTimeline, TIMELINE_VERSION};

use std::fmt;
use std::sync::Mutex;

/// Why a candidate unroll vector ended up in or out of the plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate minimized `|β − β_M|` (ties: fewest body copies)
    /// and was chosen.  Exactly one candidate per search wins — the
    /// vector the search stage returns.
    Won,
    /// Scalar replacement at this vector needs more floating-point
    /// registers than the machine budgets (§4's register constraint).
    PrunedRegisters,
    /// An unroll factor does not divide its loop's trip count, so the
    /// transformation would need a clean-up loop; the table-driven
    /// search skips such vectors.
    PrunedDivisibility,
    /// Skipped without measurement because a dominated candidate (one
    /// component-wise ≤ this vector) already exceeded the register
    /// budget and the register tables are monotone, so this vector must
    /// exceed it too.  Emitted only by the up-set-pruning table search;
    /// the matching `search.pruned_upset` counter totals them.
    PrunedUpset,
    /// The unrolled body at this vector would exceed the code-size
    /// budget (`copies × statements`, an icache proxy).  Code size is
    /// exactly multiplicative in the unroll factors, so — unlike the
    /// measured register tables — this constraint is monotone by
    /// construction and always safe to up-set-prune on.
    PrunedCodeSize,
    /// The candidate body could not be materialised (brute-force search
    /// only: the transform itself failed for this vector).
    Infeasible,
    /// Evaluated, legal, but beaten by the winner.
    Dominated,
}

impl Verdict {
    /// The stable lower-snake-case wire name (`won`, `pruned_registers`,
    /// `pruned_divisibility`, `pruned_upset`, `pruned_code_size`,
    /// `infeasible`, `dominated`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Won => "won",
            Verdict::PrunedRegisters => "pruned_registers",
            Verdict::PrunedDivisibility => "pruned_divisibility",
            Verdict::PrunedUpset => "pruned_upset",
            Verdict::PrunedCodeSize => "pruned_code_size",
            Verdict::Infeasible => "infeasible",
            Verdict::Dominated => "dominated",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Decision provenance for one candidate unroll vector: everything the
/// search stage knew when it passed verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainRecord {
    /// The nest under optimization.
    pub nest: String,
    /// The search stage that judged the candidate (`search-space` or
    /// `brute-search`).
    pub pass: String,
    /// The candidate's full per-nest-loop unroll vector.
    pub u: Vec<u32>,
    /// Loop balance `β_L(u)`; `None` when the candidate was pruned
    /// before evaluation.
    pub beta: Option<f64>,
    /// The machine balance `β_M` the search steered toward.
    pub beta_m: f64,
    /// Floating-point registers scalar replacement would consume;
    /// `None` when the candidate was pruned before measurement.
    pub registers: Option<i64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// One record emitted through a [`TraceSink`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// A completed wall-time span (one pipeline pass over one nest).
    Span {
        /// The nest the pass ran against.
        nest: String,
        /// The pass name (`select-loops`, `build-tables`, …).
        name: String,
        /// Wall time in nanoseconds.
        nanos: u128,
    },
    /// A monotonic counter increment (for example `ugs.hit`).
    /// Renderers aggregate increments by `(nest, name)`.
    Counter {
        /// The nest the counter belongs to.
        nest: String,
        /// Counter name.
        name: String,
        /// Increment (usually 1).
        value: u64,
    },
    /// A free-form annotation.
    Event {
        /// The nest the event belongs to.
        nest: String,
        /// Message text.
        message: String,
    },
    /// Decision provenance for one candidate unroll vector.
    Explain(ExplainRecord),
}

impl TraceRecord {
    /// Convenience constructor for a [`TraceRecord::Span`].
    pub fn span(nest: &str, name: &str, nanos: u128) -> TraceRecord {
        TraceRecord::Span {
            nest: nest.to_string(),
            name: name.to_string(),
            nanos,
        }
    }

    /// Convenience constructor for a [`TraceRecord::Counter`].
    pub fn counter(nest: &str, name: &str, value: u64) -> TraceRecord {
        TraceRecord::Counter {
            nest: nest.to_string(),
            name: name.to_string(),
            value,
        }
    }

    /// Convenience constructor for a [`TraceRecord::Event`].
    pub fn event(nest: &str, message: &str) -> TraceRecord {
        TraceRecord::Event {
            nest: nest.to_string(),
            message: message.to_string(),
        }
    }

    /// The record with wall-time zeroed — spans carry nondeterministic
    /// durations, so determinism tests (batch trace ≡ concatenated
    /// sequential traces) compare normalized records.
    pub fn without_timing(&self) -> TraceRecord {
        match self {
            TraceRecord::Span { nest, name, .. } => TraceRecord::Span {
                nest: nest.clone(),
                name: name.clone(),
                nanos: 0,
            },
            other => other.clone(),
        }
    }
}

/// Where instrumentation sends its records.
///
/// Implementations must be `Sync`: `optimize_batch` shares one sink
/// across its scoped worker threads.
pub trait TraceSink: Sync {
    /// Whether this sink wants records at all.  Emitters check this
    /// before *constructing* records, so a disabled sink costs neither
    /// allocation nor formatting — the overhead contract [`NullSink`]
    /// compiles down to.
    fn enabled(&self) -> bool;

    /// Accepts one record.
    fn record(&self, record: TraceRecord);
}

/// The disabled sink: reports `enabled() == false` and drops records.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

/// A shared `'static` [`NullSink`] for default (untraced) pipelines.
pub fn null_sink() -> &'static NullSink {
    static NULL: NullSink = NullSink;
    &NULL
}

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _record: TraceRecord) {}
}

/// A thread-safe accumulating sink.
///
/// Records arrive in emission order per thread; `optimize_batch` keeps
/// the overall order deterministic by collecting per-nest traces locally
/// and appending them in input order.
#[derive(Debug, Default)]
pub struct CollectingSink {
    records: Mutex<Vec<TraceRecord>>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Clones out everything recorded so far.
    pub fn trace(&self) -> Trace {
        Trace {
            records: self.lock().clone(),
        }
    }

    /// Drains the sink, returning everything recorded so far.
    pub fn take(&self) -> Trace {
        Trace {
            records: std::mem::take(&mut *self.lock()),
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<TraceRecord>> {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl TraceSink for CollectingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, record: TraceRecord) {
        self.lock().push(record);
    }
}

/// An ordered list of [`TraceRecord`]s with query and rendering helpers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// The records, in emission order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// A trace over the given records.
    pub fn new(records: Vec<TraceRecord>) -> Trace {
        Trace { records }
    }

    /// The spans, in order: `(nest, pass, nanos)`.
    pub fn spans(&self) -> impl Iterator<Item = (&str, &str, u128)> {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Span { nest, name, nanos } => Some((nest.as_str(), name.as_str(), *nanos)),
            _ => None,
        })
    }

    /// The explain records, in order.
    pub fn explains(&self) -> impl Iterator<Item = &ExplainRecord> {
        self.records.iter().filter_map(|r| match r {
            TraceRecord::Explain(e) => Some(e),
            _ => None,
        })
    }

    /// Counter totals aggregated by `(nest, name)`, in first-seen order.
    pub fn counter_totals(&self) -> Vec<(String, String, u64)> {
        let mut totals: Vec<(String, String, u64)> = Vec::new();
        for r in &self.records {
            if let TraceRecord::Counter { nest, name, value } = r {
                match totals.iter_mut().find(|(n, c, _)| n == nest && c == name) {
                    Some((_, _, total)) => *total += value,
                    None => totals.push((nest.clone(), name.clone(), *value)),
                }
            }
        }
        totals
    }

    /// The trace with every span's wall time zeroed, for deterministic
    /// comparison (see [`TraceRecord::without_timing`]).
    pub fn without_timing(&self) -> Trace {
        Trace {
            records: self
                .records
                .iter()
                .map(TraceRecord::without_timing)
                .collect(),
        }
    }

    /// Appends another trace's records after this one's.
    pub fn extend(&mut self, other: Trace) {
        self.records.extend(other.records);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explain(nest: &str, u: &[u32], verdict: Verdict) -> ExplainRecord {
        ExplainRecord {
            nest: nest.to_string(),
            pass: "search-space".to_string(),
            u: u.to_vec(),
            beta: Some(0.75),
            beta_m: 0.5,
            registers: Some(4),
            verdict,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_drops_records() {
        let sink = null_sink();
        assert!(!sink.enabled());
        sink.record(TraceRecord::span("n", "p", 1));
        // Nothing observable: NullSink holds no state by construction.
    }

    #[test]
    fn collecting_sink_accumulates_in_order() {
        let sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.record(TraceRecord::span("a", "select-loops", 10));
        sink.record(TraceRecord::counter("a", "ugs.build", 1));
        sink.record(TraceRecord::counter("a", "ugs.hit", 1));
        sink.record(TraceRecord::counter("a", "ugs.hit", 1));
        assert_eq!(sink.len(), 4);
        let trace = sink.take();
        assert!(sink.is_empty(), "take drains");
        assert_eq!(trace.spans().count(), 1);
        assert_eq!(
            trace.counter_totals(),
            vec![
                ("a".to_string(), "ugs.build".to_string(), 1),
                ("a".to_string(), "ugs.hit".to_string(), 2),
            ]
        );
    }

    #[test]
    fn collecting_sink_is_shareable_across_threads() {
        let sink = CollectingSink::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = &sink;
                scope.spawn(move || {
                    for _ in 0..100 {
                        sink.record(TraceRecord::counter(&format!("n{t}"), "hit", 1));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 400);
        let totals = sink.trace().counter_totals();
        assert_eq!(totals.len(), 4);
        assert!(totals.iter().all(|(_, _, v)| *v == 100));
    }

    #[test]
    fn without_timing_zeroes_only_spans() {
        let t = Trace::new(vec![
            TraceRecord::span("n", "p", 123),
            TraceRecord::counter("n", "c", 7),
            TraceRecord::Explain(explain("n", &[1, 0], Verdict::Won)),
        ]);
        let z = t.without_timing();
        assert_eq!(z.spans().next(), Some(("n", "p", 0)));
        assert_eq!(z.records[1], t.records[1]);
        assert_eq!(z.records[2], t.records[2]);
    }

    #[test]
    fn verdict_wire_names_are_stable() {
        assert_eq!(Verdict::Won.to_string(), "won");
        assert_eq!(Verdict::PrunedRegisters.to_string(), "pruned_registers");
        assert_eq!(
            Verdict::PrunedDivisibility.to_string(),
            "pruned_divisibility"
        );
        assert_eq!(Verdict::PrunedUpset.to_string(), "pruned_upset");
        assert_eq!(Verdict::PrunedCodeSize.to_string(), "pruned_code_size");
        assert_eq!(Verdict::Infeasible.to_string(), "infeasible");
        assert_eq!(Verdict::Dominated.to_string(), "dominated");
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Trace::new(vec![TraceRecord::span("x", "p", 1)]);
        let b = Trace::new(vec![TraceRecord::span("y", "p", 2)]);
        a.extend(b);
        assert_eq!(a.records.len(), 2);
        assert_eq!(a.spans().nth(1), Some(("y", "p", 2)));
    }
}
