//! Human and JSON renderers for a collected [`Trace`].

use crate::json::{write_escaped, write_f64};
use crate::{ExplainRecord, Trace, TraceRecord};
use std::fmt::Write as _;

/// Formats nanoseconds with a unit chosen by magnitude.
pub fn fmt_ns(ns: u128) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.3}"),
        Some(_) => "inf".to_string(),
        None => "-".to_string(),
    }
}

fn fmt_u(u: &[u32]) -> String {
    let mut s = String::from("[");
    for (i, x) in u.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{x}");
    }
    s.push(']');
    s
}

impl Trace {
    /// Renders the spans, aggregated counters, events, and explain
    /// records as aligned, human-readable sections.  Sections with no
    /// records are omitted.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let spans: Vec<_> = self.spans().collect();
        if !spans.is_empty() {
            out.push_str("== trace: pass spans ==\n");
            let _ = writeln!(out, "{:12} {:16} {:>12}", "nest", "pass", "time");
            for (nest, name, nanos) in spans {
                let _ = writeln!(out, "{nest:12} {name:16} {:>12}", fmt_ns(nanos));
            }
        }
        let counters = self.counter_totals();
        if !counters.is_empty() {
            out.push_str("== trace: counters ==\n");
            let _ = writeln!(out, "{:12} {:24} {:>8}", "nest", "counter", "total");
            for (nest, name, value) in counters {
                let _ = writeln!(out, "{nest:12} {name:24} {value:>8}");
            }
        }
        let events: Vec<_> = self
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Event { nest, message } => Some((nest, message)),
                _ => None,
            })
            .collect();
        if !events.is_empty() {
            out.push_str("== trace: events ==\n");
            for (nest, message) in events {
                let _ = writeln!(out, "{nest:12} {message}");
            }
        }
        let explains: Vec<_> = self.explains().collect();
        if !explains.is_empty() {
            out.push_str(&render_explain_table(&explains));
        }
        out
    }

    /// Renders the per-candidate provenance table alone (the `--explain`
    /// view), without the span/counter sections.
    pub fn render_explain_human(&self) -> String {
        let explains: Vec<_> = self.explains().collect();
        if explains.is_empty() {
            return "no explain records (run a search pass with tracing enabled)\n".to_string();
        }
        render_explain_table(&explains)
    }

    /// Renders the whole trace as one machine-readable JSON document:
    /// `{"spans": [...], "counters": [...], "events": [...],
    /// "explain": [...]}` with counters aggregated by `(nest, name)`.
    /// Non-finite `β` values are emitted as `null` (JSON has no
    /// `Infinity`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        let mut first = true;
        for (nest, name, nanos) in self.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"nest\":");
            write_escaped(&mut out, nest);
            out.push_str(",\"name\":");
            write_escaped(&mut out, name);
            let _ = write!(out, ",\"ns\":{nanos}}}");
        }
        out.push_str("],\"counters\":[");
        let mut first = true;
        for (nest, name, value) in self.counter_totals() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"nest\":");
            write_escaped(&mut out, &nest);
            out.push_str(",\"name\":");
            write_escaped(&mut out, &name);
            let _ = write!(out, ",\"value\":{value}}}");
        }
        out.push_str("],\"events\":[");
        let mut first = true;
        for r in &self.records {
            if let TraceRecord::Event { nest, message } = r {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("{\"nest\":");
                write_escaped(&mut out, nest);
                out.push_str(",\"message\":");
                write_escaped(&mut out, message);
                out.push('}');
            }
        }
        out.push_str("],\"explain\":[");
        let mut first = true;
        for e in self.explains() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"nest\":");
            write_escaped(&mut out, &e.nest);
            out.push_str(",\"pass\":");
            write_escaped(&mut out, &e.pass);
            out.push_str(",\"u\":[");
            for (i, x) in e.u.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{x}");
            }
            out.push_str("],\"beta\":");
            match e.beta {
                Some(b) => write_f64(&mut out, b),
                None => out.push_str("null"),
            }
            out.push_str(",\"beta_m\":");
            write_f64(&mut out, e.beta_m);
            out.push_str(",\"registers\":");
            match e.registers {
                Some(r) => {
                    let _ = write!(out, "{r}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"verdict\":");
            write_escaped(&mut out, e.verdict.as_str());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn render_explain_table(explains: &[&ExplainRecord]) -> String {
    let mut out = String::new();
    // One table per (nest, pass) group, in first-seen order.
    let mut groups: Vec<(&str, &str)> = Vec::new();
    for e in explains {
        if !groups.iter().any(|&(n, p)| n == e.nest && p == e.pass) {
            groups.push((&e.nest, &e.pass));
        }
    }
    for (nest, pass) in groups {
        let rows: Vec<_> = explains
            .iter()
            .filter(|e| e.nest == nest && e.pass == pass)
            .collect();
        let beta_m = rows.first().map_or(f64::NAN, |e| e.beta_m);
        let _ = writeln!(out, "== explain: {nest} ({pass}, β_M = {beta_m:.3}) ==");
        let _ = writeln!(
            out,
            "{:>12} {:>9} {:>9} {:>5}  verdict",
            "u", "β", "β_M", "regs"
        );
        for e in rows {
            let regs = e
                .registers
                .map_or_else(|| "-".to_string(), |r| r.to_string());
            let _ = writeln!(
                out,
                "{:>12} {:>9} {:>9.3} {:>5}  {}",
                fmt_u(&e.u),
                fmt_opt_f64(e.beta),
                e.beta_m,
                regs,
                e.verdict
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, Verdict};

    fn sample() -> Trace {
        Trace::new(vec![
            TraceRecord::span("intro", "select-loops", 1_250),
            TraceRecord::span("intro", "search-space", 2_500_000),
            TraceRecord::counter("intro", "ugs.build", 1),
            TraceRecord::counter("intro", "ugs.hit", 1),
            TraceRecord::counter("intro", "ugs.hit", 1),
            TraceRecord::event("intro", "selected loops [0]"),
            TraceRecord::Explain(ExplainRecord {
                nest: "intro".to_string(),
                pass: "search-space".to_string(),
                u: vec![0, 0],
                beta: Some(21.0),
                beta_m: 0.5,
                registers: Some(1),
                verdict: Verdict::Dominated,
            }),
            TraceRecord::Explain(ExplainRecord {
                nest: "intro".to_string(),
                pass: "search-space".to_string(),
                u: vec![3, 0],
                beta: None,
                beta_m: 0.5,
                registers: None,
                verdict: Verdict::PrunedDivisibility,
            }),
            TraceRecord::Explain(ExplainRecord {
                nest: "intro".to_string(),
                pass: "search-space".to_string(),
                u: vec![4, 0],
                beta: Some(0.625),
                beta_m: 0.5,
                registers: Some(5),
                verdict: Verdict::Won,
            }),
        ])
    }

    #[test]
    fn human_rendering_has_every_section() {
        let text = sample().render_human();
        assert!(text.contains("pass spans"));
        assert!(text.contains("select-loops"));
        assert!(text.contains("2.500 ms"));
        assert!(text.contains("ugs.hit"));
        assert!(text.contains("selected loops [0]"));
        assert!(text.contains("pruned_divisibility"));
        assert!(text.contains("won"));
        // Aggregation: the two ugs.hit increments render as one total.
        assert_eq!(text.matches("ugs.hit").count(), 1);
    }

    #[test]
    fn explain_only_rendering_reports_the_table() {
        let text = sample().render_explain_human();
        assert!(text.contains("== explain: intro (search-space"));
        assert!(text.contains("[4,0]"));
        assert!(!text.contains("pass spans"));
        let empty = Trace::default().render_explain_human();
        assert!(empty.contains("no explain records"));
    }

    #[test]
    fn json_rendering_parses_and_preserves_fields() {
        let doc = sample().render_json();
        let v = json::parse(&doc).expect("valid JSON");
        let spans = v.get("spans").and_then(|s| s.as_array()).expect("spans");
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[1].get("ns").and_then(|n| n.as_f64()),
            Some(2_500_000.0)
        );
        let counters = v
            .get("counters")
            .and_then(|c| c.as_array())
            .expect("counters");
        assert_eq!(counters.len(), 2, "hits aggregated");
        let explain = v
            .get("explain")
            .and_then(|e| e.as_array())
            .expect("explain");
        assert_eq!(explain.len(), 3);
        assert_eq!(
            explain[2].get("verdict").and_then(|s| s.as_str()),
            Some("won")
        );
        assert_eq!(explain[1].get("beta"), Some(&json::Value::Null));
    }

    #[test]
    fn empty_trace_renders_valid_json() {
        let doc = Trace::default().render_json();
        json::parse(&doc).expect("valid JSON");
        assert!(Trace::default().render_human().is_empty());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(900), "900 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
