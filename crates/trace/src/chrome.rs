//! Chrome trace-event export: spans as a timeline loadable in Perfetto
//! or `chrome://tracing` (`ujam optimize --trace=chrome`).
//!
//! The wire format is the Trace Event Format's JSON-array flavour: one
//! complete event (`"ph":"X"`) per span, with `ts`/`dur` in
//! microseconds.  Collected spans carry durations but no start times
//! (the sink records a pass the moment it finishes), so timestamps are
//! synthesized: each nest becomes one "thread" (`tid`) whose spans butt
//! end-to-start in emission order — exactly the sequential pipeline the
//! optimizer ran.  A `"ph":"M"` `thread_name` metadata event labels each
//! tid with its nest, so the timeline reads `select-loops →
//! build-tables → search-space → apply-transform` per nest row.

use std::fmt::Write as _;

use crate::json::{write_escaped, write_f64};
use crate::Trace;

/// Renders a [`Trace`]'s spans as Chrome trace-event JSON.
///
/// # Example
///
/// ```
/// use ujam_trace::{ChromeTraceRenderer, Trace, TraceRecord};
/// let trace = Trace::new(vec![
///     TraceRecord::span("intro", "select-loops", 1_500),
///     TraceRecord::span("intro", "build-tables", 2_500),
/// ]);
/// let doc = ChromeTraceRenderer::render(&trace);
/// let v = ujam_trace::json::parse(&doc).expect("valid JSON");
/// let events = v.as_array().expect("an array");
/// // One "X" event per span, plus one thread_name metadata event.
/// let complete = events.iter().filter(|e| {
///     e.get("ph").and_then(ujam_trace::json::Value::as_str) == Some("X")
/// }).count();
/// assert_eq!(complete, 2);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ChromeTraceRenderer;

impl ChromeTraceRenderer {
    /// Renders every span of `trace` as one JSON array of trace events:
    /// a `thread_name` metadata event per nest (in first-seen order)
    /// followed by one `"ph":"X"` complete event per span, timestamps
    /// synthesized sequentially per nest.
    pub fn render(trace: &Trace) -> String {
        let spans: Vec<(&str, &str, u128)> = trace.spans().collect();
        // First-seen nest order fixes each nest's tid.
        let mut nests: Vec<&str> = Vec::new();
        for &(nest, _, _) in &spans {
            if !nests.contains(&nest) {
                nests.push(nest);
            }
        }
        let tid_of = |nest: &str| nests.iter().position(|&n| n == nest).expect("seen") + 1;

        let mut out = String::from("[");
        let mut first = true;
        for &nest in &nests {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":",
                tid_of(nest)
            );
            write_escaped(&mut out, nest);
            out.push_str("}}");
        }
        // One sequential clock per tid, in microseconds.
        let mut clock = vec![0.0f64; nests.len() + 1];
        for (nest, name, nanos) in spans {
            let tid = tid_of(nest);
            let dur = nanos as f64 / 1000.0;
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            write_escaped(&mut out, name);
            out.push_str(",\"cat\":\"pass\",\"ph\":\"X\",\"ts\":");
            write_f64(&mut out, clock[tid]);
            out.push_str(",\"dur\":");
            write_f64(&mut out, dur);
            let _ = write!(out, ",\"pid\":1,\"tid\":{tid}}}");
            clock[tid] += dur;
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use crate::TraceRecord;

    #[test]
    fn empty_traces_render_an_empty_array() {
        let doc = ChromeTraceRenderer::render(&Trace::default());
        assert_eq!(doc, "[]");
        assert_eq!(json::parse(&doc).expect("valid"), Value::Array(vec![]));
    }

    #[test]
    fn spans_of_one_nest_butt_end_to_start() {
        let trace = Trace::new(vec![
            TraceRecord::span("n", "a", 2_000),
            TraceRecord::span("n", "b", 3_000),
        ]);
        let v = json::parse(&ChromeTraceRenderer::render(&trace)).expect("valid");
        let events = v.as_array().expect("array");
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].get("ts").and_then(Value::as_f64), Some(0.0));
        assert_eq!(xs[0].get("dur").and_then(Value::as_f64), Some(2.0));
        assert_eq!(xs[1].get("ts").and_then(Value::as_f64), Some(2.0));
        assert_eq!(xs[1].get("dur").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn each_nest_gets_its_own_named_thread() {
        let trace = Trace::new(vec![
            TraceRecord::span("alpha", "p", 1_000),
            TraceRecord::span("beta", "p", 1_000),
            TraceRecord::span("alpha", "q", 1_000),
        ]);
        let v = json::parse(&ChromeTraceRenderer::render(&trace)).expect("valid");
        let events = v.as_array().expect("array");
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2, "one thread_name per nest");
        let thread_name = |m: &Value| {
            m.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .map(str::to_owned)
        };
        assert_eq!(thread_name(metas[0]).as_deref(), Some("alpha"));
        assert_eq!(thread_name(metas[1]).as_deref(), Some("beta"));
        // alpha's second span starts where its first ended, on the same tid.
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(xs[0].get("tid"), xs[2].get("tid"));
        assert_ne!(xs[0].get("tid"), xs[1].get("tid"));
        assert_eq!(xs[1].get("ts").and_then(Value::as_f64), Some(0.0));
        assert_eq!(xs[2].get("ts").and_then(Value::as_f64), Some(1.0));
    }
}
