//! A minimal JSON layer — emit-side string escaping plus a strict
//! recursive-descent parser — so `--trace=json` output can be produced
//! *and validated* with nothing but `std` (the build environment has no
//! crates.io registry, so `serde` is not an option).
//!
//! The parser accepts exactly RFC 8259 JSON: it exists to prove the
//! renderer's output is machine-readable, and doubles as the CI smoke
//! check's validator.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.  Keys are sorted (`BTreeMap`); duplicate keys keep the
    /// last value, as most JSON decoders do.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup, `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal, escaping quotes,
/// backslashes, and control characters.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number — or `null` when it is not finite, since
/// JSON has no `Infinity`/`NaN` (a zero-flop loop has infinite balance).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` always keeps a decimal point or exponent for floats,
        // and both forms are valid JSON numbers.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Parses a complete JSON document (one value, surrounded by nothing but
/// whitespace).  The error carries the byte offset of the failure.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Containers deeper than this are rejected: the parser is recursive
/// descent, and untrusted input (the serve daemon reads it off a socket)
/// must not be able to overflow the stack.  Real trace documents nest
/// three levels deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("containers nested too deeply"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the renderer never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let d0 = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > d0
        };
        // Integer part: either a lone 0 or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                digits(self);
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("unrepresentable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_renderer_emits() {
        let v = parse(
            r#"{"spans":[{"nest":"intro","name":"select-loops","ns":1250}],
                "counters":[{"nest":"intro","name":"ugs.hit","value":2}],
                "explain":[{"u":[3,0],"beta":0.625,"beta_m":0.5,
                            "registers":4,"verdict":"won"}]}"#,
        )
        .expect("parses");
        let spans = v.get("spans").and_then(Value::as_array).expect("spans");
        assert_eq!(
            spans[0].get("name").and_then(Value::as_str),
            Some("select-loops")
        );
        let ex = v.get("explain").and_then(Value::as_array).expect("explain");
        assert_eq!(ex[0].get("beta").and_then(Value::as_f64), Some(0.625));
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t bell\u{7} unicode λ";
        let mut doc = String::new();
        write_escaped(&mut doc, nasty);
        assert_eq!(parse(&doc).expect("parses"), Value::String(nasty.into()));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
        s.clear();
        write_f64(&mut s, 0.5);
        assert_eq!(s, "0.5");
        s.clear();
        write_f64(&mut s, 21.0);
        assert_eq!(parse(&s).expect("parses"), Value::Number(21.0));
    }

    #[test]
    fn numbers_parse_in_every_form() {
        for (text, want) in [
            ("0", 0.0),
            ("-0.5", -0.5),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
            ("1250", 1250.0),
        ] {
            assert_eq!(parse(text).expect(text), Value::Number(want));
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01",
            "1.",
            "nul",
            "\"\\q\"",
            "1 2",
            "+1",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let v = parse(r#"{"a":1,"a":2}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(2.0));
    }
}
