//! Per-request lifecycle timelines for the serving daemon.
//!
//! A [`RequestTimeline`] is the flight-recorder record for one request:
//! a trace id, the request's identity and outcome, and a fixed set of
//! monotonic edge stamps — nanosecond offsets from the *accepted* edge
//! (the socket read that produced the frame).  The daemon stamps edges
//! in place as the request moves reactor → queue → worker → reply
//! flush, so recording costs one `Instant::elapsed` per edge and zero
//! allocation on the hot path; rendering happens only when an operator
//! asks for the flight snapshot.
//!
//! Edge order (each optional — a shed request never dequeues, a cache
//! hit never starts analysis):
//!
//! ```text
//! accepted → framed → enqueued → dequeued → cache_probe → cache_done
//!          → analysis_start → analysis_end → flushed
//! ```
//!
//! From the stamps fall the per-edge durations operators actually read:
//! queue wait, cache probe, analysis, and flush.  Anomalous requests
//! (over the slow threshold, shed, deadline-exceeded, frame errors)
//! carry a structured [`Anomaly`] so the always-kept anomaly ring
//! explains *why* each entry is there.

use std::fmt::Write as _;

use crate::json::write_escaped;
use crate::{Trace, TraceRecord};

/// The flight-recorder wire-format version — bump when a field is
/// renamed, removed, or changes meaning (additions are fine).
pub const TIMELINE_VERSION: u32 = 1;

/// Why a request landed in the anomaly ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyReason {
    /// Total latency exceeded the daemon's `--slow-ms` threshold.
    Slow,
    /// The optimizer gave up at the request's `deadline_ms`.
    Deadline,
    /// Admission control rejected the request at a full queue.
    Shed,
    /// The frame never parsed (oversized or invalid UTF-8).
    FrameError,
}

impl AnomalyReason {
    /// The stable lower-snake-case wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            AnomalyReason::Slow => "slow",
            AnomalyReason::Deadline => "deadline",
            AnomalyReason::Shed => "shed",
            AnomalyReason::FrameError => "frame_error",
        }
    }
}

/// The structured reason a timeline was retained in the anomaly ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Anomaly {
    /// The classification.
    pub reason: AnomalyReason,
    /// Free-form context: the threshold crossed, the frame error, or —
    /// for slow analyses — the winning candidate's provenance.
    pub detail: String,
}

impl Anomaly {
    /// An anomaly with the given reason and detail text.
    pub fn new(reason: AnomalyReason, detail: impl Into<String>) -> Anomaly {
        Anomaly {
            reason,
            detail: detail.into(),
        }
    }
}

/// One request's lifecycle record: identity, outcome, and edge stamps
/// as nanosecond offsets from the accepted edge.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestTimeline {
    /// The daemon-assigned trace id (`req_seq`, starting at 1).
    pub trace_id: u64,
    /// The caller-supplied request id (empty when the frame never
    /// parsed).
    pub id: String,
    /// The nest the request named (empty when unknown).
    pub nest: String,
    /// The outcome wire word: `ok`, `error:<kind>`, or `shed`.
    pub outcome: String,
    /// Whether the reply came from the decision cache.
    pub cached: bool,
    /// The winning unroll vector, when analysis ran to a decision.
    pub unroll: Option<Vec<u32>>,
    /// Frame fully decoded (offset ns from accepted).
    pub framed: Option<u64>,
    /// Job pushed onto the worker queue.
    pub enqueued: Option<u64>,
    /// Job picked up by a worker.
    pub dequeued: Option<u64>,
    /// Decision-cache probe started.
    pub cache_probe: Option<u64>,
    /// Decision-cache probe finished.
    pub cache_done: Option<u64>,
    /// Optimizer analysis started (cache miss only).
    pub analysis_start: Option<u64>,
    /// Optimizer analysis finished.
    pub analysis_end: Option<u64>,
    /// Reply bytes fully handed to the socket.
    pub flushed: Option<u64>,
    /// Set when the request was retained in the anomaly ring.
    pub anomaly: Option<Anomaly>,
}

impl RequestTimeline {
    /// An empty timeline for the given trace id: no edges stamped, no
    /// outcome yet.
    pub fn new(trace_id: u64) -> RequestTimeline {
        RequestTimeline {
            trace_id,
            id: String::new(),
            nest: String::new(),
            outcome: String::new(),
            cached: false,
            unroll: None,
            framed: None,
            enqueued: None,
            dequeued: None,
            cache_probe: None,
            cache_done: None,
            analysis_start: None,
            analysis_end: None,
            flushed: None,
            anomaly: None,
        }
    }

    /// Queue wait: dequeued − enqueued.
    pub fn queue_ns(&self) -> Option<u64> {
        Some(self.dequeued?.saturating_sub(self.enqueued?))
    }

    /// Cache probe: cache_done − cache_probe.
    pub fn cache_ns(&self) -> Option<u64> {
        Some(self.cache_done?.saturating_sub(self.cache_probe?))
    }

    /// Analysis: analysis_end − analysis_start (None on a cache hit).
    pub fn analysis_ns(&self) -> Option<u64> {
        Some(self.analysis_end?.saturating_sub(self.analysis_start?))
    }

    /// Flush wait: flushed − the last pre-flush edge (reply ready to
    /// reply on the wire — covers re-sequencing wait and socket
    /// backpressure).
    pub fn flush_ns(&self) -> Option<u64> {
        let ready = self
            .analysis_end
            .or(self.cache_done)
            .or(self.dequeued)
            .or(self.enqueued)
            .or(self.framed)
            .unwrap_or(0);
        Some(self.flushed?.saturating_sub(ready))
    }

    /// Total lifetime: the flushed edge, or the furthest stamped edge
    /// when the reply never flushed (peer gone).
    pub fn total_ns(&self) -> u64 {
        self.flushed
            .or(self.analysis_end)
            .or(self.cache_done)
            .or(self.dequeued)
            .or(self.enqueued)
            .or(self.framed)
            .unwrap_or(0)
    }

    /// Renders this timeline as one strict-JSON object with fixed field
    /// order, so equal timelines render byte-identically.  Unstamped
    /// edges and absent durations render as `null`.
    pub fn render_json(&self) -> String {
        fn opt(out: &mut String, v: Option<u64>) {
            match v {
                Some(v) => {
                    let _ = write!(out, "{v}");
                }
                None => out.push_str("null"),
            }
        }
        let mut out = String::new();
        let _ = write!(out, "{{\"trace_id\":{},\"id\":", self.trace_id);
        write_escaped(&mut out, &self.id);
        out.push_str(",\"nest\":");
        write_escaped(&mut out, &self.nest);
        out.push_str(",\"outcome\":");
        write_escaped(&mut out, &self.outcome);
        let _ = write!(out, ",\"cached\":{}", self.cached);
        out.push_str(",\"unroll\":");
        match &self.unroll {
            Some(u) => {
                out.push('[');
                for (i, f) in u.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{f}");
                }
                out.push(']');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"edges\":{");
        let edges = [
            ("framed", self.framed),
            ("enqueued", self.enqueued),
            ("dequeued", self.dequeued),
            ("cache_probe", self.cache_probe),
            ("cache_done", self.cache_done),
            ("analysis_start", self.analysis_start),
            ("analysis_end", self.analysis_end),
            ("flushed", self.flushed),
        ];
        for (i, (name, v)) in edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":");
            opt(&mut out, *v);
        }
        out.push_str("},\"durations\":{");
        let durations = [
            ("queue_ns", self.queue_ns()),
            ("cache_ns", self.cache_ns()),
            ("analysis_ns", self.analysis_ns()),
            ("flush_ns", self.flush_ns()),
            ("total_ns", Some(self.total_ns())),
        ];
        for (i, (name, v)) in durations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":");
            opt(&mut out, *v);
        }
        out.push_str("},\"anomaly\":");
        match &self.anomaly {
            Some(a) => {
                out.push_str("{\"reason\":");
                write_escaped(&mut out, a.reason.as_str());
                out.push_str(",\"detail\":");
                write_escaped(&mut out, &a.detail);
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Renders one operator-facing line plus an edge breakdown, e.g.
    ///
    /// ```text
    /// #3 id=r3 nest=mm ok (cached) total=1.2ms
    ///    queue=0.1ms cache=0.0ms analysis=-- flush=0.1ms
    /// ```
    pub fn render_human(&self) -> String {
        fn ms(v: Option<u64>) -> String {
            match v {
                Some(v) => format!("{:.2}ms", v as f64 / 1e6),
                None => "--".to_string(),
            }
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "#{} id={} nest={} {}",
            self.trace_id,
            if self.id.is_empty() { "?" } else { &self.id },
            if self.nest.is_empty() {
                "?"
            } else {
                &self.nest
            },
            if self.outcome.is_empty() {
                "?"
            } else {
                &self.outcome
            },
        );
        if self.cached {
            out.push_str(" (cached)");
        }
        if let Some(u) = &self.unroll {
            let parts: Vec<String> = u.iter().map(u32::to_string).collect();
            let _ = write!(out, " u=[{}]", parts.join(","));
        }
        let _ = write!(out, " total={}", ms(Some(self.total_ns())));
        if let Some(a) = &self.anomaly {
            let _ = write!(out, " !{}", a.reason.as_str());
            if !a.detail.is_empty() {
                let _ = write!(out, " ({})", a.detail);
            }
        }
        let _ = write!(
            out,
            "\n   queue={} cache={} analysis={} flush={}",
            ms(self.queue_ns()),
            ms(self.cache_ns()),
            ms(self.analysis_ns()),
            ms(self.flush_ns()),
        );
        out
    }

    /// The timeline as span records — one span per stamped phase, under
    /// nest `req-<trace_id>` — so flight-recorder contents feed the
    /// existing [`ChromeTraceRenderer`](crate::ChromeTraceRenderer)
    /// unchanged.
    pub fn to_trace(&self) -> Trace {
        let nest = format!("req-{}", self.trace_id);
        let mut records = Vec::new();
        let mut span = |name: &str, dur: Option<u64>| {
            if let Some(d) = dur {
                records.push(TraceRecord::span(&nest, name, u128::from(d)));
            }
        };
        span("queue", self.queue_ns());
        span("cache-probe", self.cache_ns());
        span("analysis", self.analysis_ns());
        span("flush", self.flush_ns());
        Trace::new(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    fn full() -> RequestTimeline {
        RequestTimeline {
            trace_id: 7,
            id: "r7".to_string(),
            nest: "mm".to_string(),
            outcome: "ok".to_string(),
            cached: false,
            unroll: Some(vec![2, 4]),
            framed: Some(1_000),
            enqueued: Some(2_000),
            dequeued: Some(12_000),
            cache_probe: Some(13_000),
            cache_done: Some(14_000),
            analysis_start: Some(14_000),
            analysis_end: Some(514_000),
            flushed: Some(520_000),
            anomaly: None,
        }
    }

    #[test]
    fn durations_derive_from_edges() {
        let t = full();
        assert_eq!(t.queue_ns(), Some(10_000));
        assert_eq!(t.cache_ns(), Some(1_000));
        assert_eq!(t.analysis_ns(), Some(500_000));
        assert_eq!(t.flush_ns(), Some(6_000));
        assert_eq!(t.total_ns(), 520_000);
    }

    #[test]
    fn missing_edges_yield_missing_durations() {
        let mut t = RequestTimeline::new(1);
        t.framed = Some(500);
        assert_eq!(t.queue_ns(), None);
        assert_eq!(t.analysis_ns(), None);
        assert_eq!(t.total_ns(), 500, "furthest stamped edge");
        // A cache hit: probe edges but no analysis.
        let mut hit = full();
        hit.analysis_start = None;
        hit.analysis_end = None;
        hit.cached = true;
        assert_eq!(hit.analysis_ns(), None);
        assert_eq!(hit.flush_ns(), Some(520_000 - 14_000));
    }

    #[test]
    fn json_rendering_is_pinned_and_parses() {
        let doc = full().render_json();
        let expected = concat!(
            "{\"trace_id\":7,\"id\":\"r7\",\"nest\":\"mm\",\"outcome\":\"ok\",",
            "\"cached\":false,\"unroll\":[2,4],",
            "\"edges\":{\"framed\":1000,\"enqueued\":2000,\"dequeued\":12000,",
            "\"cache_probe\":13000,\"cache_done\":14000,\"analysis_start\":14000,",
            "\"analysis_end\":514000,\"flushed\":520000},",
            "\"durations\":{\"queue_ns\":10000,\"cache_ns\":1000,",
            "\"analysis_ns\":500000,\"flush_ns\":6000,\"total_ns\":520000},",
            "\"anomaly\":null}"
        );
        assert_eq!(doc, expected, "pinned wire bytes");
        let v = json::parse(&doc).expect("strict JSON");
        assert_eq!(
            v.get("durations")
                .and_then(|d| d.get("total_ns"))
                .and_then(Value::as_f64),
            Some(520_000.0)
        );
    }

    #[test]
    fn anomalies_render_with_structured_reason() {
        let mut t = RequestTimeline::new(9);
        t.id = "r9".to_string();
        t.outcome = "error:deadline_exceeded".to_string();
        t.anomaly = Some(Anomaly::new(AnomalyReason::Deadline, "deadline_ms=1"));
        let doc = t.render_json();
        assert!(doc.contains("\"anomaly\":{\"reason\":\"deadline\",\"detail\":\"deadline_ms=1\"}"));
        let human = t.render_human();
        assert!(human.contains("!deadline (deadline_ms=1)"));
        json::parse(&doc).expect("strict JSON");
    }

    #[test]
    fn to_trace_emits_one_span_per_stamped_phase() {
        let spans: Vec<(String, String, u128)> = full()
            .to_trace()
            .spans()
            .map(|(n, p, d)| (n.to_string(), p.to_string(), d))
            .collect();
        assert_eq!(
            spans,
            vec![
                ("req-7".to_string(), "queue".to_string(), 10_000),
                ("req-7".to_string(), "cache-probe".to_string(), 1_000),
                ("req-7".to_string(), "analysis".to_string(), 500_000),
                ("req-7".to_string(), "flush".to_string(), 6_000),
            ]
        );
        // A hit timeline skips the analysis span entirely.
        let mut hit = full();
        hit.analysis_start = None;
        hit.analysis_end = None;
        assert_eq!(hit.to_trace().spans().count(), 3);
    }
}
