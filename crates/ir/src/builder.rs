//! A builder DSL (with a tiny Fortran-expression parser) for loop nests.

use crate::expr::{BinOp, Expr};
use crate::nest::{ArrayDecl, ArrayRef, Loop, LoopNest, Stmt};
use crate::subscript::AffineSub;

/// Incremental builder for a [`LoopNest`].
///
/// The builder accepts statements either as structured values or as Fortran
/// flavoured strings (`"A(I,J) = A(I,J) + B(I)"`), which keeps kernel
/// definitions close to the paper's listings.
///
/// # Example
///
/// ```
/// use ujam_ir::NestBuilder;
/// let nest = NestBuilder::new("dmxpy")
///     .array("Y", &[256])
///     .array("M", &[256, 256])
///     .array("X", &[256])
///     .loop_("J", 1, 256)
///     .loop_("I", 1, 256)
///     .stmt("Y(I) = Y(I) + X(J) * M(I,J)")
///     .build();
/// assert_eq!(nest.flops_per_iter(), 2);
/// ```
#[derive(Debug, Default)]
pub struct NestBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    loops: Vec<Loop>,
    body: Vec<Stmt>,
}

impl NestBuilder {
    /// Starts a nest with a diagnostic name.
    pub fn new(name: &str) -> NestBuilder {
        NestBuilder {
            name: name.to_string(),
            ..NestBuilder::default()
        }
    }

    /// Declares an array (extents in Fortran order: first dim contiguous).
    #[must_use]
    pub fn array(mut self, name: &str, dims: &[i64]) -> NestBuilder {
        self.arrays.push(ArrayDecl::new(name, dims));
        self
    }

    /// Adds the next-inner loop `DO var = lower, upper`.
    #[must_use]
    pub fn loop_(mut self, var: &str, lower: i64, upper: i64) -> NestBuilder {
        self.loops.push(Loop::new(var, lower, upper));
        self
    }

    /// Adds a structured assignment statement.
    #[must_use]
    pub fn assign(mut self, lhs: ArrayRef, rhs: Expr) -> NestBuilder {
        self.body.push(Stmt::assign(lhs, rhs));
        self
    }

    /// Adds an assignment whose right-hand side is parsed from a string.
    ///
    /// # Panics
    ///
    /// Panics on a malformed expression (builder misuse is a programming
    /// error; use [`parse_expr`] directly for fallible parsing).
    #[must_use]
    pub fn assign_expr(mut self, array: &str, dims: Vec<AffineSub>, rhs: &str) -> NestBuilder {
        let rhs = parse_expr(rhs).unwrap_or_else(|e| panic!("bad expression {rhs:?}: {e}"));
        self.body
            .push(Stmt::assign(ArrayRef::new(array, dims), rhs));
        self
    }

    /// Adds a statement parsed from `"lhs = rhs"` form.  The left-hand side
    /// may be an array reference or a bare scalar name.
    ///
    /// # Panics
    ///
    /// Panics on malformed input.
    #[must_use]
    pub fn stmt(mut self, text: &str) -> NestBuilder {
        self.body
            .push(parse_stmt(text).unwrap_or_else(|e| panic!("bad statement {text:?}: {e}")));
        self
    }

    /// Fallible variant of [`NestBuilder::stmt`] for callers handling
    /// untrusted input (e.g. the Fortran front end).
    ///
    /// # Errors
    ///
    /// Returns the statement parser's description of the syntax error.
    pub fn try_stmt(mut self, text: &str) -> Result<NestBuilder, String> {
        self.body.push(parse_stmt(text)?);
        Ok(self)
    }

    /// Finishes and validates the nest.
    ///
    /// # Panics
    ///
    /// Panics if validation fails; see [`NestBuilder::try_build`].
    pub fn build(self) -> LoopNest {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid loop nest: {e}"))
    }

    /// Finishes the nest, reporting validation problems.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found (unbound variables, undeclared
    /// arrays, rank mismatches, duplicate loop variables, empty nest).
    pub fn try_build(self) -> Result<LoopNest, String> {
        if self.loops.is_empty() {
            return Err("nest has no loops".into());
        }
        if self.body.is_empty() {
            return Err("nest has no statements".into());
        }
        let nest = LoopNest::new(&self.name, self.arrays, self.loops, self.body);
        nest.validate()?;
        Ok(nest)
    }
}

/// Parses a Fortran-flavoured floating-point expression.
///
/// Grammar: `+ - * /` with usual precedence, parentheses, numeric literals,
/// scalar identifiers, and array references `NAME(dim, dim, ...)` whose
/// dimensions are affine combinations of loop indices (`I`, `I+2`, `2*J-1`,
/// `2J-1`, `4`).
///
/// # Errors
///
/// Returns a description of the first syntax error.
///
/// # Example
///
/// ```
/// use ujam_ir::parse_expr;
/// let e = parse_expr("A(I,J) + 0.5 * (B(I) - C(2J-1))").unwrap();
/// assert_eq!(e.flops(), 3);
/// ```
pub fn parse_expr(text: &str) -> Result<Expr, String> {
    let mut p = Parser::new(text);
    let e = p.expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(e)
}

/// Parses a full `"lhs = rhs"` statement.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub(crate) fn parse_stmt(text: &str) -> Result<Stmt, String> {
    let eq = text.find('=').ok_or("statement missing '='")?;
    let (lhs_text, rhs_text) = (text[..eq].trim(), text[eq + 1..].trim());
    let rhs = parse_expr(rhs_text)?;
    let mut p = Parser::new(lhs_text);
    p.skip_ws();
    let name = p.ident().ok_or("statement lhs must start with a name")?;
    p.skip_ws();
    if p.peek() == Some('(') {
        let dims = p.subscripts()?;
        p.skip_ws();
        if !p.at_end() {
            return Err("trailing input after lhs reference".into());
        }
        Ok(Stmt::assign(ArrayRef::new(&name, dims), rhs))
    } else if p.at_end() {
        Ok(Stmt::assign_scalar(&name, rhs))
    } else {
        Err("malformed lhs".into())
    }
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { text, pos: 0 }
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.text.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn ident(&mut self) -> Option<String> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_') {
            if self.pos == start && self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return None;
            }
            self.bump();
        }
        (self.pos > start).then(|| self.text[start..self.pos].to_string())
    }

    fn number(&mut self) -> Option<f64> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == '.') {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        self.text[start..self.pos].parse().ok()
    }

    fn integer(&mut self) -> Option<i64> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        self.text[start..self.pos].parse().ok()
    }

    fn expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.term()?;
        loop {
            self.skip_ws();
            let op = match self.peek() {
                Some('+') => BinOp::Add,
                Some('-') => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut lhs = self.factor()?;
        loop {
            self.skip_ws();
            let op = match self.peek() {
                Some('*') => BinOp::Mul,
                Some('/') => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn factor(&mut self) -> Result<Expr, String> {
        self.skip_ws();
        match self.peek() {
            Some('-') => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            Some('(') => {
                self.bump();
                let e = self.expr()?;
                self.skip_ws();
                if self.bump() != Some(')') {
                    return Err("expected ')'".into());
                }
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == '.' => self
                .number()
                .map(Expr::Const)
                .ok_or_else(|| "bad number".into()),
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                let name = self.ident().ok_or("bad identifier")?;
                self.skip_ws();
                if self.peek() == Some('(') {
                    let dims = self.subscripts()?;
                    Ok(Expr::Ref(ArrayRef::new(&name, dims)))
                } else {
                    Ok(Expr::Scalar(name))
                }
            }
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    /// Parses `(dim, dim, ...)` where each dim is an affine combination.
    fn subscripts(&mut self) -> Result<Vec<AffineSub>, String> {
        if self.bump() != Some('(') {
            return Err("expected '('".into());
        }
        let mut dims = Vec::new();
        loop {
            dims.push(self.affine()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(')') => return Ok(dims),
                other => return Err(format!("expected ',' or ')', got {other:?}")),
            }
        }
    }

    /// Parses one affine dimension: signed terms `k`, `I`, `2I`, `2*I`.
    fn affine(&mut self) -> Result<AffineSub, String> {
        let mut terms: Vec<(i64, String)> = Vec::new();
        let mut offset = 0i64;
        let mut sign;
        let mut first = true;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('+') => {
                    self.bump();
                    sign = 1;
                }
                Some('-') => {
                    self.bump();
                    sign = -1;
                }
                _ if first => sign = 1,
                Some(',') | Some(')') => break,
                None => return Err("unterminated subscript".into()),
                other => return Err(format!("unexpected {other:?} in subscript")),
            }
            self.skip_ws();
            if let Some(k) = self.integer() {
                self.skip_ws();
                if self.peek() == Some('*') {
                    self.bump();
                    self.skip_ws();
                }
                if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == '_') {
                    let var = self.ident().ok_or("bad subscript identifier")?;
                    terms.push((sign * k, var));
                } else {
                    offset += sign * k;
                }
            } else if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == '_') {
                let var = self.ident().ok_or("bad subscript identifier")?;
                terms.push((sign, var));
            } else {
                return Err(format!("expected term in subscript at byte {}", self.pos));
            }
            first = false;
            self.skip_ws();
            if !matches!(self.peek(), Some('+') | Some('-')) {
                break;
            }
        }
        let term_refs: Vec<(i64, &str)> = terms.iter().map(|(c, v)| (*c, v.as_str())).collect();
        Ok(AffineSub::from_terms(&term_refs, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::Lhs;
    use crate::subscript::{sub, sub_affine};

    #[test]
    fn parses_simple_refs_and_scalars() {
        let e = parse_expr("A(I) + s").unwrap();
        assert_eq!(e.to_string(), "A(I) + s");
        assert_eq!(e.refs().len(), 1);
    }

    #[test]
    fn parses_affine_subscripts() {
        let e = parse_expr("A(2J-1, I+2, 4)").unwrap();
        let r = e.refs()[0];
        assert_eq!(r.dims()[0], sub_affine(&[(2, "J")], -1));
        assert_eq!(r.dims()[1], sub("I").offset(2));
        assert_eq!(r.dims()[2].constant_part(), 4);
    }

    #[test]
    fn parses_star_form_subscripts() {
        let e = parse_expr("A(2*J - 1)").unwrap();
        assert_eq!(e.refs()[0].dims()[0], sub_affine(&[(2, "J")], -1));
    }

    #[test]
    fn precedence_and_parens() {
        let e = parse_expr("1.0 + 2.0 * 3.0").unwrap();
        assert_eq!(e.flops(), 2);
        assert_eq!(e.to_string(), "1 + 2 * 3");
        let e = parse_expr("(1.0 + 2.0) * 3.0").unwrap();
        assert_eq!(e.to_string(), "(1 + 2) * 3");
    }

    #[test]
    fn unary_negation() {
        let e = parse_expr("-A(I) * B(I)").unwrap();
        assert_eq!(e.flops(), 2);
    }

    #[test]
    fn statement_with_array_lhs() {
        let s = parse_stmt("A(I,J) = A(I,J) + 1.0").unwrap();
        match s.lhs() {
            Lhs::Array(a) => assert_eq!(a.array(), "A"),
            Lhs::Scalar(_) => panic!("expected array lhs"),
        }
    }

    #[test]
    fn statement_with_scalar_lhs() {
        let s = parse_stmt("acc = acc + A(I)").unwrap();
        assert!(matches!(s.lhs(), Lhs::Scalar(n) if n == "acc"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_expr("A(I").is_err());
        assert!(parse_expr("A(I) +").is_err());
        assert!(parse_expr("(A(I)").is_err());
        assert!(parse_expr("A(I) B(J)").is_err());
        assert!(parse_stmt("A(I,J)").is_err());
    }

    #[test]
    fn builder_validates() {
        let err = NestBuilder::new("x")
            .loop_("I", 1, 4)
            .stmt("A(I) = 1.0")
            .try_build()
            .unwrap_err();
        assert!(err.contains("undeclared"));

        assert!(NestBuilder::new("y").try_build().is_err());
    }

    #[test]
    fn builder_round_trip() {
        let nest = NestBuilder::new("mm")
            .array("C", &[64, 64])
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .loop_("J", 1, 64)
            .loop_("K", 1, 64)
            .loop_("I", 1, 64)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        assert_eq!(nest.depth(), 3);
        assert_eq!(nest.refs().len(), 4);
        assert_eq!(nest.flops_per_iter(), 2);
        assert!(nest.is_siv_separable());
    }
}
