//! Loop transformations: unroll-and-jam and scalar replacement.
//!
//! These are the two transformations the paper composes (§3.3): outer-loop
//! unrolling brings reuse into the innermost loop body, and scalar
//! replacement converts that reuse into register references, removing loads
//! and stores.  `ujam-core` *predicts* the effect of these transformations
//! from precomputed tables; this module *performs* them, which makes it both
//! the code generator and the brute-force oracle the predictions are tested
//! against.

mod permute;
mod scalarrep;
mod stripmine;
mod unroll;

pub use permute::permute_loops;
pub use scalarrep::{scalar_replacement, ReplacementStats, ScalarReplaced};
pub use stripmine::{fully_unroll, strip_mine, tile};
pub use unroll::{unroll_and_jam, TransformError};
