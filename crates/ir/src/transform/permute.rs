//! Loop permutation (interchange generalized to any loop order).
//!
//! Because subscripts are stored symbolically (index *names*), permuting a
//! nest's loops needs no subscript rewriting at all — the access matrices
//! `H` simply resolve differently against the new loop order.  Legality is
//! a dependence property and lives in `ujam-dep`
//! (`legal_permutation`); this function performs the mechanical reorder.

use crate::nest::LoopNest;
use crate::transform::TransformError;

/// Reorders the nest's loops: `perm[k]` is the *original* position of the
/// loop that ends up at depth `k` (outermost = 0).
///
/// # Errors
///
/// Returns [`TransformError::BadPermutation`] if `perm` is not a
/// permutation of `0..depth`.
///
/// # Example
///
/// ```
/// use ujam_ir::{NestBuilder, transform::permute_loops};
/// let jik = NestBuilder::new("jik")
///     .array("A", &[8, 8])
///     .loop_("J", 1, 8).loop_("I", 1, 8)
///     .stmt("A(I,J) = A(I,J) * 2.0")
///     .build();
/// let ij = permute_loops(&jik, &[1, 0]).unwrap();
/// assert_eq!(ij.loop_vars(), vec!["I", "J"]);
/// ```
pub fn permute_loops(nest: &LoopNest, perm: &[usize]) -> Result<LoopNest, TransformError> {
    let depth = nest.depth();
    let mut seen = vec![false; depth];
    if perm.len() != depth
        || perm
            .iter()
            .any(|&p| p >= depth || std::mem::replace(&mut seen[p], true))
    {
        return Err(TransformError::BadPermutation {
            depth,
            perm: perm.to_vec(),
        });
    }
    let loops = perm.iter().map(|&p| nest.loops()[p].clone()).collect();
    Ok(LoopNest::new(
        nest.name(),
        nest.arrays().to_vec(),
        loops,
        nest.body().to_vec(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use crate::NestBuilder;

    fn nest3() -> LoopNest {
        NestBuilder::new("mm")
            .array("A", &[10, 10])
            .array("B", &[10, 10])
            .array("C", &[10, 10])
            .loop_("J", 1, 6)
            .loop_("K", 1, 6)
            .loop_("I", 1, 6)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build()
    }

    #[test]
    fn identity_permutation_is_identity() {
        let n = nest3();
        assert_eq!(permute_loops(&n, &[0, 1, 2]).unwrap(), n);
    }

    #[test]
    fn permutation_reorders_loops_only() {
        let n = nest3();
        let p = permute_loops(&n, &[2, 0, 1]).unwrap();
        assert_eq!(p.loop_vars(), vec!["I", "J", "K"]);
        assert_eq!(p.body(), n.body());
    }

    #[test]
    fn fully_permutable_nest_keeps_semantics() {
        // Matmul accumulation is permutation-invariant.
        let n = nest3();
        let orig = execute(&n);
        for perm in [[1, 0, 2], [2, 1, 0], [0, 2, 1], [2, 0, 1]] {
            assert_eq!(execute(&permute_loops(&n, &perm).unwrap()), orig);
        }
    }

    #[test]
    fn bad_permutations_rejected() {
        let n = nest3();
        assert!(permute_loops(&n, &[0, 1]).is_err());
        assert!(permute_loops(&n, &[0, 0, 1]).is_err());
        assert!(permute_loops(&n, &[0, 1, 3]).is_err());
    }
}
