//! Scalar replacement (Callahan–Carr–Kennedy) restricted to innermost-loop
//! reuse, as assumed by the paper's balance model.
//!
//! # Model
//!
//! References to the same array with equal access matrix `H` whose constant
//! vectors differ by an integer multiple of `H`'s innermost column form one
//! *value stream*: they touch the same memory cells, offset by a fixed
//! number of innermost iterations.  Within a stream, references are ordered
//! by *touch time* (which reference sees a given cell first); walking that
//! order, a new *register-reuse set* (RRS) starts at every definition — a
//! def kills the flowing value, so later references read the def's value,
//! not the older one (paper §4.3, Figure 4).
//!
//! The transformation then:
//!
//! * keeps one load per use-led RRS (the *generator*) and replaces every
//!   other use with a register temporary,
//! * forwards stored values (`t = rhs; A(...) = t`) so uses downstream of a
//!   def read the register,
//! * hoists *innermost-invariant* streams entirely out of the loop —
//!   their loads and stores cost nothing per innermost iteration (the
//!   paper's "A(J) can be held in a register"),
//! * emits the register-rotation copies (`t2 = t1; t1 = t0`) that carry
//!   values across iterations.
//!
//! The emitted *body* is steady-state code — what the balance and register
//! models measure (the analysis is asymptotic, matching the paper's model).
//! Execution semantics are nonetheless preserved exactly: the transformation
//! attaches a prologue (priming loads that initialise the rotating
//! registers and invariant temporaries before the first innermost
//! iteration) and an epilogue (the hoisted stores that drain invariant
//! temporaries back to memory) to the nest, which the interpreter runs
//! once per innermost-loop instance.  Neither contributes to
//! [`ReplacementStats`]: their cost amortises to zero per iteration.

use crate::expr::Expr;
use crate::nest::{Lhs, LoopNest, RefId, Stmt};
use std::collections::{BTreeMap, HashMap};
use ujam_linalg::Mat;

/// Counts characterising a scalar-replaced innermost loop body.
///
/// All counts are per innermost iteration of the (possibly unrolled) loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplacementStats {
    /// Array loads remaining in the body.
    pub loads: usize,
    /// Array stores remaining in the body.
    pub stores: usize,
    /// Loads removed by replacement (excluding hoisted invariant loads).
    pub replaced_loads: usize,
    /// Loads belonging to innermost-invariant streams, hoisted out of the
    /// loop (amortised cost ≈ 0 per iteration).
    pub hoisted_loads: usize,
    /// Stores hoisted with their invariant stream.
    pub hoisted_stores: usize,
    /// Floating-point registers needed to hold the replaced values
    /// (the paper's `R(u)`; one per rotating temporary).
    pub registers: usize,
    /// Number of value streams (≈ register-reuse sets before unrolling).
    pub streams: usize,
}

impl ReplacementStats {
    /// Memory operations issued per iteration after replacement — the `M`
    /// of the loop-balance formula (§3.2).
    pub fn memory_ops(&self) -> usize {
        self.loads + self.stores
    }
}

/// Result of scalar replacement: the rewritten nest plus its statistics.
#[derive(Clone, Debug)]
pub struct ScalarReplaced {
    /// The transformed nest: steady-state body plus the priming
    /// prologue and draining epilogue that make it semantics-preserving.
    pub nest: LoopNest,
    /// Counts for the balance model.
    pub stats: ReplacementStats,
}

/// One reference's position within a stream.
#[derive(Clone, Debug)]
struct StreamRef {
    id: RefId,
    /// Touch-time key: iterations *earlier* than the stream's base this
    /// reference touches a fixed cell (larger = earlier).
    dist: i64,
    is_def: bool,
}

/// A group of references touching the same cells, offset along the
/// innermost loop.
#[derive(Clone, Debug)]
struct Stream {
    array: String,
    /// `true` when addresses do not depend on the innermost index.
    invariant: bool,
    /// Refs sorted by (dist descending, textual order ascending).
    refs: Vec<StreamRef>,
}

/// Performs scalar replacement on the innermost loop body.
///
/// # Example
///
/// ```
/// use ujam_ir::{NestBuilder, transform::scalar_replacement};
/// // DO J ; DO I ; A(J) = A(J) + B(I): A(J) is innermost-invariant.
/// let nest = NestBuilder::new("intro")
///     .array("A", &[64]).array("B", &[64])
///     .loop_("J", 1, 64).loop_("I", 1, 64)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let r = scalar_replacement(&nest);
/// assert_eq!(r.stats.loads, 1);   // only B(I)
/// assert_eq!(r.stats.stores, 0);  // A(J) store hoisted
/// assert_eq!(r.stats.registers, 1);
/// ```
pub fn scalar_replacement(nest: &LoopNest) -> ScalarReplaced {
    let streams = build_streams(nest);
    let mut stats = ReplacementStats {
        streams: streams.len(),
        ..ReplacementStats::default()
    };

    let all_refs = nest.refs();
    let aref_of = |id: RefId| {
        all_refs
            .iter()
            .find(|r| r.id == id)
            .expect("stream refs come from nest.refs()")
            .aref
            .clone()
    };
    let inner = &nest.loops()[nest.depth() - 1];
    let inner_var = inner.var().to_string();
    let (inner_lo, inner_step) = (inner.lower(), inner.step());
    // Statements bracketing each innermost-loop instance.  Subscripts pin
    // the innermost variable to a constant via `bind_var`, so they are
    // valid outside the loop.
    let mut prologue: Vec<Stmt> = Vec::new();
    let mut epilogue: Vec<Stmt> = Vec::new();

    // Plan the rewrite: for each RefId, what happens to it.
    #[derive(Clone)]
    enum Action {
        /// Leave untouched.
        Keep,
        /// Use replaced by the named temporary.
        UseTemp(String),
        /// Def forwarded through the named temporary (`t = rhs; A = t`).
        DefForward(String),
        /// Def hoisted: statement becomes a scalar assignment to the temp.
        DefHoist(String),
    }
    let mut plan: HashMap<RefId, Action> = HashMap::new();
    // Rotation copies to append: (dst, src), emitted in dependency order.
    let mut rotations: Vec<(String, String)> = Vec::new();
    // Loads to prepend: (temp, RefId of the generator use).
    let mut gen_loads: Vec<(String, RefId)> = Vec::new();

    let mut temp_idx = 0usize;
    for stream in &streams {
        if stream.invariant {
            // Whole stream lives in one register across the innermost loop.
            let temp = format!("{}_inv{}", stream.array.to_lowercase(), temp_idx);
            temp_idx += 1;
            stats.registers += 1;
            for r in &stream.refs {
                if r.is_def {
                    stats.hoisted_stores += 1;
                    plan.insert(r.id, Action::DefHoist(temp.clone()));
                } else {
                    stats.hoisted_loads += 1;
                    plan.insert(r.id, Action::UseTemp(temp.clone()));
                }
            }
            // Prime the register before the loop and drain it after: the
            // invariant address is the same for every ref in the stream.
            let mut aref = aref_of(stream.refs[0].id);
            for d in aref.dims_mut() {
                d.bind_var(&inner_var, inner_lo);
            }
            prologue.push(Stmt::assign_scalar(&temp, Expr::Ref(aref.clone())));
            if stream.refs.iter().any(|r| r.is_def) {
                epilogue.push(Stmt::assign(aref, Expr::Scalar(temp.clone())));
            }
            continue;
        }

        // Split into RRSs: a def starts a new set.
        let mut sets: Vec<Vec<&StreamRef>> = Vec::new();
        for r in &stream.refs {
            if r.is_def || sets.is_empty() {
                sets.push(vec![r]);
            } else {
                sets.last_mut().expect("just ensured non-empty").push(r);
            }
        }

        for set in sets {
            let leader = set[0];
            let members = &set[1..];
            if members.is_empty() {
                // A lone load or store: nothing to replace.
                plan.insert(leader.id, Action::Keep);
                if leader.is_def {
                    stats.stores += 1;
                } else {
                    stats.loads += 1;
                }
                continue;
            }
            let span =
                (leader.dist - members.iter().map(|m| m.dist).min().expect("non-empty")) as usize;
            let base = format!("{}_t{}", stream.array.to_lowercase(), temp_idx);
            temp_idx += 1;
            stats.registers += span + 1;
            if leader.is_def {
                stats.stores += 1;
                plan.insert(leader.id, Action::DefForward(format!("{base}_0")));
            } else {
                stats.loads += 1;
                gen_loads.push((format!("{base}_0"), leader.id));
                plan.insert(leader.id, Action::UseTemp(format!("{base}_0")));
            }
            for m in members {
                let k = (leader.dist - m.dist) as usize;
                debug_assert!(!m.is_def, "defs always lead their RRS");
                stats.replaced_loads += 1;
                plan.insert(m.id, Action::UseTemp(format!("{base}_{k}")));
            }
            for k in (1..=span).rev() {
                rotations.push((format!("{base}_{k}"), format!("{base}_{}", k - 1)));
            }
            // Prime the rotating registers: at the first iteration the
            // lag-k member reads the cell the generator touches k
            // iterations before the loop starts — load it from memory.
            let leader_aref = aref_of(leader.id);
            for k in 1..=span {
                let mut aref = leader_aref.clone();
                for d in aref.dims_mut() {
                    d.bind_var(&inner_var, inner_lo - k as i64 * inner_step);
                }
                prologue.push(Stmt::assign_scalar(&format!("{base}_{k}"), Expr::Ref(aref)));
            }
        }
    }

    // Rewrite the body according to the plan.
    let mut out = nest.clone();
    let mut new_body: Vec<Stmt> = Vec::new();
    for (s_idx, stmt) in nest.body().iter().enumerate() {
        // Generator loads that must precede this statement.
        for (temp, id) in &gen_loads {
            if id.stmt == s_idx {
                let aref = stmt.refs()[id.pos].0.clone();
                new_body.push(Stmt::assign_scalar(temp, Expr::Ref(aref)));
            }
        }
        let mut stmt = stmt.clone();
        // Uses: walk refs in eval order, applying UseTemp actions.
        let mut pos = 0usize;
        stmt.rhs_mut().replace_refs(&mut |_r| {
            let action = plan.get(&RefId { stmt: s_idx, pos });
            pos += 1;
            match action {
                Some(Action::UseTemp(t)) => Some(t.clone()),
                _ => None,
            }
        });
        // Defs: the LHS is the last ref position.
        let def_pos = pos;
        match plan.get(&RefId {
            stmt: s_idx,
            pos: def_pos,
        }) {
            Some(Action::DefHoist(t)) => {
                let rhs = stmt.rhs().clone();
                new_body.push(Stmt::assign_scalar(t, rhs));
            }
            Some(Action::DefForward(t)) => {
                let rhs = stmt.rhs().clone();
                new_body.push(Stmt::assign_scalar(t, rhs));
                if let Lhs::Array(a) = stmt.lhs() {
                    new_body.push(Stmt::assign(a.clone(), Expr::Scalar(t.clone())));
                }
            }
            _ => new_body.push(stmt),
        }
    }
    for (dst, src) in rotations {
        new_body.push(Stmt::assign_scalar(&dst, Expr::Scalar(src)));
    }
    *out.body_mut() = new_body;
    out.prologue_mut().extend(prologue);
    out.epilogue_mut().extend(epilogue);

    ScalarReplaced { nest: out, stats }
}

/// Groups the nest's references into innermost value streams.
fn build_streams(nest: &LoopNest) -> Vec<Stream> {
    let vars = nest.loop_vars();
    let depth = nest.depth();
    let refs = nest.refs();

    // Key streams by (array, H); then split by non-inner-column residue.
    struct Raw {
        id: RefId,
        c: Vec<i64>,
        is_def: bool,
    }
    let mut by_ugs: BTreeMap<(String, Vec<i64>), (Mat, Vec<Raw>)> = BTreeMap::new();
    for r in &refs {
        let (h, c) = r.aref.access_matrix(&vars);
        let key = (
            r.aref.array().to_string(),
            h.iter_rows().flatten().copied().collect::<Vec<i64>>(),
        );
        by_ugs
            .entry(key)
            .or_insert_with(|| (h, Vec::new()))
            .1
            .push(Raw {
                id: r.id,
                c,
                is_def: r.is_def,
            });
    }

    let mut streams = Vec::new();
    for ((array, _), (h, raws)) in by_ugs {
        let inner_col: Vec<i64> = h.col(depth - 1);
        let invariant = inner_col.iter().all(|&x| x == 0);
        // Partition raws into streams: two refs are in the same stream iff
        // c1 - c2 = d * inner_col for an integer d.
        type StreamGroup = (Vec<i64>, Vec<(Raw, i64)>);
        let mut groups: Vec<StreamGroup> = Vec::new();
        'raws: for raw in raws {
            for (base_c, members) in groups.iter_mut() {
                if let Some(d) = inner_distance(&raw.c, base_c, &inner_col) {
                    members.push((raw, d));
                    continue 'raws;
                }
            }
            groups.push((raw.c.clone(), vec![(raw, 0)]));
        }
        for (_, mut members) in groups {
            // Sort by touch time: larger d touches a given cell earlier.
            members.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.id.cmp(&b.0.id)));
            streams.push(Stream {
                array: array.clone(),
                invariant,
                refs: members
                    .into_iter()
                    .map(|(raw, d)| StreamRef {
                        id: raw.id,
                        dist: d,
                        is_def: raw.is_def,
                    })
                    .collect(),
            });
        }
    }
    streams
}

/// If `c1 - c2 == d * col` for an integer `d`, returns `d`.
fn inner_distance(c1: &[i64], c2: &[i64], col: &[i64]) -> Option<i64> {
    let mut d: Option<i64> = None;
    for ((&a, &b), &k) in c1.iter().zip(c2).zip(col) {
        let delta = a - b;
        if k == 0 {
            if delta != 0 {
                return None;
            }
        } else {
            if delta % k != 0 {
                return None;
            }
            let cand = delta / k;
            match d {
                None => d = Some(cand),
                Some(prev) if prev != cand => return None,
                Some(_) => {}
            }
        }
    }
    Some(d.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::unroll_and_jam;
    use crate::NestBuilder;

    #[test]
    fn intro_example_matches_paper() {
        // §3.3: A(J) held in a register, B(I) loaded: balance 1 -> M = 1.
        let nest = NestBuilder::new("intro")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("J", 1, 64)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let r = scalar_replacement(&nest);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.stores, 0);
        assert_eq!(r.stats.hoisted_loads, 1);
        assert_eq!(r.stats.hoisted_stores, 1);
        assert_eq!(r.stats.memory_ops(), 1);
        assert_eq!(r.stats.registers, 1);
    }

    #[test]
    fn intro_example_after_unroll() {
        // After unrolling J by 1 (paper §3.3): two flops, one load.
        let nest = NestBuilder::new("intro")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("J", 1, 64)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let u = unroll_and_jam(&nest, &[1, 0]).unwrap();
        let r = scalar_replacement(&u);
        // B(I) appears twice; the second load is replaced.
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.stores, 0);
        assert_eq!(r.stats.replaced_loads, 1);
        assert_eq!(u.flops_per_iter(), 2);
    }

    #[test]
    fn stencil_rotating_registers() {
        // A(I-1) reuses the load of A(I+1) two iterations later: 3 registers.
        let nest = NestBuilder::new("stencil")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("I", 2, 33)
            .stmt("B(I) = A(I+1) + A(I) + A(I-1)")
            .build();
        let r = scalar_replacement(&nest);
        assert_eq!(r.stats.loads, 1, "only A(I+1) loads");
        assert_eq!(r.stats.replaced_loads, 2);
        assert_eq!(r.stats.stores, 1, "B(I) stores");
        assert_eq!(r.stats.registers, 3);
        // Rotation copies appear in the body.
        let text = r.nest.to_string();
        assert!(text.contains("a_t0_2 = a_t0_1"), "{text}");
        assert!(text.contains("a_t0_1 = a_t0_0"), "{text}");
    }

    #[test]
    fn def_forwards_value_to_later_use() {
        // A(I) stored, A(I-1) read next iteration: store forwards, no load.
        let nest = NestBuilder::new("fwd")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("I", 2, 33)
            .stmt("A(I) = B(I) * 2.0")
            .stmt("B(I) = A(I-1)")
            .build();
        let r = scalar_replacement(&nest);
        // Loads: B(I) once (its own stream: B(I) use then B(I) def -> the
        // def kills; use leads its own RRS = 1 load). A(I-1) replaced.
        assert_eq!(r.stats.replaced_loads, 1);
        assert_eq!(r.stats.stores, 2); // A(I) and B(I) stores remain
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.registers, 2); // A stream spans 1 -> 2 regs
    }

    #[test]
    fn anti_direction_use_still_loads() {
        // Use A(I+1) reads cells before the def A(I) writes them: the use
        // keeps its load, the store stays.
        let nest = NestBuilder::new("anti")
            .array("A", &[64])
            .loop_("I", 1, 32)
            .stmt("A(I) = A(I+1) * 0.5")
            .build();
        let r = scalar_replacement(&nest);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.stores, 1);
        assert_eq!(r.stats.replaced_loads, 0);
    }

    #[test]
    fn same_iteration_duplicate_loads_collapse() {
        let nest = NestBuilder::new("dup")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("I", 1, 32)
            .stmt("B(I) = A(I) * A(I)")
            .build();
        let r = scalar_replacement(&nest);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.replaced_loads, 1);
        assert_eq!(r.stats.registers, 1);
    }

    #[test]
    fn distinct_streams_do_not_interfere() {
        // A(I) and A(I+N-ish offset in another dimension) are different
        // streams; B column accesses differ by outer index only.
        let nest = NestBuilder::new("cols")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .loop_("J", 1, 16)
            .loop_("I", 1, 16)
            .stmt("A(I,J) = B(I,J) + B(I,J+1)")
            .build();
        let r = scalar_replacement(&nest);
        // B(I,J) and B(I,J+1) differ in the non-inner dimension: separate
        // streams, both load; the reuse between them is outer-loop reuse,
        // which only unroll-and-jam can expose.
        assert_eq!(r.stats.loads, 2);
        assert_eq!(r.stats.stores, 1);
        assert_eq!(r.stats.replaced_loads, 0);
        // After unrolling J by 1, B(I,J+1) merges with the copy B(I,J+1):
        let u = unroll_and_jam(&nest, &[1, 0]).unwrap();
        let r = scalar_replacement(&u);
        assert_eq!(r.stats.loads, 3); // B(I,J), B(I,J+1)=shared, B(I,J+2)
        assert_eq!(r.stats.replaced_loads, 1);
    }

    #[test]
    fn strided_stream_distance_uses_coefficient() {
        let nest = NestBuilder::new("stride")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("I", 2, 33)
            .stmt("B(I) = A(2I) + A(2I-2)")
            .build();
        let r = scalar_replacement(&nest);
        // Distance (2)/(2) = 1 iteration: replaced with 2 registers.
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.replaced_loads, 1);
        assert_eq!(r.stats.registers, 2);

        // Odd offset never coincides: two independent loads.
        let nest2 = NestBuilder::new("stride2")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("I", 2, 33)
            .stmt("B(I) = A(2I) + A(2I-1)")
            .build();
        let r2 = scalar_replacement(&nest2);
        assert_eq!(r2.stats.loads, 2);
        assert_eq!(r2.stats.replaced_loads, 0);
    }

    #[test]
    fn stats_match_transformed_body_counts() {
        let nest = NestBuilder::new("mixed")
            .array("A", &[64])
            .array("B", &[64])
            .array("C", &[64])
            .loop_("J", 1, 8)
            .loop_("I", 2, 33)
            .stmt("A(I) = B(I) + B(I-1) + C(J)")
            .stmt("C(J) = A(I) + A(I-1)")
            .build();
        let r = scalar_replacement(&nest);
        // Recount from the transformed body.
        let mut loads = 0;
        let mut stores = 0;
        for stmt in r.nest.body() {
            for (_, is_def) in stmt.refs() {
                if is_def {
                    stores += 1;
                } else {
                    loads += 1;
                }
            }
        }
        assert_eq!(loads, r.stats.loads, "body: {}", r.nest);
        assert_eq!(stores, r.stats.stores, "body: {}", r.nest);
    }
}
