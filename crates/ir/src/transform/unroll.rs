//! Unroll-and-jam (outer-loop unrolling).

use crate::expr::Expr;
use crate::nest::{Lhs, LoopNest, Stmt};
use std::fmt;

/// Why a transformation request was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// The unroll vector's length differs from the nest depth.
    BadUnrollLength {
        /// Nest depth.
        expected: usize,
        /// Supplied vector length.
        got: usize,
    },
    /// The innermost component of an unroll vector must be zero (§4.1: the
    /// innermost loop is never unrolled by unroll-and-jam).
    InnermostUnroll,
    /// A loop's trip count is not divisible by its unroll factor, which
    /// would require a clean-up loop and break perfect nesting.
    TripNotDivisible {
        /// The loop variable.
        var: String,
        /// Its trip count.
        trip: i64,
        /// The requested number of copies (`unroll + 1`).
        copies: i64,
    },
    /// Unrolling a non-unit-step loop is not supported.
    NonUnitStep(String),
    /// The supplied loop order is not a permutation of `0..depth`.
    BadPermutation {
        /// Nest depth.
        depth: usize,
        /// The rejected permutation.
        perm: Vec<usize>,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::BadUnrollLength { expected, got } => {
                write!(
                    f,
                    "unroll vector has length {got}, nest depth is {expected}"
                )
            }
            TransformError::InnermostUnroll => {
                write!(f, "the innermost loop cannot be unrolled by unroll-and-jam")
            }
            TransformError::TripNotDivisible { var, trip, copies } => {
                write!(
                    f,
                    "trip count {trip} of loop {var} not divisible by {copies}"
                )
            }
            TransformError::NonUnitStep(var) => {
                write!(f, "loop {var} already has non-unit step")
            }
            TransformError::BadPermutation { depth, perm } => {
                write!(f, "{perm:?} is not a permutation of 0..{depth}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Applies unroll-and-jam with the given unroll vector.
///
/// `unroll[k]` is the *additional copies* of loop `k` (outermost first), so
/// the paper's `u` — unrolling by `u` yields `u + 1` jammed copies of the
/// body.  The innermost entry must be `0`.  Following §4.1, a copy at
/// offset `u'` rewrites every subscript occurrence of loop index `i_k` to
/// `i_k + u'_k`; the loop step becomes `u_k + 1`.
///
/// Copies are emitted in lexicographic offset order, each copy keeping the
/// original statement order — the "jam" of unroll-and-jam.
///
/// # Errors
///
/// See [`TransformError`] for rejection reasons.  *Safety* (dependence
/// legality) is a property of the nest's dependences and is checked by
/// `ujam-dep`; this function performs the mechanical rewrite.
///
/// # Example
///
/// ```
/// use ujam_ir::{NestBuilder, transform::unroll_and_jam};
/// let nest = NestBuilder::new("intro")
///     .array("A", &[512])
///     .array("B", &[256])
///     .loop_("J", 1, 512)
///     .loop_("I", 1, 256)
///     .stmt("A(J) = A(J) + B(I)")
///     .build();
/// let u = unroll_and_jam(&nest, &[1, 0]).unwrap();
/// assert_eq!(u.loops()[0].step(), 2);
/// assert_eq!(u.body().len(), 2);
/// assert!(u.to_string().contains("A(J+1) = A(J+1) + B(I)"));
/// ```
pub fn unroll_and_jam(nest: &LoopNest, unroll: &[u32]) -> Result<LoopNest, TransformError> {
    if unroll.len() != nest.depth() {
        return Err(TransformError::BadUnrollLength {
            expected: nest.depth(),
            got: unroll.len(),
        });
    }
    if *unroll.last().expect("validated nests have loops") != 0 {
        return Err(TransformError::InnermostUnroll);
    }
    for (l, &u) in nest.loops().iter().zip(unroll) {
        if u == 0 {
            continue;
        }
        if l.step() != 1 {
            return Err(TransformError::NonUnitStep(l.var().to_string()));
        }
        let copies = u as i64 + 1;
        if l.trip_count() % copies != 0 {
            return Err(TransformError::TripNotDivisible {
                var: l.var().to_string(),
                trip: l.trip_count(),
                copies,
            });
        }
    }

    let mut out = nest.clone();
    for (l, &u) in out.loops_mut().iter_mut().zip(unroll) {
        if u > 0 {
            l.set_step(u as i64 + 1);
        }
    }

    let unrolled_vars: Vec<(String, u32)> = nest
        .loops()
        .iter()
        .zip(unroll)
        .filter(|(_, &u)| u > 0)
        .map(|(l, &u)| (l.var().to_string(), u))
        .collect();

    let mut body = Vec::new();
    for offset in offsets(&unrolled_vars) {
        for stmt in nest.body() {
            body.push(shift_stmt(stmt, &offset));
        }
    }
    *out.body_mut() = body;
    Ok(out)
}

/// Lexicographic copy offsets `0..=u` per unrolled variable.
fn offsets(vars: &[(String, u32)]) -> Vec<Vec<(String, i64)>> {
    let mut all = vec![Vec::new()];
    for (var, u) in vars {
        let mut next = Vec::with_capacity(all.len() * (*u as usize + 1));
        for prefix in &all {
            for k in 0..=*u as i64 {
                let mut o = prefix.clone();
                o.push((var.clone(), k));
                next.push(o);
            }
        }
        all = next;
    }
    all
}

fn shift_stmt(stmt: &Stmt, offset: &[(String, i64)]) -> Stmt {
    let mut s = stmt.clone();
    let shift = |e: &mut Expr| {
        e.visit_refs_mut(&mut |r| {
            for dim in r.dims_mut() {
                for (var, delta) in offset {
                    dim.shift_var(var, *delta);
                }
            }
        });
    };
    shift(s.rhs_mut());
    if let Lhs::Array(a) = s.lhs_mut() {
        for dim in a.dims_mut() {
            for (var, delta) in offset {
                dim.shift_var(var, *delta);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use crate::NestBuilder;

    fn intro_nest(n: i64, m: i64) -> LoopNest {
        NestBuilder::new("intro")
            .array("A", &[n + 4])
            .array("B", &[m + 4])
            .loop_("J", 1, n)
            .loop_("I", 1, m)
            .stmt("A(J) = A(J) + B(I)")
            .build()
    }

    #[test]
    fn paper_intro_example() {
        // §3.3: unrolling J by 1 doubles the body and steps J by 2.
        let u = unroll_and_jam(&intro_nest(8, 4), &[1, 0]).unwrap();
        assert_eq!(u.body().len(), 2);
        assert_eq!(u.loops()[0].step(), 2);
        assert_eq!(u.loops()[0].trip_count(), 4);
        let text = u.to_string();
        assert!(text.contains("A(J) = A(J) + B(I)"));
        assert!(text.contains("A(J+1) = A(J+1) + B(I)"));
    }

    #[test]
    fn semantics_preserved_on_intro() {
        let nest = intro_nest(8, 4);
        let orig = execute(&nest);
        for u in 1..4u32 {
            if 8 % (u as i64 + 1) != 0 {
                continue;
            }
            let t = unroll_and_jam(&nest, &[u, 0]).unwrap();
            assert_eq!(execute(&t), orig, "unroll by {u} changed semantics");
        }
    }

    #[test]
    fn two_loop_unroll_semantics() {
        let nest = NestBuilder::new("mm")
            .array("C", &[10, 10])
            .array("A", &[10, 10])
            .array("B", &[10, 10])
            .loop_("J", 1, 4)
            .loop_("K", 1, 4)
            .loop_("I", 1, 4)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        let orig = execute(&nest);
        let t = unroll_and_jam(&nest, &[1, 1, 0]).unwrap();
        assert_eq!(t.body().len(), 4);
        assert_eq!(execute(&t), orig);
    }

    #[test]
    fn offsets_are_lexicographic() {
        let vars = vec![("J".to_string(), 1u32), ("K".to_string(), 1u32)];
        let offs = offsets(&vars);
        let flat: Vec<Vec<i64>> = offs
            .iter()
            .map(|o| o.iter().map(|(_, k)| *k).collect())
            .collect();
        assert_eq!(flat, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn rejects_innermost_unroll() {
        assert_eq!(
            unroll_and_jam(&intro_nest(8, 4), &[0, 1]),
            Err(TransformError::InnermostUnroll)
        );
    }

    #[test]
    fn rejects_bad_length_and_indivisible_trip() {
        assert!(matches!(
            unroll_and_jam(&intro_nest(8, 4), &[1]),
            Err(TransformError::BadUnrollLength { .. })
        ));
        assert!(matches!(
            unroll_and_jam(&intro_nest(9, 4), &[1, 0]),
            Err(TransformError::TripNotDivisible { .. })
        ));
    }

    #[test]
    fn unroll_by_zero_is_identity() {
        let nest = intro_nest(8, 4);
        let t = unroll_and_jam(&nest, &[0, 0]).unwrap();
        assert_eq!(t, nest);
    }

    #[test]
    fn strided_subscripts_shift_by_coefficient() {
        let nest = NestBuilder::new("stride")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("J", 1, 8)
            .loop_("I", 1, 8)
            .stmt("A(2J-1) = B(2J-1) + 1.0")
            .build();
        let t = unroll_and_jam(&nest, &[1, 0]).unwrap();
        // Copy at offset 1 references 2(J+1)-1 = 2J+1.
        assert!(t.to_string().contains("A(2J+1) = B(2J+1) + 1"));
        assert_eq!(execute(&t), execute(&nest));
    }
}
