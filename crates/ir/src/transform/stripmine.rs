//! Strip mining and full unrolling — the decomposition that *defines*
//! unroll-and-jam.
//!
//! Callahan, Cocke & Kennedy describe unroll-and-jam as strip-mine-and-
//! interchange: strip the outer loop into strips of `factor`, move the
//! strip loop innermost, and fully unroll it.  This module provides the
//! two missing pieces ([`strip_mine`], [`fully_unroll`]); composed with
//! [`crate::transform::permute_loops`], the pipeline must produce exactly
//! the body [`crate::transform::unroll_and_jam`] produces — a property the
//! test suite verifies, tying this implementation to the transformation's
//! textbook definition.

use crate::nest::{Lhs, Loop, LoopNest, Stmt};
use crate::subscript::AffineSub;
use crate::transform::TransformError;

/// Strip-mines loop `loop_idx` by `factor`: the loop's step becomes
/// `factor` and a new unit-step strip loop `var§` over `0..factor-1` is
/// inserted immediately inside it, with every subscript use of `var`
/// rewritten to `var + var§`.
///
/// The strip variable is named by appending `_s` to the original.
///
/// # Errors
///
/// Rejects non-unit-step loops, trip counts not divisible by `factor`,
/// factors < 2, and out-of-range loop indices.
///
/// # Example
///
/// ```
/// use ujam_ir::{NestBuilder, transform::strip_mine};
/// let nest = NestBuilder::new("n")
///     .array("A", &[64])
///     .loop_("J", 1, 8)
///     .stmt("A(J) = A(J) * 2.0")
///     .build();
/// let s = strip_mine(&nest, 0, 2).unwrap();
/// assert_eq!(s.depth(), 2);
/// assert!(s.to_string().contains("DO J = 1, 8, 2"));
/// assert!(s.to_string().contains("A(J+J_s) = A(J+J_s) * 2"));
/// ```
pub fn strip_mine(
    nest: &LoopNest,
    loop_idx: usize,
    factor: i64,
) -> Result<LoopNest, TransformError> {
    if loop_idx >= nest.depth() {
        return Err(TransformError::BadUnrollLength {
            expected: nest.depth(),
            got: loop_idx,
        });
    }
    let target = &nest.loops()[loop_idx];
    if factor < 2 {
        return Err(TransformError::TripNotDivisible {
            var: target.var().to_string(),
            trip: target.trip_count(),
            copies: factor,
        });
    }
    if target.step() != 1 {
        return Err(TransformError::NonUnitStep(target.var().to_string()));
    }
    if target.trip_count() % factor != 0 {
        return Err(TransformError::TripNotDivisible {
            var: target.var().to_string(),
            trip: target.trip_count(),
            copies: factor,
        });
    }

    let var = target.var().to_string();
    let strip_var = format!("{var}_s");

    let mut loops: Vec<Loop> = Vec::with_capacity(nest.depth() + 1);
    for (i, l) in nest.loops().iter().enumerate() {
        if i == loop_idx {
            let mut outer = l.clone();
            outer.set_step(factor);
            loops.push(outer);
            loops.push(Loop::new(&strip_var, 0, factor - 1));
        } else {
            loops.push(l.clone());
        }
    }

    let body = nest
        .body()
        .iter()
        .map(|stmt| add_strip_var(stmt, &var, &strip_var))
        .collect();
    Ok(LoopNest::new(
        nest.name(),
        nest.arrays().to_vec(),
        loops,
        body,
    ))
}

/// Rewrites every subscript term `a·var` into `a·var + a·strip`.
fn add_strip_var(stmt: &Stmt, var: &str, strip: &str) -> Stmt {
    let rewrite = |dim: &mut AffineSub| {
        let coef = dim.coef(var);
        if coef != 0 {
            let mut terms: Vec<(i64, String)> =
                dim.terms().map(|(v, c)| (c, v.to_string())).collect();
            terms.push((coef, strip.to_string()));
            let refs: Vec<(i64, &str)> = terms.iter().map(|(c, v)| (*c, v.as_str())).collect();
            *dim = AffineSub::from_terms(&refs, dim.constant_part());
        }
    };
    let mut s = stmt.clone();
    s.rhs_mut().visit_refs_mut(&mut |r| {
        for dim in r.dims_mut() {
            rewrite(dim);
        }
    });
    if let Lhs::Array(a) = s.lhs_mut() {
        for dim in a.dims_mut() {
            rewrite(dim);
        }
    }
    s
}

/// Fully unrolls the loop at `loop_idx` (typically a strip loop): the loop
/// disappears and the body is replicated once per iteration value with the
/// variable substituted.
///
/// # Errors
///
/// Rejects out-of-range indices and loops with more than 64 iterations
/// (full unrolling is for small strip loops, not iteration spaces).
pub fn fully_unroll(nest: &LoopNest, loop_idx: usize) -> Result<LoopNest, TransformError> {
    if loop_idx >= nest.depth() || nest.depth() == 1 {
        return Err(TransformError::BadUnrollLength {
            expected: nest.depth(),
            got: loop_idx,
        });
    }
    let target = &nest.loops()[loop_idx];
    if target.trip_count() > 64 {
        return Err(TransformError::TripNotDivisible {
            var: target.var().to_string(),
            trip: target.trip_count(),
            copies: 64,
        });
    }
    let var = target.var().to_string();
    let values: Vec<i64> = target.values().collect();

    let loops: Vec<Loop> = nest
        .loops()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != loop_idx)
        .map(|(_, l)| l.clone())
        .collect();

    let mut body = Vec::with_capacity(nest.body().len() * values.len());
    for &v in &values {
        for stmt in nest.body() {
            body.push(substitute(stmt, &var, v));
        }
    }
    Ok(LoopNest::new(
        nest.name(),
        nest.arrays().to_vec(),
        loops,
        body,
    ))
}

/// Substitutes `var := value` in every subscript.
fn substitute(stmt: &Stmt, var: &str, value: i64) -> Stmt {
    let rewrite = |dim: &mut AffineSub| {
        let coef = dim.coef(var);
        if coef != 0 {
            let terms: Vec<(i64, String)> = dim
                .terms()
                .filter(|(v, _)| *v != var)
                .map(|(v, c)| (c, v.to_string()))
                .collect();
            let refs: Vec<(i64, &str)> = terms.iter().map(|(c, v)| (*c, v.as_str())).collect();
            *dim = AffineSub::from_terms(&refs, dim.constant_part() + coef * value);
        }
    };
    let mut s = stmt.clone();
    s.rhs_mut().visit_refs_mut(&mut |r| {
        for dim in r.dims_mut() {
            rewrite(dim);
        }
    });
    if let Lhs::Array(a) = s.lhs_mut() {
        for dim in a.dims_mut() {
            rewrite(dim);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use crate::transform::{permute_loops, unroll_and_jam};
    use crate::NestBuilder;

    fn sample() -> LoopNest {
        NestBuilder::new("s")
            .array("A", &[40])
            .array("B", &[44, 44])
            .loop_("J", 1, 12)
            .loop_("I", 1, 12)
            .stmt("A(J) = A(J) + B(I, J+1)")
            .build()
    }

    #[test]
    fn strip_mine_preserves_semantics() {
        let nest = sample();
        let orig = execute(&nest);
        for factor in [2, 3, 4, 6] {
            let s = strip_mine(&nest, 0, factor).unwrap();
            assert_eq!(s.depth(), 3);
            assert_eq!(execute(&s), orig, "factor {factor}");
        }
    }

    #[test]
    fn fully_unroll_preserves_semantics() {
        let nest = sample();
        let orig = execute(&nest);
        let s = strip_mine(&nest, 0, 3).unwrap();
        // Fully unroll the strip loop in place (position 1).
        let u = fully_unroll(&s, 1).unwrap();
        assert_eq!(u.depth(), 2);
        assert_eq!(u.body().len(), 3);
        assert_eq!(execute(&u), orig);
    }

    /// The definitional identity: strip-mine + interchange-to-innermost +
    /// full unroll == unroll-and-jam.
    #[test]
    fn strip_mine_interchange_unroll_equals_unroll_and_jam() {
        let nest = sample();
        for u in [1u32, 2, 3, 5] {
            let factor = u as i64 + 1;
            if nest.loops()[0].trip_count() % factor != 0 {
                continue;
            }
            // Pipeline: strip J, move the strip loop innermost, unroll it.
            let stripped = strip_mine(&nest, 0, factor).unwrap();
            let interchanged = permute_loops(&stripped, &[0, 2, 1]).unwrap();
            let pipeline = fully_unroll(&interchanged, 2).unwrap();
            // Direct unroll-and-jam.
            let jammed = unroll_and_jam(&nest, &[u, 0]).unwrap();
            assert_eq!(
                pipeline, jammed,
                "decomposition differs from unroll-and-jam at u = {u}"
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let nest = sample();
        assert!(strip_mine(&nest, 5, 2).is_err());
        assert!(strip_mine(&nest, 0, 1).is_err());
        assert!(strip_mine(&nest, 0, 5).is_err(), "12 not divisible by 5");
        assert!(fully_unroll(&nest, 7).is_err());
    }

    #[test]
    fn strided_subscripts_strip_correctly() {
        let nest = NestBuilder::new("str")
            .array("A", &[100])
            .array("B", &[100])
            .loop_("J", 1, 8)
            .loop_("I", 1, 8)
            .stmt("A(2J-1) = B(I) + 1.0")
            .build();
        let orig = execute(&nest);
        let s = strip_mine(&nest, 0, 2).unwrap();
        assert!(s.to_string().contains("A(2J+2J_s-1)"), "{s}");
        assert_eq!(execute(&s), orig);
        let u = fully_unroll(&s, 1).unwrap();
        assert_eq!(execute(&u), orig);
        assert_eq!(u, unroll_and_jam(&nest, &[1, 0]).unwrap());
    }
}

/// Tiles the given loops: each `(loop position, tile size)` pair is
/// strip-mined, and all strip loops are moved inside all tile-controlling
/// loops (the standard rectangular tiling shape).
///
/// Positions refer to the *original* nest, outermost first, and must be
/// strictly increasing.  Legality is a dependence property — check the
/// resulting loop order with `ujam_dep::legal_permutation` on the
/// strip-mined nest if the iteration order matters.
///
/// # Errors
///
/// Propagates [`strip_mine`]'s rejections and
/// [`TransformError::BadPermutation`] for unsorted positions.
///
/// # Example
///
/// ```
/// use ujam_ir::{NestBuilder, transform::tile};
/// let mm = NestBuilder::new("mm")
///     .array("A", &[40, 40]).array("B", &[40, 40]).array("C", &[40, 40])
///     .loop_("J", 1, 24).loop_("K", 1, 24).loop_("I", 1, 24)
///     .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
///     .build();
/// let tiled = tile(&mm, &[(0, 8), (1, 8)]).unwrap();
/// assert_eq!(
///     tiled.loop_vars(),
///     vec!["J", "K", "J_s", "K_s", "I"],
/// );
/// ```
pub fn tile(nest: &LoopNest, tiles: &[(usize, i64)]) -> Result<LoopNest, TransformError> {
    if tiles.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err(TransformError::BadPermutation {
            depth: nest.depth(),
            perm: tiles.iter().map(|&(l, _)| l).collect(),
        });
    }
    // Strip-mine innermost-first so earlier positions stay valid.
    let mut out = nest.clone();
    for &(l, size) in tiles.iter().rev() {
        out = strip_mine(&out, l, size)?;
    }
    // After stripping, each tiled loop l sits at position l + (number of
    // earlier strips), with its strip loop immediately after it.
    let depth = out.depth();
    let mut controls = Vec::new();
    let mut strips = Vec::new();
    let mut consumed = vec![false; depth];
    for (k, &(l, _)) in tiles.iter().enumerate() {
        let pos = l + k;
        controls.push(pos);
        strips.push(pos + 1);
        consumed[pos] = true;
        consumed[pos + 1] = true;
    }
    // Permutation: non-tiled outer loops keep their relative order around
    // the control block; strip loops drop just above the untouched inner
    // loops.  The standard shape: [outer-untouched*, controls, strips,
    // inner-untouched*] — with controls hoisted to the front of the region
    // they span.
    let mut perm = Vec::with_capacity(depth);
    let first_control = controls[0];
    for (p, &used) in consumed.iter().enumerate().take(first_control) {
        if !used {
            perm.push(p);
        }
    }
    perm.extend(&controls);
    perm.extend(&strips);
    // Everything else (untouched loops inside the tiled band) stays
    // innermost, in its original relative order.
    for p in 0..depth {
        if !perm.contains(&p) {
            perm.push(p);
        }
    }
    crate::transform::permute_loops(&out, &perm)
}

#[cfg(test)]
mod tile_tests {
    use crate::interp::execute;
    use crate::transform::tile;
    use crate::NestBuilder;

    fn matmul(n: i64) -> crate::LoopNest {
        NestBuilder::new("mm")
            .array("A", &[40, 40])
            .array("B", &[40, 40])
            .array("C", &[40, 40])
            .loop_("J", 1, n)
            .loop_("K", 1, n)
            .loop_("I", 1, n)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build()
    }

    #[test]
    fn tiled_matmul_preserves_semantics() {
        let nest = matmul(24);
        let orig = execute(&nest);
        for tiles in [vec![(0usize, 8i64)], vec![(0, 8), (1, 8)], vec![(1, 4)]] {
            let t = tile(&nest, &tiles).expect("tileable");
            assert_eq!(execute(&t), orig, "tiles {tiles:?}");
        }
    }

    #[test]
    fn tile_shapes_are_canonical() {
        let nest = matmul(24);
        let t = tile(&nest, &[(0, 8), (1, 8)]).unwrap();
        assert_eq!(t.loop_vars(), vec!["J", "K", "J_s", "K_s", "I"]);
        let t = tile(&nest, &[(1, 4)]).unwrap();
        assert_eq!(t.loop_vars(), vec!["J", "K", "K_s", "I"]);
    }

    #[test]
    fn rejects_unsorted_tile_lists() {
        let nest = matmul(24);
        assert!(tile(&nest, &[(1, 4), (0, 4)]).is_err());
        assert!(tile(&nest, &[(0, 4), (0, 4)]).is_err());
    }
}
