//! Floating-point expression trees.

use crate::nest::ArrayRef;
use std::fmt;

/// A binary floating-point operator.
///
/// Each application counts as one floating-point operation in the balance
/// model (§3.2 of the paper); divides are still one issued operation even
/// though they occupy the pipe longer — the scheduler in `ujam-sim` accounts
/// for latency separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// The Fortran spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// A scalar floating-point expression.
///
/// Expressions appear on the right-hand side of [`crate::Stmt`] assignments.
/// Array references are the unit the reuse analysis tracks; scalars are
/// loop-invariant values or the temporaries introduced by scalar
/// replacement (register-resident, so they cost no memory operation).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// An array reference (a load when it appears in an expression).
    Ref(ArrayRef),
    /// A named scalar (register-resident; no memory traffic).
    Scalar(String),
    /// A literal constant.
    Const(f64),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation (costs one FP operation).
    Neg(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Number of floating-point operations in the expression.
    ///
    /// # Example
    ///
    /// ```
    /// use ujam_ir::{parse_expr, Expr};
    /// let e = parse_expr("A(I) * B(I) + 2.0").unwrap();
    /// assert_eq!(e.flops(), 2);
    /// ```
    pub fn flops(&self) -> usize {
        match self {
            Expr::Ref(_) | Expr::Scalar(_) | Expr::Const(_) => 0,
            Expr::Bin(_, l, r) => 1 + l.flops() + r.flops(),
            Expr::Neg(e) => 1 + e.flops(),
        }
    }

    /// All array references in evaluation (left-to-right) order.
    pub fn refs(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Ref(r) => out.push(r),
            Expr::Scalar(_) | Expr::Const(_) => {}
            Expr::Bin(_, l, r) => {
                l.collect_refs(out);
                r.collect_refs(out);
            }
            Expr::Neg(e) => e.collect_refs(out),
        }
    }

    /// Visits every array reference mutably, in evaluation order.
    pub fn visit_refs_mut(&mut self, f: &mut impl FnMut(&mut ArrayRef)) {
        match self {
            Expr::Ref(r) => f(r),
            Expr::Scalar(_) | Expr::Const(_) => {}
            Expr::Bin(_, l, r) => {
                l.visit_refs_mut(f);
                r.visit_refs_mut(f);
            }
            Expr::Neg(e) => e.visit_refs_mut(f),
        }
    }

    /// Replaces array references for which `f` returns `Some(name)` with the
    /// named scalar; used by scalar replacement.
    pub fn replace_refs(&mut self, f: &mut impl FnMut(&ArrayRef) -> Option<String>) {
        match self {
            Expr::Ref(r) => {
                if let Some(name) = f(r) {
                    *self = Expr::Scalar(name);
                }
            }
            Expr::Scalar(_) | Expr::Const(_) => {}
            Expr::Bin(_, l, r) => {
                l.replace_refs(f);
                r.replace_refs(f);
            }
            Expr::Neg(e) => e.replace_refs(f),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Ref(r) => write!(f, "{r}"),
            Expr::Scalar(s) => write!(f, "{s}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Bin(op, l, r) => {
                let needs_l = matches!(**l, Expr::Bin(inner, _, _)
                    if precedence(inner) < precedence(*op));
                let needs_r = matches!(**r, Expr::Bin(inner, _, _)
                    if precedence(inner) <= precedence(*op))
                    && matches!(op, BinOp::Sub | BinOp::Div | BinOp::Mul);
                if needs_l {
                    write!(f, "({l})")?;
                } else {
                    write!(f, "{l}")?;
                }
                write!(f, " {} ", op.symbol())?;
                if needs_r {
                    write!(f, "({r})")
                } else {
                    write!(f, "{r}")
                }
            }
            Expr::Neg(e) => write!(f, "-({e})"),
        }
    }
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul | BinOp::Div => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscript::{sub, subs};

    fn aref(name: &str, var: &str) -> ArrayRef {
        ArrayRef::new(name, subs(&[sub(var)]))
    }

    #[test]
    fn flop_counting() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                Expr::Ref(aref("A", "I")),
                Expr::Ref(aref("B", "I")),
            ),
            Expr::Const(1.0),
        );
        assert_eq!(e.flops(), 2);
        assert_eq!(Expr::Neg(Box::new(Expr::Const(1.0))).flops(), 1);
        assert_eq!(Expr::Scalar("s".into()).flops(), 0);
    }

    #[test]
    fn ref_collection_is_in_eval_order() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::Ref(aref("A", "I")),
            Expr::bin(
                BinOp::Mul,
                Expr::Ref(aref("B", "I")),
                Expr::Ref(aref("C", "I")),
            ),
        );
        let names: Vec<&str> = e.refs().iter().map(|r| r.array()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn replace_refs_substitutes_scalars() {
        let mut e = Expr::bin(
            BinOp::Add,
            Expr::Ref(aref("A", "I")),
            Expr::Ref(aref("B", "I")),
        );
        e.replace_refs(&mut |r| (r.array() == "A").then(|| "t0".to_string()));
        assert_eq!(e.to_string(), "t0 + B(I)");
        assert_eq!(e.refs().len(), 1);
    }

    #[test]
    fn display_parenthesizes_by_precedence() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(
                BinOp::Add,
                Expr::Scalar("a".into()),
                Expr::Scalar("b".into()),
            ),
            Expr::Scalar("c".into()),
        );
        assert_eq!(e.to_string(), "(a + b) * c");
        let e2 = Expr::bin(
            BinOp::Sub,
            Expr::Scalar("a".into()),
            Expr::bin(
                BinOp::Add,
                Expr::Scalar("b".into()),
                Expr::Scalar("c".into()),
            ),
        );
        assert_eq!(e2.to_string(), "a - (b + c)");
    }
}
