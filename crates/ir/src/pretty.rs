//! Fortran-flavoured pretty printing of loop nests.

use crate::nest::{Lhs, LoopNest, Stmt};
use std::fmt;

impl fmt::Display for LoopNest {
    /// Renders the nest in the style of the paper's listings:
    ///
    /// ```text
    ///       DO J = 1, 512, 2
    ///         DO I = 1, 256
    ///           A(J) = A(J) + B(I)
    ///           A(J+1) = A(J+1) + B(I)
    ///         ENDDO
    ///       ENDDO
    /// ```
    ///
    /// A prologue prints between the second-innermost header and the
    /// innermost `DO`; an epilogue prints right after the innermost
    /// `ENDDO` — where the statements actually execute.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (depth, l) in self.loops().iter().enumerate() {
            if depth + 1 == self.depth() {
                for stmt in self.prologue() {
                    write_stmt(f, depth, stmt)?;
                }
            }
            indent(f, depth)?;
            if l.step() == 1 {
                writeln!(f, "DO {} = {}, {}", l.var(), l.lower(), l.upper())?;
            } else {
                writeln!(
                    f,
                    "DO {} = {}, {}, {}",
                    l.var(),
                    l.lower(),
                    l.upper(),
                    l.step()
                )?;
            }
        }
        for stmt in self.body() {
            write_stmt(f, self.depth(), stmt)?;
        }
        for depth in (0..self.depth()).rev() {
            indent(f, depth)?;
            writeln!(f, "ENDDO")?;
            if depth + 1 == self.depth() {
                for stmt in self.epilogue() {
                    write_stmt(f, depth, stmt)?;
                }
            }
        }
        Ok(())
    }
}

fn write_stmt(f: &mut fmt::Formatter<'_>, depth: usize, stmt: &Stmt) -> fmt::Result {
    indent(f, depth)?;
    match stmt.lhs() {
        Lhs::Array(a) => writeln!(f, "{a} = {}", stmt.rhs()),
        Lhs::Scalar(s) => writeln!(f, "{s} = {}", stmt.rhs()),
    }
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth + 1 {
        write!(f, "  ")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::NestBuilder;

    #[test]
    fn prints_nest_in_listing_style() {
        let nest = NestBuilder::new("intro")
            .array("A", &[8])
            .array("B", &[8])
            .loop_("J", 1, 8)
            .loop_("I", 1, 8)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let text = nest.to_string();
        assert!(text.contains("DO J = 1, 8"));
        assert!(text.contains("A(J) = A(J) + B(I)"));
        assert_eq!(text.matches("ENDDO").count(), 2);
    }

    #[test]
    fn prints_step_when_not_unit() {
        let nest = NestBuilder::new("intro")
            .array("A", &[8])
            .loop_("J", 1, 8)
            .stmt("A(J) = 1.0")
            .build();
        let unrolled = crate::transform::unroll_and_jam(&nest, &[0]).unwrap();
        // Unroll by zero is the identity; step remains 1 and is elided.
        assert!(!unrolled.to_string().contains("1, 8,"));
    }
}
